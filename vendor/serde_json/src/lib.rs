//! Offline vendored mini serde_json: a JSON parser and writer over the
//! vendored `serde::Value` data model. Floats round-trip exactly
//! (shortest-representation printing + correctly-rounded parsing), and
//! `u64`/`i64` survive without a float detour.

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream
/// serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises a value to pretty JSON (two-space indentation).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses a JSON string into any deserialisable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

/// Parses JSON bytes (must be UTF-8) into any deserialisable type.
///
/// # Errors
///
/// See [`from_str`]; additionally fails on invalid UTF-8.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like literal syntax. Keys are string
/// literals; values are JSON literals, nested arrays/objects, or
/// arbitrary serialisable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                let c = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of plain bytes in one
                    // step. `"` and `\` are ASCII, so they never occur
                    // inside a multi-byte sequence and the run boundary
                    // cannot split a character; the input arrived as a
                    // `&str`, so the run is valid UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
                    out.push_str(run);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(n).map(|v| -v) {
                        return Ok(Value::Number(Number::NegInt(neg)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn strings_escape_round_trip() {
        let original = "a\"b\\c\nd\te\u{1F600}\u{07}";
        let json = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, 0.0, -2.5] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json}");
        }
    }

    #[test]
    fn nested_document_parses() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x");
        assert!(v["b"]["c"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_str::<Value>("{ not json").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let name = "x";
        let v = json!({"model": name, "n": 3u32, "nested": [1u32, 2u32], "scaled": 2.0 * 1.5});
        assert_eq!(v["model"], "x");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["nested"][1].as_u64(), Some(2));
        assert_eq!(v["scaled"], 3.0);
        assert!(json!(null).is_null());
        assert_eq!(json!([1u8, 2u8])[0].as_u64(), Some(1));
    }
}
