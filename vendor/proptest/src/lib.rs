//! Offline vendored mini proptest: the strategy combinators and the
//! `proptest!` runner surface this workspace uses. Cases are generated
//! from a deterministic RNG seeded per (test name, case index), so
//! failures reproduce exactly on re-run; there is no shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::{RngCore, SeedableRng, StdRng};

    /// Deterministic per-case random source handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The generated inputs violated a `prop_assume!`; try again.
        Reject(String),
        /// The property itself failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        hash
    }

    /// Drives one property: `config.cases` cases, each from a seed
    /// derived from the test name, case index, and reject-retry count.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, or when too many inputs are rejected.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut rejects_total: u32 = 0;
        for index in 0..config.cases {
            let mut attempt: u64 = 0;
            loop {
                let seed = base ^ (u64::from(index) << 20) ^ attempt.rotate_left(44);
                let mut rng = TestRng::from_seed(seed);
                match case(&mut rng) {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(_)) => {
                        rejects_total += 1;
                        attempt += 1;
                        assert!(
                            rejects_total < 65_536,
                            "proptest `{name}`: too many prop_assume! rejections"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest `{name}` failed at case {index} (seed {seed:#x}): {msg}")
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A deterministic value generator; the `Value` associated type is
    /// what each case receives.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe shim so differently-typed strategies can share a
    /// `BoxedStrategy` (what `prop_oneof!` builds on).
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies of the same value
    /// type; backs `prop_oneof!`.
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    // --- string patterns --------------------------------------------------

    /// One repeated atom of the tiny regex dialect we support:
    /// `\PC` (any non-control char), `[...]` classes with ranges, and
    /// literal characters, each optionally followed by `{m,n}`/`{n}`.
    struct Atom {
        chars: CharSource,
        min: usize,
        max: usize,
    }

    enum CharSource {
        Printable,
        Set(Vec<char>),
    }

    /// Sampled occasionally by `\PC` so generated text is not pure
    /// ASCII; all are printable non-control scalars.
    const NON_ASCII_SAMPLES: &[char] = &[
        '\u{e9}',
        '\u{3bb}',
        '\u{4e2d}',
        '\u{1F600}',
        '\u{a0}',
        '\u{201c}',
        '\u{2192}',
    ];

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let source = match chars[i] {
                '\\' => {
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in strategy pattern `{pattern}`"
                    );
                    i += 3;
                    CharSource::Printable
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed `[` in strategy pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad range in strategy pattern");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty `[]` in strategy pattern");
                    i = close + 1;
                    CharSource::Set(set)
                }
                c => {
                    i += 1;
                    CharSource::Set(vec![c])
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed `{` in strategy pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition bound"),
                        hi.parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = body.parse().expect("bad repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition `{{{min},{max}}}`");
            atoms.push(Atom {
                chars: source,
                min,
                max,
            });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let count = rng.gen_range(atom.min..=atom.max);
                for _ in 0..count {
                    match &atom.chars {
                        CharSource::Printable => {
                            if rng.gen_bool(0.9) {
                                out.push(char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap());
                            } else {
                                let idx = rng.gen_range(0..NON_ASCII_SAMPLES.len());
                                out.push(NON_ASCII_SAMPLES[idx]);
                            }
                        }
                        CharSource::Set(set) => {
                            out.push(set[rng.gen_range(0..set.len())]);
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicate keys collapse, so maps can come up short of the
            // drawn size — same as upstream.
            let n = rng.gen_range(self.size.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                |__rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError>
                {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fails the current case (without panicking the generator loop's
/// bookkeeping) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} [{}]", format!($($fmt)+), stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Rejects the current case (drawing fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = (0u8..10, 0.5f64..2.0, 1u16..300);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((0.5..2.0).contains(&b));
            assert!((1..300).contains(&c));
        }
    }

    #[test]
    fn collections_respect_size_and_maps_dedup() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..5, 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            let m = crate::collection::btree_map(0u8..12, 0.0f64..1e9, 0..10).generate(&mut rng);
            assert!(m.len() < 10);
        }
    }

    #[test]
    fn string_patterns_match_their_classes() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let s = "\\PC{0,400}".generate(&mut rng);
            assert!(s.chars().count() <= 400);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            let t = "[a-zA-Z0-9 _.,:;#]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.,:;#".contains(c)));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = TestRng::from_seed(4);
        let strat = prop_oneof![
            (0u8..1).prop_map(|_| "a"),
            Just("b"),
            (0u8..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec((0u8..10, 0.0f64..1e3), 0..20);
        let a = strat.generate(&mut TestRng::from_seed(9));
        let b = strat.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The runner itself: args arrive in range, assume rejects odd
        /// values without failing, asserts pass.
        #[test]
        fn runner_smoke(x in 0u32..100, label in "[ab]{1,3}") {
            prop_assume!(x % 2 == 0);
            prop_assert!(x < 100, "{x}");
            prop_assert_eq!(x % 2, 0);
            prop_assert!(!label.is_empty() && label.len() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
