//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored mini-serde (no syn/quote — the build environment has
//! no network access, so this parses the derive input token stream
//! directly and emits source text).
//!
//! Supported shapes — everything the CLAIRE workspace derives:
//!
//! * structs with named fields (including generic parameters with
//!   inline bounds)
//! * tuple structs (newtype transparent, larger arities as arrays)
//! * enums with unit, tuple and struct variants (externally tagged)
//!
//! `#[serde(...)]` attributes are accepted and ignored; optional
//! (`Option<T>`) fields already default to `None` when absent, which
//! covers the workspace's only uses (`#[serde(default)]`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Generic parameter declarations, e.g. `N: Ord + Clone`.
    params: Vec<(String, String)>,
    body: Body,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// --- token-stream parsing -------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    let params = parse_generics(&tokens, &mut i);

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };

    Input { name, params, body }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<A: Bound1 + Bound2, B>` into `[(name, bounds)]`; leaves
/// `i` past the closing `>`. Lifetimes and const params are not
/// supported (nothing in the workspace derives with them).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, String)> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                inner.push(tokens[*i].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    inner.push(tokens[*i].clone());
                }
            }
            Some(t) => inner.push(t.clone()),
            None => panic!("unterminated generics"),
        }
        *i += 1;
    }

    // Split `inner` on top-level commas.
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<TokenTree> = Vec::new();
    for t in inner.into_iter().chain(None) {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !current.is_empty() {
                    params.push(split_param(&current));
                    current.clear();
                }
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        params.push(split_param(&current));
    }
    params
}

fn split_param(tokens: &[TokenTree]) -> (String, String) {
    let name = match tokens.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("unsupported generic parameter: {other:?}"),
    };
    let bounds = if tokens.len() > 2 {
        tokens[2..]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        String::new()
    };
    (name, bounds)
}

/// Field names of a named-field body (struct or enum-struct variant).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        // Expect `:`, then the type until a top-level `,`.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Number of fields in a tuple body `(A, B, C)`.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut fields = 1;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_field_names(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --- code generation ------------------------------------------------------

fn impl_header(item: &Input, trait_name: &str) -> String {
    if item.params.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let decls: Vec<String> = item
            .params
            .iter()
            .map(|(name, bounds)| {
                if bounds.is_empty() {
                    format!("{name}: ::serde::{trait_name}")
                } else {
                    format!("{name}: {bounds} + ::serde::{trait_name}")
                }
            })
            .collect();
        let args: Vec<String> = item.params.iter().map(|(n, _)| n.clone()).collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            decls.join(", "),
            item.name,
            args.join(", ")
        )
    }
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn field_from_obj(container: &str, field: &str) -> String {
    format!(
        "match ::serde::__field(__obj, \"{field}\") {{ \
             ::core::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?, \
             ::core::option::Option::None => match ::serde::Deserialize::missing() {{ \
                 ::core::option::Option::Some(__d) => __d, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                     ::serde::Error::missing_field(\"{field}\", \"{container}\")), \
             }}, \
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", field_from_obj(name, f)))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\", __v))?; \
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\", __v))?; \
                 if __arr.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"expected a {n}-element array for {name}, got {{}}\", __arr.len()))); }} \
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),",
                        v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vname}\", __inner))?; \
                                     if __arr.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::msg(\
                                         format!(\"expected a {n}-element array for {name}::{vname}, got {{}}\", __arr.len()))); }} \
                                     ::core::result::Result::Ok({name}::{vname}({})) \
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: {}", field_from_obj(name, f)))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vname}\", __inner))?; \
                                     ::core::result::Result::Ok({name}::{vname} {{ {} }}) \
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                     ::serde::Value::String(__s) => match __s.as_str() {{ \
                         {} \
                         __other => ::core::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")), \
                     }}, \
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                         let (__tag, __inner) = &__fields[0]; \
                         match __tag.as_str() {{ \
                             {} \
                             __other => ::core::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")), \
                         }} \
                     }}, \
                     __other => ::core::result::Result::Err(::serde::Error::expected(\"string or single-key object\", \"{name}\", __other)), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
