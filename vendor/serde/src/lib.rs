//! Offline vendored mini-serde.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of serde's API surface that CLAIRE actually
//! uses: `Serialize`/`Deserialize` traits (routed through an in-memory
//! [`Value`] tree rather than serde's visitor machinery), derive
//! macros (see `serde_derive`), and impls for the std types the
//! workspace serialises. `serde_json` (also vendored) provides the
//! JSON text layer on top of [`Value`].
//!
//! Representation conventions match upstream serde_json: structs are
//! objects in field order, unit enum variants are strings, data
//! variants are externally tagged single-key objects, newtype payloads
//! are transparent, and tuples are arrays.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree — the data model every
/// `Serialize`/`Deserialize` impl converts through.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion (struct field) order.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving 64-bit integers exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as a `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The number as an `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (key/value pair list).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compact JSON, mirroring serde_json's Display for Value.
        let mut out = String::new();
        crate::write_compact(self, &mut out);
        f.write_str(&out)
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an explicit message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Type mismatch while deserialising.
    pub fn expected(what: &str, container: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {what} for {container}, got {}", got.kind()),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` in {container}"),
        }
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(tag: &str, container: &str) -> Self {
        Error {
            msg: format!("unknown variant `{tag}` for {container}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent (`None` = the
    /// field is required). `Option<T>` fields default to `None`, which
    /// subsumes serde's `#[serde(default)]` for optional fields.
    #[doc(hidden)]
    fn missing() -> Option<Self> {
        None
    }
}

/// Derive-macro helper: field lookup in an object body.
#[doc(hidden)]
pub fn __field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// --- impls: primitives ---------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "usize", v))?;
        usize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for usize")))
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::expected("bool", "bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("`{s}` is not a single char"))),
        }
    }
}

// --- impls: references and containers ------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "BTreeSet", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Maps serialise as JSON objects; keys must serialise to strings or
/// integers (stringified), matching serde_json's key model.
fn key_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Number(Number::PosInt(n)) => Ok(n.to_string()),
        Value::Number(Number::NegInt(n)) => Ok(n.to_string()),
        other => Err(Error::msg(format!(
            "map key must be a string, got {}",
            other.kind()
        ))),
    }
}

fn key_value(s: &str) -> Value {
    Value::String(s.to_owned())
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(&k.to_value()).expect("map key serialises to a string"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&key_value(k))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(&k.to_value()).expect("map key serialises to a string"),
                    v.to_value(),
                )
            })
            .collect();
        // Deterministic output for unordered maps.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", "tuple", v))?;
                let expect = [$($n),+].len();
                if arr.len() != expect {
                    return Err(Error::msg(format!(
                        "expected a {expect}-element array, got {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}
ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- JSON text writing (used by the vendored serde_json) ------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; keep a
                // trailing `.0` so integers stay recognisably floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

/// Writes `v` as compact JSON.
#[doc(hidden)]
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Writes `v` as pretty JSON with two-space indentation.
#[doc(hidden)]
pub fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_missing_defaults_to_none() {
        assert_eq!(<Option<u32> as Deserialize>::missing(), Some(None));
        assert_eq!(<u32 as Deserialize>::missing(), None);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("a".into(), Value::String("x".into())),
            ("b".into(), Value::Number(Number::Float(1.0))),
        ]);
        assert_eq!(v["a"], "x");
        assert_eq!(v["b"], 1.0);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn float_formatting_round_trips() {
        let mut s = String::new();
        write_number(&Number::Float(0.1), &mut s);
        assert_eq!(s, "0.1");
        let mut s = String::new();
        write_number(&Number::Float(3.0), &mut s);
        assert_eq!(s, "3.0");
    }
}
