//! Offline vendored mini criterion: runs each benchmark for a short
//! wall-clock budget and prints mean iteration time. No statistics,
//! plots, or baselines — just enough harness for `cargo bench` to run
//! the workspace's `harness = false` bench targets.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget; overridable for smoke runs via
/// `CRITERION_BUDGET_MS`.
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000u64);
    Duration::from_millis(ms.max(1))
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    prefix: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.prefix, name), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        budget: budget(),
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = if bencher.iterations > 0 {
        bencher.elapsed.as_secs_f64() / bencher.iterations as f64
    } else {
        0.0
    };
    println!(
        "bench {name}: {} iters, mean {}",
        bencher.iterations,
        format_seconds(mean)
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

pub struct Bencher {
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times the closure repeatedly until the measurement budget is
    /// spent (always at least once).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iterations += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_at_least_once() {
        std::env::set_var("CRITERION_BUDGET_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 1);
        let mut group = c.benchmark_group("grp");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
