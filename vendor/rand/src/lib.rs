//! Offline vendored mini rand: a deterministic `StdRng` with the
//! `SeedableRng::seed_from_u64` / `Rng::gen_range` / `Rng::gen_bool`
//! surface the workspace uses. The bit stream differs from upstream
//! rand, but is stable across runs and platforms, which is what the
//! deterministic synthesis and test code relies on.

#![forbid(unsafe_code)]

pub mod rngs {
    /// xoshiro256**-based generator seeded via SplitMix64, like
    /// upstream's `StdRng` lineage (different concrete stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

pub use rngs::StdRng;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_u64_seed(seed)
    }
}

/// Core source trait; only `StdRng` implements it here.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift draw over the span.
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(2..6);
            assert!((2..6).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits = {hits}");
    }
}
