//! # CLAIRE — Composable Chiplet Libraries for AI Inference
//!
//! A from-scratch Rust implementation of the analytical framework in
//! *CLAIRE: Composable Chiplet Libraries for AI Inference* (DATE
//! 2025): deriving library-synthesized chiplet configurations that
//! serve broad families of AI models at near-custom performance and a
//! fraction of the non-recurring engineering cost.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`model`] — the 24-algorithm zoo, `print(model)` parser,
//!   synthetic workload generator
//! * [`graph`] — weighted graphs, weighted Jaccard, Louvain, spectral
//!   clustering
//! * [`ppa`] — 28-nm unit PPA, the 81-configuration DSE space,
//!   systolic-array models, node scaling
//! * [`noc`] — 2-D torus NoC and AIB 2.0 NoP models
//! * [`cost`] — NRE, yield and packaging cost models
//! * [`core`] — the full pipeline: DSE, chiplet clustering, placement,
//!   assignment, metrics, library artifacts, portfolio planning
//! * [`sim`] — the discrete-event simulator validating the analytics
//!
//! # Quickstart
//!
//! ```
//! use claire::core::{Claire, ClaireOptions};
//! use claire::model::zoo;
//!
//! # fn main() -> Result<(), claire::core::ClaireError> {
//! let claire = Claire::new(ClaireOptions::default());
//! // Derive a custom chiplet accelerator for one workload...
//! let custom = claire.custom_for(&zoo::resnet50())?;
//! assert!(custom.config.covers(&zoo::resnet50()));
//!
//! // ...or run the paper's full library-synthesis flow.
//! let out = claire.train(&[zoo::resnet18(), zoo::bert_base()])?;
//! let test = claire.evaluate_test(&out, &[zoo::alexnet()])?;
//! assert_eq!(test.reports[0].coverage, 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for
//! paper-vs-measured results, and `MODELING.md` for every formula.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use claire_core as core;
pub use claire_cost as cost;
pub use claire_graph as graph;
pub use claire_model as model;
pub use claire_noc as noc;
pub use claire_ppa as ppa;
pub use claire_sim as sim;
