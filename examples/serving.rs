//! Cloud-serving scenario: pick a library configuration for a
//! deployment mix, then compare serial latency, overlapped execution
//! and pipelined batch throughput on it - the Input #4 "cloud
//! application" setting the paper's constraints come from.
//!
//! Run with: `cargo run --release --example serving`

use claire::core::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
use claire::model::zoo;
use claire::sim::{pipelined_throughput, simulate, simulate_batch, Mode};

fn main() -> Result<(), claire::core::ClaireError> {
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    });
    let out = claire.train(&zoo::training_set())?;

    // A vision-serving pod deployed on the CNN library C_1.
    let c1 = &out.libraries[0].config;
    println!(
        "serving on {} ({} chiplets, {:.1} mm^2):",
        c1.name,
        c1.chiplet_count(),
        c1.area_mm2()
    );
    for m in [zoo::resnet50(), zoo::mobilenet_v2(), zoo::alexnet()] {
        let strict = simulate(&m, c1, Mode::Strict)?;
        let overlapped = simulate(&m, c1, Mode::Overlapped)?;
        let ideal = pipelined_throughput(&m, c1)?;
        let b64 = simulate_batch(&m, c1, 64)?;
        let achieved = 64.0 / (b64 as f64 / 1e9);
        println!("  {:12} {:7.3} ms serial | {:7.3} ms overlapped | {:7.0} inf/s greedy batch | {:7.0} inf/s ideal",
            m.name(),
            strict.latency_s() * 1e3,
            overlapped.latency_s() * 1e3,
            achieved,
            ideal);
    }
    println!();
    println!("greedy FIFO batching sits between serial and the ideal cyclic");
    println!("schedule; the gap is the re-entrant-pipeline cost of running a");
    println!("whole CNN through two chiplets.");
    Ok(())
}
