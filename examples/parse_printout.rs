//! Bring-your-own-model: parse a PyTorch `print(model)` dump (the
//! paper's actual ingestion format) and derive a custom accelerator
//! for it.
//!
//! Run with: `cargo run --release --example parse_printout`

use claire::core::{Claire, ClaireOptions};
use claire::model::parse::{parse_model, InputShape, ParseOptions};
use claire::model::ModelClass;

// A small edge-vision network, as PyTorch would print it.
const DUMP: &str = "\
EdgeNet(
  (features): Sequential(
    (0): Conv2d(3, 32, kernel_size=(3, 3), stride=(2, 2), padding=(1, 1))
    (1): BatchNorm2d(32, eps=1e-05, momentum=0.1)
    (2): ReLU(inplace=True)
    (3): Conv2d(32, 64, kernel_size=(3, 3), stride=(1, 1), padding=(1, 1))
    (4): ReLU(inplace=True)
    (5): MaxPool2d(kernel_size=2, stride=2, padding=0)
    (6): Conv2d(64, 128, kernel_size=(3, 3), stride=(1, 1), padding=(1, 1))
    (7): ReLU(inplace=True)
  )
  (avgpool): AdaptiveAvgPool2d(output_size=(1, 1))
  (classifier): Sequential(
    (0): Dropout(p=0.2, inplace=False)
    (1): Linear(in_features=128, out_features=10, bias=True)
  )
)";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ParseOptions {
        input: InputShape::Image {
            channels: 3,
            height: 96,
            width: 96,
        },
        class: ModelClass::Cnn,
    };
    let model = parse_model("EdgeNet", DUMP, opts)?;
    println!(
        "parsed {} layers; {:.1} MMACs, {} params",
        model.layer_count(),
        model.macs() as f64 / 1e6,
        model.param_count()
    );
    for l in model.layers() {
        println!("  {:24} -> {}", l.name, l.op_class());
    }

    let claire = Claire::new(ClaireOptions::default());
    let custom = claire.custom_for(&model)?;
    println!(
        "custom accelerator: {} | {} chiplet(s) | {:.1} mm^2 | {:.3} ms | {:.3} mJ",
        custom.config.hw,
        custom.config.chiplet_count(),
        custom.report.area_mm2,
        custom.report.latency_s * 1e3,
        custom.report.energy_j * 1e3
    );
    Ok(())
}
