//! Validate the analytical PPA model with the discrete-event
//! simulator, then explore the overlapped-execution headroom.
//!
//! Run with: `cargo run --release --example simulate_inference`

use claire::core::{Claire, ClaireOptions};
use claire::model::zoo;
use claire::sim::{simulate, Mode};

fn main() -> Result<(), claire::core::ClaireError> {
    let claire = Claire::new(ClaireOptions::default());
    for model in [zoo::alexnet(), zoo::resnet50(), zoo::bert_base()] {
        let custom = claire.custom_for(&model)?;
        let analytical = custom.report.latency_s;
        let strict = simulate(&model, &custom.config, Mode::Strict)?;
        let overlapped = simulate(&model, &custom.config, Mode::Overlapped)?;
        println!("{}:", model.name());
        println!("  analytical          {:.4} ms", analytical * 1e3);
        println!(
            "  simulated (strict)  {:.4} ms  ({} tiles, {} transfers)",
            strict.latency_s() * 1e3,
            strict.tiles_executed,
            strict.transfers
        );
        println!(
            "  simulated (overlap) {:.4} ms  ({:.1}% saved)",
            overlapped.latency_s() * 1e3,
            100.0 * (1.0 - overlapped.cycles as f64 / strict.cycles as f64)
        );
    }
    Ok(())
}
