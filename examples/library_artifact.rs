//! The downstream-user workflow: load a hardened chiplet library from
//! disk and deploy new algorithms onto it - no retraining, zero new
//! die NRE.
//!
//! Run with: `cargo run --release --example library_artifact`

use claire::core::{
    paper_table3_subsets, ChipletLibrary, Claire, ClaireOptions, SubsetStrategy, WeightScale,
};
use claire::cost::NreModel;
use claire::model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Vendor side: train once, ship the artifact.
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    });
    let train = claire.train(&zoo::training_set())?;
    let lib = ChipletLibrary::from_training("claire-2025", &train, NreModel::tsmc28());
    let path = std::env::temp_dir().join("claire-library.json");
    lib.save(&path)?;
    println!(
        "shipped {} ({} configurations) to {}",
        lib.name,
        lib.entries.len(),
        path.display()
    );

    // --- Customer side: load and deploy, never re-running DSE.
    let lib = ChipletLibrary::load(&path)?;
    for model in [
        zoo::bert_base(),
        zoo::detr(),
        zoo::wav2vec2_base(),
        zoo::t5_small(),
    ] {
        match lib.deploy(&model, WeightScale::Log) {
            Ok(d) => println!(
                "{:16} -> {} | coverage {:.0}% | util {:.2} | {:.3} ms | avoided NRE {}",
                model.name(),
                d.config_name,
                d.coverage * 100.0,
                d.utilization,
                d.ppa.latency_s * 1e3,
                d.custom_nre_avoided
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "n/a".into()),
            ),
            Err(e) => println!("{:16} -> no fit: {e}", model.name()),
        }
    }
    // The composability gap is reported, not papered over.
    if let Err(e) = lib.deploy(&zoo::efficientnet_b0(), WeightScale::Log) {
        println!("{:16} -> no fit: {e}", "EfficientNet-B0");
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
