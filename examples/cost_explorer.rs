//! Chiplet cost exploration: how NRE and per-unit cost trade against
//! chiplet granularity for a fixed silicon budget - the economics
//! behind the paper's library argument.
//!
//! Run with: `cargo run --release --example cost_explorer`

use claire::cost::{NreModel, RecurringModel};

fn main() {
    let nre = NreModel::tsmc28();
    let re = RecurringModel::tsmc28();
    let total_area = 120.0; // mm^2 of accelerator silicon

    println!("fixed {} mm^2 of silicon, split N ways:", total_area);
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>16}",
        "N", "NRE (M$)", "unit ($)", "yield/die", "breakeven units"
    );
    for n in [1_usize, 2, 3, 4, 6, 8, 12] {
        let areas = vec![total_area / n as f64; n];
        let nre_m = nre.system_nre(&areas);
        let unit = re.system_unit_cost(&areas);
        let y = re.yield_fraction(total_area / n as f64);
        // volume at which N-way matches the monolithic total cost
        let mono_nre = nre.system_nre(&[total_area]);
        let mono_unit = re.system_unit_cost(&[total_area]);
        let breakeven = if unit < mono_unit {
            format!(
                "{:.0}",
                (nre_m - mono_nre).max(0.0) * 1e6 / (mono_unit - unit)
            )
        } else {
            "-".to_owned()
        };
        println!("{n:>3} {nre_m:>12.2} {unit:>12.2} {y:>14.3} {breakeven:>16}");
    }
    println!();
    println!("More chiplet types raise NRE (masks/IP per type) but improve");
    println!("yield; reusing *library* chiplets across products removes the");
    println!("per-product NRE term entirely - the CLAIRE argument.");
}
