//! Quickstart: derive a custom chiplet-based accelerator for one AI
//! model and print its configuration and PPA.
//!
//! Run with: `cargo run --release --example quickstart`

use claire::core::{Claire, ClaireOptions};
use claire::model::zoo;

fn main() -> Result<(), claire::core::ClaireError> {
    // The framework with the paper's default constraints:
    // chiplet area <= 100 mm^2, power density <= 1 W/mm^2,
    // latency within 1.5x of the best feasible design.
    let claire = Claire::new(ClaireOptions::default());

    // Pick a workload from the built-in zoo (or parse your own
    // `print(model)` dump - see the parse_printout example).
    let model = zoo::resnet50();
    println!(
        "workload: {} ({} layers, {:.1} GMACs)",
        model.name(),
        model.layer_count(),
        model.macs() as f64 / 1e9
    );

    // Sweep the 81-configuration design space, apply the constraints,
    // and cluster the winner into chiplets.
    let custom = claire.custom_for(&model)?;

    println!("selected hardware: {}", custom.config.hw);
    println!("chiplets:");
    for c in &custom.config.chiplets {
        let groups: Vec<String> = c.classes.iter().map(|g| g.label()).collect();
        println!(
            "  {} ({:.1} mm^2): {}",
            c.name,
            c.area_mm2,
            groups.join(", ")
        );
    }
    println!("PPA:");
    println!("  latency       {:.3} ms", custom.report.latency_s * 1e3);
    println!("  energy        {:.3} mJ", custom.report.energy_j * 1e3);
    println!("  area          {:.1} mm^2", custom.report.area_mm2);
    println!(
        "  power density {:.3} W/mm^2",
        custom.report.power_density_w_per_mm2()
    );
    println!(
        "  NoP energy    {:.1} uJ (inter-chiplet)",
        custom.report.nop_energy_j * 1e6
    );
    Ok(())
}
