//! The full CLAIRE flow: train library-synthesized chiplet
//! configurations on the paper's 13 training algorithms, then deploy
//! the 6 test algorithms onto them.
//!
//! Run with: `cargo run --release --example library_synthesis`

use claire::core::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
use claire::model::zoo;

fn main() -> Result<(), claire::core::ClaireError> {
    // Pin the paper's Table III partition; drop `subsets` to let the
    // weighted-Jaccard clustering find its own grouping.
    let claire = Claire::new(ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    });

    let training = zoo::training_set();
    let out = claire.train(&training)?;

    println!("=== training phase ===");
    println!(
        "generic configuration C_g: {} chiplets, {:.1} mm^2 total",
        out.generic.chiplet_count(),
        out.generic.area_mm2()
    );
    for lib in &out.libraries {
        println!("{} <- {:?}", lib.config.name, lib.member_names);
        println!(
            "   {} chiplet(s), NRE {:.3} vs cumulative custom {:.3} ({:.2}x cheaper)",
            lib.config.chiplet_count(),
            lib.nre_normalized,
            lib.cumulative_custom_nre,
            lib.cumulative_custom_nre / lib.nre_normalized
        );
    }

    println!();
    println!("=== test phase ===");
    let tests = zoo::test_set();
    let t = claire.evaluate_test(&out, &tests)?;
    for r in &t.reports {
        let lib = r
            .assigned_library
            .map(|k| out.libraries[k].config.name.clone())
            .unwrap_or_else(|| "(none)".into());
        println!(
            "{:12} -> {}  coverage {:.0}%  utilization {:.3} (vs {:.3} on C_g)",
            r.model_name,
            lib,
            r.coverage * 100.0,
            r.utilization_library,
            r.utilization_generic
        );
    }
    for (k, names, cstm, nre) in &t.nre_rows {
        println!(
            "NRE on {}: custom {:.3} vs library {:.3} -> {:.2}x saved for {:?}",
            out.libraries[*k].config.name,
            cstm,
            nre,
            cstm / nre,
            names
        );
    }
    Ok(())
}
