//! The [`Claire`] façade: training phase (custom / generic / library
//! configurations) and test phase (assignment + metric evaluation),
//! i.e. the full Fig. 1 pipeline.

use crate::assign::{
    assign_test, partition_training, partition_training_merged, scaled_vector, WeightScale,
};
use crate::chiplet::cluster_into_chiplets_with_engine;
use crate::config::{Constraints, DesignConfig};
use crate::dse::{
    custom_config_searched, custom_config_with_engine, set_config_with_engine,
    with_relaxation_observed, Degradation, DseObjective, RobustnessPolicy,
};
use crate::error::ClaireError;
use crate::evaluate::PpaReport;
use crate::metrics::{algorithm_coverage, chiplet_utilization, normalized_nre};
use crate::parallel::Engine;
use crate::plan::flat::{
    build_eval_table, custom_from_row, set_config_from_table, EvalTable, ModelRow,
};
use crate::search::SearchPolicy;
use crate::telemetry::TelemetryOptions;
use claire_cost::NreModel;
use claire_model::{ActivationKind, Model, OpClass};
use claire_ppa::DseSpace;
use std::collections::BTreeMap;

/// How the training set is split into the library subsets `TR_k`.
#[derive(Debug, Clone)]
pub enum SubsetStrategy {
    /// Algorithm 1, line 14: single-linkage agglomeration over the
    /// weighted Jaccard similarity of (scaled) node-weight vectors.
    WeightedJaccard {
        /// Minimum pairwise similarity for two algorithms to share a
        /// subset.
        threshold: f64,
        /// Node-weight scaling before comparison.
        scale: WeightScale,
    },
    /// A caller-pinned partition, by algorithm name. Used by the
    /// table-reproduction benches to condition on the paper's
    /// published Table III partition (see EXPERIMENTS.md — the exact
    /// published grouping is not uniquely recoverable from layer
    /// metadata alone). Names absent from the training set are
    /// ignored; training models not named fall into singleton subsets.
    Fixed(Vec<Vec<String>>),
}

impl Default for SubsetStrategy {
    fn default() -> Self {
        SubsetStrategy::WeightedJaccard {
            threshold: 0.6,
            scale: WeightScale::Log,
        }
    }
}

/// Tunable knobs of the framework run.
#[derive(Debug, Clone)]
pub struct ClaireOptions {
    /// Input #4 constraints.
    pub constraints: Constraints,
    /// DSE scope (default: the paper's 81 configurations).
    pub space: DseSpace,
    /// Subset formation strategy (Algorithm 1, line 14).
    pub subsets: SubsetStrategy,
    /// Node-weight scaling used for test-set assignment similarity.
    pub assign_scale: WeightScale,
    /// Louvain resolution for chiplet clustering.
    pub louvain_resolution: f64,
    /// NRE cost model.
    pub nre: NreModel,
    /// Whether the generic configuration provisions the characterized
    /// tanh block even when no training algorithm exercises it (full
    /// composability of the generic library).
    pub provision_tanh_in_generic: bool,
    /// What to do when a stage finds no feasible configuration:
    /// fail fast with a typed error, or walk the constraint-relaxation
    /// ladder and flag the result as degraded.
    pub policy: RobustnessPolicy,
    /// Telemetry export destinations (Chrome trace and/or metrics
    /// JSON). Tracing is armed on façade-built engines exactly when a
    /// trace path is set, so runs without exports stay on the
    /// counters-only fast path.
    pub telemetry: TelemetryOptions,
    /// Run the legacy recursive flow — per-model staged sweeps with
    /// nested (serialised) parallel maps — instead of the default
    /// flat execution plan. The recursive flow is the oracle the
    /// plan-equivalence suite pins the planned flow against; both
    /// produce bit-identical outputs at any thread count. Engines
    /// with an armed fault plan always take the legacy path (fault
    /// injection sites are calibrated against the recursive call
    /// order).
    pub legacy_flow: bool,
    /// How the per-model custom sweeps walk the DSE space (default:
    /// exhaustive — the oracle). A sampled policy
    /// ([`SearchPolicy::SuccessiveHalving`]) routes the run through
    /// the legacy recursive flow: the flat plan's evaluation table
    /// assumes every model prices the same exhaustively screened
    /// point set, which sampling deliberately breaks.
    pub search: SearchPolicy,
    /// Directory for the persistent warm-state snapshot (`None`
    /// disables persistence). When set, drivers load the snapshot
    /// into a fresh engine before the flow
    /// ([`Claire::load_warm_state`]) and save the warmed tiers after
    /// it ([`Claire::save_warm_state`]), so the next process starts
    /// at warm-reflow speed. The snapshot holds only memo-tier
    /// entries — pure functions of their canonical keys — so loading
    /// one never changes results, only how fast they arrive.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ClaireOptions {
    fn default() -> Self {
        ClaireOptions {
            constraints: Constraints::default(),
            space: DseSpace::default(),
            subsets: SubsetStrategy::default(),
            assign_scale: WeightScale::Log,
            louvain_resolution: 1.0,
            nre: NreModel::tsmc28(),
            provision_tanh_in_generic: true,
            policy: RobustnessPolicy::default(),
            telemetry: TelemetryOptions::default(),
            legacy_flow: false,
            search: SearchPolicy::default(),
            cache_dir: None,
        }
    }
}

/// The training-set partition published in the paper's Table III,
/// keyed by Table I algorithm names. Passing
/// `SubsetStrategy::Fixed(paper_table3_subsets())` reproduces the
/// paper's `C_1`–`C_5` libraries exactly.
pub fn paper_table3_subsets() -> Vec<Vec<String>> {
    let groups: [&[&str]; 5] = [
        &[
            "VGG16",
            "Mobilenetv2",
            "Densenet121",
            "Resnet50",
            "SWIN-T",
            "Resnet18",
        ],
        &["PEANUT RCNN"],
        &[
            "DPT-Large",
            "DINOv2-large",
            "Mixtral-8x7B",
            "Meta Llama-3-8B",
        ],
        &["Whisperv3-large"],
        &["GPT2"],
    ];
    groups
        .iter()
        .map(|g| g.iter().map(|s| (*s).to_owned()).collect())
        .collect()
}

/// One custom design configuration `C_i` with its algorithm and PPA.
#[derive(Debug, Clone)]
pub struct CustomResult {
    /// The algorithm.
    pub model: Model,
    /// Its clustered custom configuration.
    pub config: DesignConfig,
    /// PPA of the algorithm on it.
    pub report: PpaReport,
    /// Constraint relaxations that were needed to find the
    /// configuration (`None` when it satisfied the caller's
    /// constraints as given).
    pub degradation: Option<Degradation>,
}

/// One library-synthesized configuration `C_k` with its subset.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// The clustered configuration (named `C_1`, `C_2`, …).
    pub config: DesignConfig,
    /// Indices (into the training set) of the member algorithms.
    pub members: Vec<usize>,
    /// Member algorithm names (`TR_k`).
    pub member_names: Vec<String>,
    /// Node-weight vector of the configuration's universal graph,
    /// used for test-set assignment.
    pub vector: BTreeMap<OpClass, f64>,
    /// `NRE_k`: normalised NRE of this configuration.
    pub nre_normalized: f64,
    /// `NRE_cstm(k, TR_k)`: cumulative normalised NRE of the members'
    /// custom configurations.
    pub cumulative_custom_nre: f64,
    /// Constraint relaxations needed to synthesize the configuration.
    pub degradation: Option<Degradation>,
}

/// Per-algorithm PPA on all three configuration classes (Fig. 4 data).
#[derive(Debug, Clone)]
pub struct AlgoPpa {
    /// Algorithm name.
    pub model_name: String,
    /// PPA on the custom configuration `C_i` / `Ct_i`.
    pub custom: PpaReport,
    /// PPA on the generic configuration `C_g`.
    pub generic: PpaReport,
    /// PPA on the assigned library configuration `C_k`.
    pub library: PpaReport,
    /// Index of the assigned library.
    pub library_index: usize,
}

/// The training-phase outputs (#TR1–#TR3).
#[derive(Debug, Clone)]
pub struct TrainOutput {
    /// Custom configurations, one per training algorithm, in input
    /// order.
    pub customs: Vec<CustomResult>,
    /// The generic configuration `C_g` (clustered).
    pub generic: DesignConfig,
    /// The library-synthesized configurations `C_k`.
    pub libraries: Vec<LibraryConfig>,
    /// Per-algorithm PPA on custom / generic / library (Fig. 4).
    pub algo_ppa: Vec<AlgoPpa>,
    /// Constraint relaxations needed for the generic configuration.
    pub generic_degradation: Option<Degradation>,
}

impl TrainOutput {
    /// Whether any stage of the run needed constraint relaxation.
    pub fn is_degraded(&self) -> bool {
        self.generic_degradation.is_some()
            || self.customs.iter().any(|c| c.degradation.is_some())
            || self.libraries.iter().any(|l| l.degradation.is_some())
    }
}

impl TrainOutput {
    /// The library index whose subset contains training-model `i`.
    pub fn library_of(&self, model_index: usize) -> Option<usize> {
        self.libraries
            .iter()
            .position(|l| l.members.contains(&model_index))
    }
}

/// One test algorithm's evaluation (#TT1–#TT4).
#[derive(Debug, Clone)]
pub struct TestReport {
    /// Algorithm name.
    pub model_name: String,
    /// Index of the assigned library configuration, `None` when no
    /// library covers the algorithm.
    pub assigned_library: Option<usize>,
    /// Weighted Jaccard similarity to the assigned library.
    pub similarity: f64,
    /// `C_layer` on the assigned library (1.0 required).
    pub coverage: f64,
    /// `U_chiplet(i, k)` on the assigned library.
    pub utilization_library: f64,
    /// `U_chiplet(i, g)` on the generic configuration.
    pub utilization_generic: f64,
    /// The test algorithm's custom configuration `Ct_i`.
    pub custom_config: DesignConfig,
    /// PPA on custom / generic / library.
    pub ppa: AlgoPpa,
}

/// The test-phase outputs.
#[derive(Debug, Clone)]
pub struct TestOutput {
    /// Per-algorithm reports, in input order.
    pub reports: Vec<TestReport>,
    /// Per-library NRE comparison over the assigned test subsets:
    /// `(library index, TT_k names, NRE_cstm(k, TT_k), NRE_k)`.
    pub nre_rows: Vec<(usize, Vec<String>, f64, f64)>,
}

/// The CLAIRE framework driver.
#[derive(Debug, Clone, Default)]
pub struct Claire {
    opts: ClaireOptions,
}

impl Claire {
    /// Creates a driver with the given options.
    pub fn new(opts: ClaireOptions) -> Self {
        Claire { opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &ClaireOptions {
        &self.opts
    }

    /// Builds the engine a façade call runs on: tracing is armed
    /// exactly when the options name a trace export path.
    fn engine(&self) -> Engine {
        Engine::for_space(&self.opts.space).with_tracing(self.opts.telemetry.trace_out.is_some())
    }

    /// Writes the telemetry exports named by the options (Chrome trace
    /// and/or metrics JSON) from `engine`'s telemetry. A no-op when no
    /// export path is configured. Callers driving the flow through the
    /// `*_with_engine` methods call this once, after the last phase,
    /// so a single trace covers the whole run.
    ///
    /// # Errors
    ///
    /// [`ClaireError::Internal`] when an export file cannot be
    /// written.
    pub fn export_telemetry(&self, engine: &Engine) -> Result<(), ClaireError> {
        if let Some(path) = &self.opts.telemetry.trace_out {
            engine
                .write_trace(path)
                .map_err(|e| ClaireError::Internal {
                    detail: format!("failed to write trace {}: {e}", path.display()),
                })?;
        }
        if let Some(path) = &self.opts.telemetry.metrics_out {
            engine
                .write_metrics(path)
                .map_err(|e| ClaireError::Internal {
                    detail: format!("failed to write metrics {}: {e}", path.display()),
                })?;
        }
        Ok(())
    }

    /// The snapshot file the options' `cache_dir` names, or `None`
    /// when persistence is disabled.
    pub fn snapshot_path(&self) -> Option<std::path::PathBuf> {
        self.opts
            .cache_dir
            .as_ref()
            .map(|d| d.join("claire.snapshot"))
    }

    /// Loads the warm-state snapshot named by the options into
    /// `engine`, returning whether one was applied. `Ok(false)` when
    /// persistence is disabled, no snapshot exists yet, or the engine
    /// cannot soundly accept one (cache disabled, fault plan armed).
    ///
    /// # Errors
    ///
    /// [`ClaireError::SnapshotInvalid`] on a corrupt or incompatible
    /// snapshot. The engine is untouched — validation is staged
    /// before any tier is written — so callers degrade to a cold
    /// start by warning and continuing.
    pub fn load_warm_state(&self, engine: &Engine) -> Result<bool, ClaireError> {
        match self.snapshot_path() {
            Some(path) => engine.load_snapshot(&path),
            None => Ok(false),
        }
    }

    /// Saves `engine`'s memo tiers to the snapshot named by the
    /// options (creating `cache_dir` if needed), returning whether
    /// one was written. `Ok(false)` when persistence is disabled or
    /// the engine's tiers are not snapshot-sound (cache disabled,
    /// fault plan armed).
    ///
    /// # Errors
    ///
    /// [`ClaireError::Internal`] when the directory or file cannot be
    /// written.
    pub fn save_warm_state(&self, engine: &Engine) -> Result<bool, ClaireError> {
        let Some(path) = self.snapshot_path() else {
            return Ok(false);
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| ClaireError::Internal {
                detail: format!("cannot create cache dir {}: {e}", dir.display()),
            })?;
        }
        engine.save_snapshot(&path)
    }

    /// Derives a custom, clustered configuration for one algorithm
    /// (Algorithm 1 lines 1–8 + Step #TR3).
    ///
    /// # Errors
    ///
    /// Propagates DSE/clustering failures.
    pub fn custom_for(&self, model: &Model) -> Result<CustomResult, ClaireError> {
        let engine = self.engine();
        let out = self.custom_for_with_engine(model, &engine)?;
        self.export_telemetry(&engine)?;
        Ok(out)
    }

    /// [`Claire::custom_for`] on an explicit [`Engine`] (shared memo
    /// cache, parallel DSE sweep).
    ///
    /// # Errors
    ///
    /// Same as [`Claire::custom_for`].
    pub fn custom_for_with_engine(
        &self,
        model: &Model,
        engine: &Engine,
    ) -> Result<CustomResult, ClaireError> {
        self.validate_inputs()?;
        let base = self.effective_constraints(model.name(), engine);
        let ((config, report), degradation) = with_relaxation_observed(
            self.opts.policy,
            &base,
            Some(engine.telemetry()),
            model.name(),
            |cons| {
                let (mut cfg, _) = custom_config_searched(
                    model,
                    &self.opts.space,
                    cons,
                    DseObjective::MinArea,
                    self.opts.search,
                    engine,
                )?;
                cluster_into_chiplets_with_engine(
                    &mut cfg,
                    std::slice::from_ref(model),
                    cons,
                    self.opts.louvain_resolution,
                    engine,
                )?;
                let report = engine.evaluate(model, &cfg)?;
                Ok((cfg, report))
            },
        )?;
        Ok(CustomResult {
            model: model.clone(),
            config,
            report,
            degradation,
        })
    }

    /// [`Claire::custom_for_with_engine`]'s planned twin: rung 0 of
    /// the relaxation ladder selects from the flat plan's
    /// pre-computed row (bit-identical — same feasibility filter,
    /// same shared selection tail, same evaluations); relaxed rungs,
    /// whose widened screens can need points outside the table, fall
    /// back to the recursive sweep (memo-warm from the plan).
    pub(crate) fn custom_from_plan(
        &self,
        model: &Model,
        row: &ModelRow,
        engine: &Engine,
    ) -> Result<CustomResult, ClaireError> {
        let base = self.effective_constraints(model.name(), engine);
        let mut first = true;
        let ((config, report), degradation) = with_relaxation_observed(
            self.opts.policy,
            &base,
            Some(engine.telemetry()),
            model.name(),
            |cons| {
                let (mut cfg, _) = if std::mem::take(&mut first) {
                    custom_from_row(model, row, cons, DseObjective::MinArea)
                } else {
                    custom_config_with_engine(
                        model,
                        &self.opts.space,
                        cons,
                        DseObjective::MinArea,
                        engine,
                    )
                }?;
                cluster_into_chiplets_with_engine(
                    &mut cfg,
                    std::slice::from_ref(model),
                    cons,
                    self.opts.louvain_resolution,
                    engine,
                )?;
                let report = engine.evaluate(model, &cfg)?;
                Ok((cfg, report))
            },
        )?;
        Ok(CustomResult {
            model: model.clone(),
            config,
            report,
            degradation,
        })
    }

    /// The constraints a stage actually sees: the configured set,
    /// unless the engine's fault plan injects an unsatisfiable set for
    /// this subject (exercising the degradation ladder end to end).
    fn effective_constraints(&self, subject: &str, engine: &Engine) -> Constraints {
        match engine.faults() {
            Some(plan) if plan.infeasible_constraints(subject) => Constraints {
                chiplet_area_limit_mm2: f64::MIN_POSITIVE,
                power_density_limit_w_per_mm2: f64::MIN_POSITIVE,
                latency_slack: 0.0,
            },
            _ => self.opts.constraints,
        }
    }

    /// Rejects degenerate run inputs with a typed error instead of
    /// letting them surface as panics deep in the sweep.
    fn validate_inputs(&self) -> Result<(), ClaireError> {
        self.opts
            .space
            .validate()
            .map_err(|e| ClaireError::InvalidInput {
                what: e.to_string(),
            })
    }

    /// Materialises the subset partition of `models` according to the
    /// configured [`SubsetStrategy`].
    pub fn form_subsets(&self, models: &[Model]) -> Vec<Vec<usize>> {
        match &self.opts.subsets {
            SubsetStrategy::WeightedJaccard { threshold, scale } => {
                partition_training(models, *threshold, *scale)
            }
            SubsetStrategy::Fixed(groups) => {
                let mut assigned = vec![false; models.len()];
                let mut out = Vec::new();
                for g in groups {
                    let subset: Vec<usize> = models
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| g.iter().any(|n| n == m.name()))
                        .map(|(i, _)| i)
                        .collect();
                    for &i in &subset {
                        assigned[i] = true;
                    }
                    if !subset.is_empty() {
                        out.push(subset);
                    }
                }
                for (i, done) in assigned.iter().enumerate() {
                    if !done {
                        out.push(vec![i]);
                    }
                }
                out
            }
        }
    }

    /// Runs the training phase on `models` (the paper's `TR`).
    ///
    /// # Errors
    ///
    /// [`ClaireError::EmptyAlgorithmSet`] for an empty slice, plus any
    /// DSE or clustering failure.
    pub fn train(&self, models: &[Model]) -> Result<TrainOutput, ClaireError> {
        let engine = self.engine();
        let out = self.train_with_engine(models, &engine)?;
        self.export_telemetry(&engine)?;
        Ok(out)
    }

    /// [`Claire::train`] on an explicit [`Engine`]: custom
    /// configurations and Fig. 4 evaluations run in parallel over the
    /// algorithms, every DSE sweep runs in parallel over the space,
    /// and all layer costs share the engine's memo cache. The output
    /// is bit-identical to the serial flow at any thread count.
    ///
    /// By default the run opens with the **flat execution plan**
    /// (`plan` stage): every `(model, hw-point)` evaluation of the
    /// run is enumerated as one item set and fed through a single
    /// parallel map, and the per-model/per-subset selections replay
    /// from the resulting table (see [`crate::plan::flat`]).
    /// [`ClaireOptions::legacy_flow`] — or an armed fault plan —
    /// selects the legacy recursive flow instead; both produce
    /// bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Same as [`Claire::train`].
    pub fn train_with_engine(
        &self,
        models: &[Model],
        engine: &Engine,
    ) -> Result<TrainOutput, ClaireError> {
        if models.is_empty() {
            return Err(ClaireError::EmptyAlgorithmSet);
        }
        self.validate_inputs()?;
        if self.legacy_flow_active(engine) {
            self.train_impl(models, engine, None)
        } else {
            let table = engine.time_stage("plan", || {
                build_eval_table(models, &self.opts.space, &self.opts.constraints, engine)
            });
            self.train_impl(models, engine, Some(&table))
        }
    }

    /// Whether this run takes the legacy recursive flow: requested via
    /// [`ClaireOptions::legacy_flow`], forced by an armed fault plan
    /// (injection sites are calibrated against the recursive call
    /// order), or forced by a sampled search policy (the flat plan's
    /// table assumes exhaustively screened point sets).
    pub(crate) fn legacy_flow_active(&self, engine: &Engine) -> bool {
        self.opts.legacy_flow || engine.faults().is_some() || self.opts.search.is_sampled()
    }

    /// The shared train-phase body: stage structure and selection
    /// logic are identical for both flows; `table` (the flat plan's
    /// output) switches rung-0 DSE selections from recursive sweeps to
    /// table replays.
    fn train_impl(
        &self,
        models: &[Model],
        engine: &Engine,
        table: Option<&EvalTable>,
    ) -> Result<TrainOutput, ClaireError> {
        // --- Output 1: custom configurations.
        let customs: Vec<CustomResult> = engine.time_stage("customs", || {
            engine.try_par_map(models, |i, m| match table {
                Some(t) => self.custom_from_plan(m, &t.rows[i], engine),
                None => self.custom_for_with_engine(m, engine),
            })
        })?;
        let custom_latency: BTreeMap<String, f64> = customs
            .iter()
            .map(|c| (c.model.name().to_owned(), c.report.latency_s))
            .collect();

        // --- Output 2: the generic configuration.
        let refs: Vec<&Model> = models.iter().collect();
        let generic_base = self.effective_constraints("C_g", engine);
        let all_members: Vec<usize> = (0..models.len()).collect();
        let (generic, generic_degradation) = engine.time_stage("generic", || {
            let mut first = true;
            with_relaxation_observed(
                self.opts.policy,
                &generic_base,
                Some(engine.telemetry()),
                "C_g",
                |cons| {
                    // Rung 0 replays from the flat plan's table; relaxed
                    // rungs re-sweep recursively (their widened screens
                    // can need points outside the table).
                    let from_table = if first {
                        first = false;
                        table
                    } else {
                        None
                    };
                    let mut generic = match from_table {
                        Some(t) => set_config_from_table(
                            "C_g",
                            &all_members,
                            models,
                            t,
                            cons,
                            &custom_latency,
                            engine,
                        ),
                        None => set_config_with_engine(
                            "C_g",
                            &refs,
                            &self.opts.space,
                            cons,
                            &custom_latency,
                            engine,
                        ),
                    }?;
                    if self.opts.provision_tanh_in_generic {
                        generic
                            .classes
                            .insert(OpClass::Activation(ActivationKind::Tanh));
                    }
                    cluster_into_chiplets_with_engine(
                        &mut generic,
                        models,
                        cons,
                        self.opts.louvain_resolution,
                        engine,
                    )?;
                    Ok(generic)
                },
            )
        })?;

        // --- Output 3: library-synthesized configurations.
        //
        // The WeightedJaccard strategy pairs each subset with its raw
        // node-weight vector, merged incrementally while the similarity
        // matrix is agglomerated; the Fixed strategy keeps the legacy
        // per-subset ascending-member summation, so pinned-partition
        // (golden-table) flows stay bit-identical.
        // A subset paired with its incrementally merged raw node-weight
        // vector (`None` on the pinned `Fixed` path, which re-sums).
        type SubsetVector = (Vec<usize>, Option<BTreeMap<OpClass, f64>>);
        let subsets: Vec<SubsetVector> =
            engine.time_stage("subsets", || match &self.opts.subsets {
                SubsetStrategy::WeightedJaccard { threshold, scale } => {
                    partition_training_merged(models, *threshold, *scale)
                        .into_iter()
                        .map(|(subset, merged)| (subset, Some(merged)))
                        .collect()
                }
                SubsetStrategy::Fixed(_) => self
                    .form_subsets(models)
                    .into_iter()
                    .map(|subset| (subset, None))
                    .collect(),
            });
        let libraries: Vec<LibraryConfig> = engine.time_stage("libraries", || {
            engine.try_par_map(&subsets, |k, (subset, merged)| -> Result<_, ClaireError> {
                let name = format!("C_{}", k + 1);
                let members: Vec<&Model> = subset.iter().map(|&i| &models[i]).collect();
                let member_models: Vec<Model> = members.iter().map(|m| (*m).clone()).collect();
                let lib_base = self.effective_constraints(&name, engine);
                let mut first = true;
                let (cfg, degradation) = with_relaxation_observed(
                    self.opts.policy,
                    &lib_base,
                    Some(engine.telemetry()),
                    &name,
                    |cons| {
                        let from_table = if first {
                            first = false;
                            table
                        } else {
                            None
                        };
                        let mut cfg = match from_table {
                            Some(t) => set_config_from_table(
                                &name,
                                subset,
                                models,
                                t,
                                cons,
                                &custom_latency,
                                engine,
                            ),
                            None => set_config_with_engine(
                                &name,
                                &members,
                                &self.opts.space,
                                cons,
                                &custom_latency,
                                engine,
                            ),
                        }?;
                        cluster_into_chiplets_with_engine(
                            &mut cfg,
                            &member_models,
                            cons,
                            self.opts.louvain_resolution,
                            engine,
                        )?;
                        Ok(cfg)
                    },
                )?;
                // Node vector for Step #TT1 assignment: the subset's
                // summed raw node work, scaled afterwards — "the nodes
                // of the library-synthesized configurations". (Scaling
                // after the sum keeps multi-member subsets comparable
                // to singletons.)
                let raw: BTreeMap<OpClass, f64> = match merged {
                    Some(v) => v.clone(),
                    None => {
                        let mut raw = BTreeMap::new();
                        for m in &member_models {
                            for (class, w) in m.op_class_weights() {
                                *raw.entry(class).or_insert(0.0) += w;
                            }
                        }
                        raw
                    }
                };
                let vector: BTreeMap<OpClass, f64> = match self.opts.assign_scale {
                    WeightScale::Raw => raw,
                    WeightScale::Log => raw
                        .into_iter()
                        .map(|(k, w)| (k, (1.0 + w).log10()))
                        .collect(),
                    WeightScale::Binary => raw
                        .into_iter()
                        .map(|(k, w)| (k, if w > 0.0 { 1.0 } else { 0.0 }))
                        .collect(),
                };
                let nre_normalized = normalized_nre(&self.opts.nre, &cfg, &generic);
                let cumulative_custom_nre = subset
                    .iter()
                    .map(|&i| normalized_nre(&self.opts.nre, &customs[i].config, &generic))
                    .sum();
                Ok(LibraryConfig {
                    config: cfg,
                    members: subset.clone(),
                    member_names: subset
                        .iter()
                        .map(|&i| models[i].name().to_owned())
                        .collect(),
                    vector,
                    nre_normalized,
                    cumulative_custom_nre,
                    degradation,
                })
            })
        })?;

        // --- Fig. 4 data: PPA on all three configuration classes.
        let algo_ppa: Vec<AlgoPpa> = engine.time_stage("algo_ppa", || {
            engine.try_par_map(models, |i, m| -> Result<_, ClaireError> {
                let lib_idx = libraries
                    .iter()
                    .position(|l| l.members.contains(&i))
                    .ok_or_else(|| ClaireError::Internal {
                        detail: format!("training model {i} missing from every subset"),
                    })?;
                Ok(AlgoPpa {
                    model_name: m.name().to_owned(),
                    custom: customs[i].report,
                    generic: engine.evaluate(m, &generic)?,
                    library: engine.evaluate(m, &libraries[lib_idx].config)?,
                    library_index: lib_idx,
                })
            })
        })?;

        Ok(TrainOutput {
            customs,
            generic,
            libraries,
            algo_ppa,
            generic_degradation,
        })
    }

    /// Runs the test phase (`TT`) against a training output.
    ///
    /// Each test algorithm gets a custom configuration `Ct_i`, is
    /// assigned to the most similar *covering* library configuration,
    /// and is scored on coverage, utilization and PPA. Per-library NRE
    /// rows compare `NRE_k` against the cumulative custom cost of the
    /// assigned algorithms.
    ///
    /// # Errors
    ///
    /// [`ClaireError::EmptyAlgorithmSet`] for an empty slice, plus any
    /// DSE or clustering failure for the custom configurations.
    pub fn evaluate_test(
        &self,
        train: &TrainOutput,
        tests: &[Model],
    ) -> Result<TestOutput, ClaireError> {
        let engine = self.engine();
        let out = self.evaluate_test_with_engine(train, tests, &engine)?;
        self.export_telemetry(&engine)?;
        Ok(out)
    }

    /// [`Claire::evaluate_test`] with an explicit [`Engine`], so test
    /// models are evaluated in parallel and layer costs are shared with
    /// any prior training run through the memo cache.
    ///
    /// By default the test stage opens with the flat execution plan:
    /// every `(test-model, hw-point)` evaluation runs through one
    /// load-balanced parallel map before the per-model selections,
    /// clustering and assignment replay — collapsing the per-model
    /// nested sweeps whose serialisation skews worker busy time.
    /// [`ClaireOptions::legacy_flow`] (or an armed fault plan) selects
    /// the recursive flow; outputs are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`Claire::evaluate_test`].
    pub fn evaluate_test_with_engine(
        &self,
        train: &TrainOutput,
        tests: &[Model],
        engine: &Engine,
    ) -> Result<TestOutput, ClaireError> {
        if tests.is_empty() {
            return Err(ClaireError::EmptyAlgorithmSet);
        }
        self.validate_inputs()?;
        let vectors: Vec<_> = train.libraries.iter().map(|l| l.vector.clone()).collect();

        let reports: Vec<TestReport> = engine.time_stage("test", || {
            let table = (!self.legacy_flow_active(engine))
                .then(|| build_eval_table(tests, &self.opts.space, &self.opts.constraints, engine));
            engine.try_par_map(tests, |i, m| -> Result<_, ClaireError> {
                let custom = match &table {
                    Some(t) => self.custom_from_plan(m, &t.rows[i], engine)?,
                    None => self.custom_for_with_engine(m, engine)?,
                };

                // Rank libraries by similarity; take the best that covers.
                let mv = scaled_vector(m, self.opts.assign_scale);
                let mut ranked: Vec<(usize, f64)> = vectors
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i, claire_graph::weighted_jaccard(&mv, v)))
                    .collect();
                // Similarities are finite by construction; total_cmp
                // keeps the sort panic-free and identical on them.
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                let assigned = ranked
                    .iter()
                    .find(|&&(i, _)| train.libraries[i].config.covers(m))
                    .copied();
                let _ = assign_test(m, &vectors); // keep raw argmax observable in tests

                // The generic config covers every *training* op class by
                // construction; a test model with a novel op class cannot
                // run on it, so fall back to the custom PPA rather than
                // failing the whole test phase.
                let generic_ppa = if train.generic.covers(m) {
                    engine.evaluate(m, &train.generic)?
                } else {
                    custom.report
                };

                let (lib_idx, similarity) = match assigned {
                    Some(x) => x,
                    None => {
                        return Ok(TestReport {
                            model_name: m.name().to_owned(),
                            assigned_library: None,
                            similarity: 0.0,
                            coverage: 0.0,
                            utilization_library: 0.0,
                            utilization_generic: chiplet_utilization(m, &train.generic),
                            custom_config: custom.config.clone(),
                            ppa: AlgoPpa {
                                model_name: m.name().to_owned(),
                                custom: custom.report,
                                generic: generic_ppa,
                                library: custom.report,
                                library_index: usize::MAX,
                            },
                        });
                    }
                };

                let lib_cfg = &train.libraries[lib_idx].config;
                Ok(TestReport {
                    model_name: m.name().to_owned(),
                    assigned_library: Some(lib_idx),
                    similarity,
                    coverage: algorithm_coverage(m, lib_cfg),
                    utilization_library: chiplet_utilization(m, lib_cfg),
                    utilization_generic: chiplet_utilization(m, &train.generic),
                    custom_config: custom.config.clone(),
                    ppa: AlgoPpa {
                        model_name: m.name().to_owned(),
                        custom: custom.report,
                        generic: generic_ppa,
                        library: engine.evaluate(m, lib_cfg)?,
                        library_index: lib_idx,
                    },
                })
            })
        })?;

        let mut per_lib: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (ti, r) in reports.iter().enumerate() {
            if let Some(lib_idx) = r.assigned_library {
                per_lib.entry(lib_idx).or_default().push(ti);
            }
        }

        let nre_rows = per_lib
            .into_iter()
            .map(|(lib_idx, test_indices)| {
                let names: Vec<String> = test_indices
                    .iter()
                    .map(|&i| tests[i].name().to_owned())
                    .collect();
                let cumulative: f64 = test_indices
                    .iter()
                    .map(|&i| {
                        normalized_nre(&self.opts.nre, &reports[i].custom_config, &train.generic)
                    })
                    .sum();
                (
                    lib_idx,
                    names,
                    cumulative,
                    train.libraries[lib_idx].nre_normalized,
                )
            })
            .collect();

        Ok(TestOutput { reports, nre_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;

    #[test]
    fn small_training_run_produces_all_outputs() {
        let claire = Claire::default();
        let models = [zoo::resnet18(), zoo::bert_base(), zoo::gpt2()];
        let out = claire.train(&models).unwrap();
        assert_eq!(out.customs.len(), 3);
        assert!(!out.generic.chiplets.is_empty());
        assert!(!out.libraries.is_empty());
        assert_eq!(out.algo_ppa.len(), 3);
        // Every training model is covered by the generic config.
        for m in &models {
            assert!(out.generic.covers(m), "{}", m.name());
        }
    }

    #[test]
    fn gpt2_lands_in_its_own_subset() {
        // Conv1d keeps GPT-2 out of the linear-transformer subsets.
        let claire = Claire::default();
        let out = claire
            .train(&[zoo::bert_base(), zoo::vit_base(), zoo::gpt2()])
            .unwrap();
        let gpt2_lib = out.library_of(2).unwrap();
        assert_eq!(out.libraries[gpt2_lib].members, vec![2]);
    }

    #[test]
    fn degrade_policy_rescues_impossible_area_constraint() {
        let tight = Constraints {
            chiplet_area_limit_mm2: 0.5, // nothing fits
            ..Constraints::default()
        };
        let strict = Claire::new(ClaireOptions {
            constraints: tight,
            ..ClaireOptions::default()
        });
        assert!(matches!(
            strict.train(&[zoo::alexnet()]).unwrap_err(),
            ClaireError::NoFeasibleConfiguration { .. }
        ));

        let lenient = Claire::new(ClaireOptions {
            constraints: tight,
            policy: RobustnessPolicy::Degrade,
            ..ClaireOptions::default()
        });
        let out = lenient.train(&[zoo::alexnet()]).unwrap();
        assert!(out.is_degraded());
        assert!(out.customs[0].degradation.is_some());
        assert!(out.customs[0].report.latency_s.is_finite());
    }

    #[test]
    fn degenerate_space_is_a_typed_error() {
        let claire = Claire::new(ClaireOptions {
            space: DseSpace {
                sa_sizes: vec![],
                ..DseSpace::default()
            },
            ..ClaireOptions::default()
        });
        assert!(matches!(
            claire.train(&[zoo::alexnet()]).unwrap_err(),
            ClaireError::InvalidInput { .. }
        ));
    }

    #[test]
    fn empty_sets_error() {
        let claire = Claire::default();
        assert_eq!(
            claire.train(&[]).unwrap_err(),
            ClaireError::EmptyAlgorithmSet
        );
    }

    #[test]
    fn test_phase_assigns_and_scores() {
        let claire = Claire::default();
        let out = claire
            .train(&[zoo::resnet18(), zoo::resnet50(), zoo::llama3_8b()])
            .unwrap();
        let tests = [zoo::alexnet()];
        let t = claire.evaluate_test(&out, &tests).unwrap();
        let r = &t.reports[0];
        // AlexNet must join the CNN library with full coverage.
        let lib = r.assigned_library.unwrap();
        assert!(out.libraries[lib]
            .member_names
            .iter()
            .any(|n| n.contains("Resnet")));
        assert_eq!(r.coverage, 1.0);
        assert!(r.utilization_library > r.utilization_generic);
        assert!(!t.nre_rows.is_empty());
    }

    #[test]
    fn library_nre_cheaper_than_cumulative_custom() {
        let claire = Claire::default();
        let out = claire
            .train(&[zoo::resnet18(), zoo::resnet50(), zoo::mobilenet_v2()])
            .unwrap();
        for lib in &out.libraries {
            if lib.members.len() > 1 {
                assert!(
                    lib.nre_normalized < lib.cumulative_custom_nre,
                    "library {} not cheaper",
                    lib.config.name
                );
            }
        }
    }
}
