//! A resident engine: one warm [`Engine`] serving many requests.
//!
//! The one-shot façade ([`Claire`]) builds an engine per call, so every
//! process pays the cold path once per run and the memo tiers die with
//! it. [`ResidentEngine`] inverts that: one engine — its tiers behind
//! the existing shard locks — lives for the process and is shared (via
//! `&self`, or `Arc<ResidentEngine>` across threads) by every request.
//! Three request families are served:
//!
//! - **custom** ([`ResidentEngine::custom_batch`]): derive a custom,
//!   clustered configuration per model. A whole batch is planned as
//!   *one* flat evaluation table, so the single `par_map` load-balances
//!   across requests, not just within one.
//! - **assign** ([`ResidentEngine::assign_batch`]): score test models
//!   against the resident training output (built lazily, once).
//! - **what-if** ([`ResidentEngine::what_if`]): probe feasibility of a
//!   model under caller-supplied constraints without failing the
//!   server.
//!
//! Per-request knobs (degrade policy, constraint overrides) ride a
//! cheap [`Claire`] clone; the engine — and with it every memo tier —
//! is always the shared one. Combined with
//! [`Engine::load_snapshot`](crate::Engine::load_snapshot), a freshly
//! started server answers its first request at warm-reflow speed.

use crate::claire::{Claire, ClaireOptions, CustomResult, TestReport, TrainOutput};
use crate::config::Constraints;
use crate::dse::RobustnessPolicy;
use crate::error::ClaireError;
use crate::parallel::Engine;
use crate::plan::flat::build_eval_table_cancellable;
use crate::telemetry::{EventRing, QuantileDigest, QuantileSummary, RateSnapshot, RateWindows};
use claire_model::Model;
use serde::{Number, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// How many lifecycle events the in-memory flight recorder retains.
/// At the serve layer's ≤ 4 events per request this bounds a dump to
/// the last ~60 requests — enough to reconcile the final batch of any
/// death with what clients observed.
pub const FLIGHT_RING_CAPACITY: usize = 256;

/// Poison-tolerant lock: observer state is append-only summaries, so a
/// panicking recorder leaves at worst one complete record.
fn obs_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One stage in a serve request's lifecycle, in transition order:
/// `Received → Admitted | Shed → Dispatched → Evaluating → Answered |
/// Errored`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifecycleStage {
    /// The request line arrived (well-formed or not) and was assigned
    /// its trace id.
    Received,
    /// The request entered the admission queue.
    Admitted,
    /// The request was answered `Overloaded` at admission (queue full).
    Shed,
    /// The dispatcher drained the request into a batch.
    Dispatched,
    /// The batch entered engine evaluation with this request live.
    Evaluating,
    /// A success response was delivered.
    Answered,
    /// A typed error response was delivered.
    Errored,
}

impl LifecycleStage {
    /// Every stage, in transition order.
    pub const ALL: [LifecycleStage; 7] = [
        LifecycleStage::Received,
        LifecycleStage::Admitted,
        LifecycleStage::Shed,
        LifecycleStage::Dispatched,
        LifecycleStage::Evaluating,
        LifecycleStage::Answered,
        LifecycleStage::Errored,
    ];

    /// The stage's wire label.
    pub fn label(self) -> &'static str {
        match self {
            LifecycleStage::Received => "received",
            LifecycleStage::Admitted => "admitted",
            LifecycleStage::Shed => "shed",
            LifecycleStage::Dispatched => "dispatched",
            LifecycleStage::Evaluating => "evaluating",
            LifecycleStage::Answered => "answered",
            LifecycleStage::Errored => "errored",
        }
    }
}

/// One lifecycle transition of one serve request — the unit the event
/// log streams and the flight recorder retains.
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    /// Microseconds since the serve epoch (injected by the caller; the
    /// observer never reads a wall clock).
    pub t_us: u64,
    /// The transition.
    pub stage: LifecycleStage,
    /// The serve-assigned monotonic trace id.
    pub trace: u64,
    /// The caller's correlation id, echoed verbatim.
    pub id: Value,
    /// The request op label (`custom`, `assign`, `what_if`, `stats`,
    /// or `invalid` for lines that never parsed).
    pub op: &'static str,
    /// The dispatch batch, from [`LifecycleStage::Dispatched`] on.
    pub batch: Option<u64>,
    /// Admission-to-dispatch wait, set on `Dispatched`.
    pub queue_wait_us: Option<u64>,
    /// Outcome code on terminal stages: 0 for `Answered`, the typed
    /// error code (CLI exit-code numbering) for `Errored`/`Shed`.
    pub outcome: Option<i64>,
}

impl LifecycleEvent {
    /// Serialises the event as one JSON object (the event-log line and
    /// flight-dump entry format).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("t_us".to_owned(), Value::Number(Number::PosInt(self.t_us))),
            (
                "event".to_owned(),
                Value::String(self.stage.label().to_owned()),
            ),
            (
                "trace".to_owned(),
                Value::Number(Number::PosInt(self.trace)),
            ),
            ("id".to_owned(), self.id.clone()),
            ("op".to_owned(), Value::String(self.op.to_owned())),
        ];
        if let Some(batch) = self.batch {
            fields.push(("batch".to_owned(), Value::Number(Number::PosInt(batch))));
        }
        if let Some(us) = self.queue_wait_us {
            fields.push((
                "queue_wait_us".to_owned(),
                Value::Number(Number::PosInt(us)),
            ));
        }
        if let Some(code) = self.outcome {
            fields.push((
                "outcome".to_owned(),
                Value::Number(Number::PosInt(code.max(0) as u64)),
            ));
        }
        Value::Object(fields)
    }
}

/// The resident engine's live-observability hub: the monotonic trace
/// sequence, the flight-recorder ring, exact latency digests, and the
/// sliding-window rate trackers. All time is injected (µs since the
/// serve epoch) — no wall-clock reads, so identical request sequences
/// produce identical digests and rates at any thread count.
#[derive(Debug)]
pub struct ServeObserver {
    trace_seq: AtomicU64,
    ring: Mutex<EventRing<LifecycleEvent>>,
    queue_wait_us: Mutex<QuantileDigest>,
    latency_us: Mutex<QuantileDigest>,
    requests: Mutex<RateWindows>,
    sheds: Mutex<RateWindows>,
    expiries: Mutex<RateWindows>,
}

impl Default for ServeObserver {
    fn default() -> Self {
        ServeObserver::new()
    }
}

impl ServeObserver {
    /// A fresh observer with an empty [`FLIGHT_RING_CAPACITY`]-event
    /// ring.
    pub fn new() -> Self {
        ServeObserver {
            trace_seq: AtomicU64::new(0),
            ring: Mutex::new(EventRing::new(FLIGHT_RING_CAPACITY)),
            queue_wait_us: Mutex::new(QuantileDigest::new()),
            latency_us: Mutex::new(QuantileDigest::new()),
            requests: Mutex::new(RateWindows::new()),
            sheds: Mutex::new(RateWindows::new()),
            expiries: Mutex::new(RateWindows::new()),
        }
    }

    /// Assigns the next monotonic trace id (1-based).
    pub fn next_trace(&self) -> u64 {
        self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one lifecycle transition into the flight ring, folding
    /// its rate contribution at the injected time.
    pub fn observe(&self, event: LifecycleEvent) {
        match event.stage {
            LifecycleStage::Received => obs_lock(&self.requests).record(event.t_us),
            LifecycleStage::Shed => obs_lock(&self.sheds).record(event.t_us),
            LifecycleStage::Answered | LifecycleStage::Errored if event.outcome == Some(14) => {
                obs_lock(&self.expiries).record(event.t_us);
            }
            _ => {}
        }
        obs_lock(&self.ring).push(event);
    }

    /// Records one admission-queue wait into the exact digest.
    pub fn record_queue_wait_us(&self, us: u64) {
        obs_lock(&self.queue_wait_us).record(us);
    }

    /// Records one end-to-end (admission to delivery) latency into the
    /// exact digest.
    pub fn record_latency_us(&self, us: u64) {
        obs_lock(&self.latency_us).record(us);
    }

    /// The exact queue-wait quantile summary so far.
    pub fn queue_wait_summary(&self) -> QuantileSummary {
        obs_lock(&self.queue_wait_us).summary()
    }

    /// The exact end-to-end latency quantile summary so far.
    pub fn latency_summary(&self) -> QuantileSummary {
        obs_lock(&self.latency_us).summary()
    }

    /// The request / shed / deadline-expiry window rates at the
    /// injected time.
    pub fn rates(&self, now_us: u64) -> (RateSnapshot, RateSnapshot, RateSnapshot) {
        (
            obs_lock(&self.requests).snapshot(now_us),
            obs_lock(&self.sheds).snapshot(now_us),
            obs_lock(&self.expiries).snapshot(now_us),
        )
    }

    /// A snapshot of the flight ring: retained events (time-ordered,
    /// serialised), lifetime total, and how many capacity evicted.
    ///
    /// Ring order is insertion order, and concurrent recorders can
    /// interleave a later-stamped event ahead of an earlier one from
    /// another thread; a stable sort on `t_us` restores a monotone
    /// trail while preserving each trace's lifecycle order (a trace's
    /// events are recorded sequentially with non-decreasing stamps).
    ///
    /// Uses `try_lock` so a panic hook can call it on the very thread
    /// that panicked while pushing an event: instead of self-deadlock
    /// the dump degrades to an empty event list.
    pub fn flight_events(&self) -> (Vec<Value>, u64, u64) {
        let ring = match self.ring.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return (Vec::new(), 0, 0),
        };
        let mut events: Vec<&LifecycleEvent> = ring.iter().collect();
        events.sort_by_key(|event| event.t_us);
        (
            events.into_iter().map(LifecycleEvent::to_value).collect(),
            ring.total(),
            ring.evicted(),
        )
    }
}

/// One custom-configuration request in a [`ResidentEngine::custom_batch`].
#[derive(Debug, Clone)]
pub struct CustomRequest {
    /// The algorithm to derive a configuration for.
    pub model: Model,
    /// Per-request robustness policy; `None` inherits the resident
    /// options.
    pub policy: Option<RobustnessPolicy>,
    /// Per-request constraint override; `None` inherits the resident
    /// options. Overridden requests take the recursive sweep (the
    /// shared flat table is screened under the resident constraints,
    /// so a *looser* override could need points outside it) — still
    /// memo-warm, just not table-replayed.
    pub constraints: Option<Constraints>,
    /// Cooperative cancellation flag: set it (from a watchdog, a
    /// deadline, a disconnect) and the request stops consuming workers
    /// at the next flat-plan checkpoint, answering
    /// [`ClaireError::DeadlineExceeded`]. `None` means the request
    /// runs to completion.
    pub cancel: Option<Arc<AtomicBool>>,
    /// The deadline the caller declared (milliseconds), echoed into
    /// the [`ClaireError::DeadlineExceeded`] answer when `cancel`
    /// fires. Informational only — enforcement is the caller's
    /// watchdog setting `cancel`.
    pub deadline_ms: Option<u64>,
}

impl CustomRequest {
    /// A request that inherits every resident option.
    pub fn new(model: Model) -> Self {
        CustomRequest {
            model,
            policy: None,
            constraints: None,
            cancel: None,
            deadline_ms: None,
        }
    }

    /// True when the request's cancel flag has been set.
    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The typed answer for a cancelled request.
    fn deadline_error(&self) -> ClaireError {
        ClaireError::DeadlineExceeded {
            deadline_ms: self.deadline_ms.unwrap_or(0),
            stage: "evaluating",
        }
    }
}

/// The outcome of a [`ResidentEngine::what_if`] probe.
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// Whether a feasible configuration exists under the probed
    /// constraints (without any relaxation).
    pub feasible: bool,
    /// The configuration and PPA when feasible.
    pub result: Option<CustomResult>,
    /// The typed infeasibility when not (`NoFeasibleConfiguration`,
    /// `ChipletAreaUnsatisfiable`, or `IncompleteCoverage`).
    pub infeasibility: Option<ClaireError>,
}

/// A long-lived engine + façade pair serving batched requests over
/// shared memo tiers. See the module docs.
#[derive(Debug)]
pub struct ResidentEngine {
    claire: Claire,
    engine: Engine,
    training: Vec<Model>,
    trained: OnceLock<Result<TrainOutput, ClaireError>>,
    /// Checkpoints written so far (the snapshot generation counter).
    checkpoint_gen: AtomicU64,
    /// The [`Engine::tier_signature`] at the last written checkpoint;
    /// an unchanged signature skips the write.
    checkpoint_sig: AtomicU64,
    /// Live-observability hub: trace ids, flight ring, latency
    /// digests, window rates.
    observer: ServeObserver,
}

impl ResidentEngine {
    /// Builds a resident engine from run options and the training set
    /// used by assignment requests. The engine is constructed exactly
    /// as the one-shot façade would (thread resolution, tracing armed
    /// iff a trace path is configured), so resident answers are
    /// bit-identical to one-shot answers.
    pub fn new(opts: ClaireOptions, training: Vec<Model>) -> Self {
        let engine =
            Engine::for_space(&opts.space).with_tracing(opts.telemetry.trace_out.is_some());
        ResidentEngine {
            claire: Claire::new(opts),
            engine,
            training,
            trained: OnceLock::new(),
            checkpoint_gen: AtomicU64::new(0),
            checkpoint_sig: AtomicU64::new(0),
            observer: ServeObserver::new(),
        }
    }

    /// The live-observability hub (trace-id assignment, lifecycle
    /// recording, quantile and rate summaries).
    pub fn observer(&self) -> &ServeObserver {
        &self.observer
    }

    /// The shared engine (for snapshot load/save, stats, telemetry).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The resident options.
    pub fn options(&self) -> &ClaireOptions {
        self.claire.options()
    }

    /// Loads the warm-state snapshot named by the resident options
    /// into the shared engine; see [`Claire::load_warm_state`].
    ///
    /// # Errors
    ///
    /// [`ClaireError::SnapshotInvalid`] on a corrupt snapshot; the
    /// engine stays cold-usable.
    pub fn load_warm_state(&self) -> Result<bool, ClaireError> {
        self.claire.load_warm_state(&self.engine)
    }

    /// Saves the shared engine's memo tiers to the snapshot named by
    /// the resident options; see [`Claire::save_warm_state`].
    ///
    /// # Errors
    ///
    /// [`ClaireError::Internal`] when the snapshot cannot be written.
    pub fn save_warm_state(&self) -> Result<bool, ClaireError> {
        self.claire.save_warm_state(&self.engine)
    }

    /// Checkpoints warm state if the memo tiers changed since the last
    /// checkpoint: computes the engine's [`Engine::tier_signature`],
    /// skips the write when it is unchanged (the dirty-delta
    /// throttle), and otherwise saves atomically (unique temp +
    /// rename, so a crash mid-write leaves the previous generation
    /// intact) and bumps the generation counter.
    ///
    /// Returns the new generation when a checkpoint was written,
    /// `None` when skipped (clean tiers, or no cache dir configured).
    ///
    /// # Errors
    ///
    /// Snapshot write failures, typed; the tiers themselves are
    /// untouched and serving can continue.
    pub fn checkpoint(&self) -> Result<Option<u64>, ClaireError> {
        let sig = self.engine.tier_signature();
        if sig == self.checkpoint_sig.load(Ordering::Relaxed)
            && self.checkpoint_gen.load(Ordering::Relaxed) > 0
        {
            return Ok(None);
        }
        if !self.save_warm_state()? {
            return Ok(None);
        }
        self.checkpoint_sig.store(sig, Ordering::Relaxed);
        let generation = self.checkpoint_gen.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(Some(generation))
    }

    /// How many warm-state checkpoints this resident has written.
    pub fn checkpoint_generation(&self) -> u64 {
        self.checkpoint_gen.load(Ordering::Relaxed)
    }

    /// A façade clone with per-request overrides applied.
    fn claire_for(
        &self,
        policy: Option<RobustnessPolicy>,
        constraints: Option<Constraints>,
    ) -> Claire {
        match (policy, constraints) {
            (None, None) => self.claire.clone(),
            (p, c) => {
                let mut opts = self.claire.options().clone();
                if let Some(p) = p {
                    opts.policy = p;
                }
                if let Some(c) = c {
                    opts.constraints = c;
                }
                Claire::new(opts)
            }
        }
    }

    /// Serves a batch of custom-configuration requests. Every request
    /// without a constraint override shares **one** flat evaluation
    /// table — one `par_map` over the union of all `(model, hw-point)`
    /// items — and replays its selection from it; overridden requests
    /// fall back to the (memo-warm) recursive sweep. Results are in
    /// request order, each independently succeeding or failing.
    pub fn custom_batch(
        &self,
        requests: &[CustomRequest],
    ) -> Vec<Result<CustomResult, ClaireError>> {
        // Partition: table-eligible requests batch into one plan.
        let eligible: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.constraints.is_none())
            .map(|(i, _)| i)
            .collect();
        let use_table = !eligible.is_empty() && !self.claire.legacy_flow_active(&self.engine);

        let mut out: Vec<Option<Result<CustomResult, ClaireError>>> =
            requests.iter().map(|_| None).collect();

        if use_table {
            let models: Vec<Model> = eligible
                .iter()
                .map(|&i| requests[i].model.clone())
                .collect();
            let cancels: Vec<Arc<AtomicBool>> = eligible
                .iter()
                .map(|&i| requests[i].cancel.clone().unwrap_or_default())
                .collect();
            let opts = self.claire.options();
            let table = self.engine.time_stage("plan", || {
                build_eval_table_cancellable(
                    &models,
                    &opts.space,
                    &opts.constraints,
                    &self.engine,
                    &cancels,
                )
            });
            for (row, &i) in table.rows.iter().zip(&eligible) {
                // A cancelled request's row is garbage by contract —
                // answer the typed deadline error, never the row.
                if requests[i].cancelled() {
                    out[i] = Some(Err(requests[i].deadline_error()));
                    continue;
                }
                let claire = self.claire_for(requests[i].policy, None);
                out[i] = Some(claire.custom_from_plan(&requests[i].model, row, &self.engine));
            }
        }

        for (i, req) in requests.iter().enumerate() {
            if out[i].is_none() {
                if req.cancelled() {
                    out[i] = Some(Err(req.deadline_error()));
                    continue;
                }
                let claire = self.claire_for(req.policy, req.constraints);
                out[i] = Some(claire.custom_for_with_engine(&req.model, &self.engine));
            }
        }

        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(ClaireError::Internal {
                        detail: "batched request produced no result".into(),
                    })
                })
            })
            .collect()
    }

    /// The resident training output, built on first use and shared by
    /// every assignment request afterwards.
    ///
    /// # Errors
    ///
    /// The (cached) training failure, if the resident training set
    /// cannot be trained.
    pub fn train_output(&self) -> Result<&TrainOutput, ClaireError> {
        self.trained
            .get_or_init(|| self.claire.train_with_engine(&self.training, &self.engine))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Scores a batch of test models against the resident training
    /// output — assignment, coverage, utilization, and PPA on
    /// custom/generic/library, exactly as the one-shot test phase. The
    /// whole batch shares one flat evaluation table.
    ///
    /// # Errors
    ///
    /// Training failure or any per-model evaluation failure.
    pub fn assign_batch(&self, models: &[Model]) -> Result<Vec<TestReport>, ClaireError> {
        let train = self.train_output()?;
        let out = self
            .claire
            .evaluate_test_with_engine(train, models, &self.engine)?;
        Ok(out.reports)
    }

    /// Scores one test model; see [`ResidentEngine::assign_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`ResidentEngine::assign_batch`].
    pub fn assign(&self, model: &Model) -> Result<TestReport, ClaireError> {
        let mut reports = self.assign_batch(std::slice::from_ref(model))?;
        reports.pop().ok_or(ClaireError::Internal {
            detail: "test phase returned no report for a one-model batch".into(),
        })
    }

    /// Probes whether `model` has a feasible configuration under
    /// `constraints`, without relaxation and without failing the
    /// server: infeasibility is an answer, not an error.
    ///
    /// # Errors
    ///
    /// Genuine evaluation failures (invalid inputs, internal errors) —
    /// never plain infeasibility.
    pub fn what_if(
        &self,
        model: &Model,
        constraints: Constraints,
    ) -> Result<WhatIfReport, ClaireError> {
        let claire = self.claire_for(Some(RobustnessPolicy::FailFast), Some(constraints));
        match claire.custom_for_with_engine(model, &self.engine) {
            Ok(result) => Ok(WhatIfReport {
                feasible: true,
                result: Some(result),
                infeasibility: None,
            }),
            Err(
                e @ (ClaireError::NoFeasibleConfiguration { .. }
                | ClaireError::ChipletAreaUnsatisfiable { .. }
                | ClaireError::IncompleteCoverage { .. }),
            ) => Ok(WhatIfReport {
                feasible: false,
                result: None,
                infeasibility: Some(e),
            }),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;

    #[test]
    fn batched_customs_match_one_shot() {
        let resident = ResidentEngine::new(ClaireOptions::default(), vec![]);
        let requests = vec![
            CustomRequest::new(zoo::resnet18()),
            CustomRequest::new(zoo::gpt2()),
        ];
        let batched = resident.custom_batch(&requests);
        let claire = Claire::default();
        for (req, got) in requests.iter().zip(&batched) {
            let got = got.as_ref().expect("batched custom succeeds");
            let one_shot = claire.custom_for(&req.model).expect("one-shot succeeds");
            assert_eq!(got.config.chiplets.len(), one_shot.config.chiplets.len());
            assert_eq!(got.report, one_shot.report);
        }
    }

    #[test]
    fn what_if_reports_infeasibility_as_an_answer() {
        let resident = ResidentEngine::new(ClaireOptions::default(), vec![]);
        let impossible = Constraints {
            chiplet_area_limit_mm2: 0.5,
            ..Constraints::default()
        };
        let report = resident
            .what_if(&zoo::alexnet(), impossible)
            .expect("probe itself succeeds");
        assert!(!report.feasible);
        assert!(report.infeasibility.is_some());

        let roomy = resident
            .what_if(&zoo::alexnet(), Constraints::default())
            .expect("probe succeeds");
        assert!(roomy.feasible);
        assert!(roomy.result.is_some());
    }

    #[test]
    fn custom_batch_degrades_with_provenance_under_degrade_policy() {
        // The resident constraints are unsatisfiable at rung 0; under
        // `Degrade` every batched request must still come back with an
        // answer, carrying the relaxation provenance — both down the
        // table-replay path and the constraint-override fallback path.
        let tight = Constraints {
            chiplet_area_limit_mm2: 0.5,
            ..Constraints::default()
        };
        let resident = ResidentEngine::new(
            ClaireOptions {
                constraints: tight,
                policy: RobustnessPolicy::Degrade,
                ..ClaireOptions::default()
            },
            vec![],
        );
        let mut overridden = CustomRequest::new(zoo::resnet18());
        overridden.constraints = Some(tight);
        let requests = vec![CustomRequest::new(zoo::alexnet()), overridden];
        let results = resident.custom_batch(&requests);
        for (req, got) in requests.iter().zip(&results) {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("{} not rescued: {e}", req.model.name()));
            assert!(
                got.degradation.is_some(),
                "{} lacks degradation provenance",
                req.model.name()
            );
            assert!(got.report.latency_s.is_finite());
        }
        // Provenance matches the one-shot façade bit for bit.
        let one_shot = Claire::new(ClaireOptions {
            constraints: Constraints {
                chiplet_area_limit_mm2: 0.5,
                ..Constraints::default()
            },
            policy: RobustnessPolicy::Degrade,
            ..ClaireOptions::default()
        })
        .custom_for(&zoo::alexnet())
        .expect("one-shot degrade");
        let batched = results[0].as_ref().expect("batched degrade");
        assert_eq!(
            format!("{:?}", batched.degradation),
            format!("{:?}", one_shot.degradation)
        );
        assert_eq!(batched.report, one_shot.report);
    }

    #[test]
    fn what_if_pins_fail_fast_even_under_resident_degrade_policy() {
        // A what-if probe must answer "infeasible", never silently
        // relax: the resident Degrade policy may not leak into it.
        let resident = ResidentEngine::new(
            ClaireOptions {
                policy: RobustnessPolicy::Degrade,
                ..ClaireOptions::default()
            },
            vec![],
        );
        let impossible = Constraints {
            chiplet_area_limit_mm2: 0.5,
            ..Constraints::default()
        };
        let report = resident
            .what_if(&zoo::alexnet(), impossible)
            .expect("probe succeeds");
        assert!(!report.feasible, "degrade policy leaked into what_if");
        assert!(matches!(
            report.infeasibility,
            Some(ClaireError::NoFeasibleConfiguration { .. })
        ));
    }

    #[test]
    fn cancelled_requests_answer_deadline_exceeded_without_contamination() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let resident = ResidentEngine::new(ClaireOptions::default(), vec![]);
        let cancel = Arc::new(AtomicBool::new(true));
        let mut doomed = CustomRequest::new(zoo::resnet18());
        doomed.cancel = Some(cancel);
        doomed.deadline_ms = Some(7);
        let requests = vec![CustomRequest::new(zoo::alexnet()), doomed];
        let results = resident.custom_batch(&requests);
        match &results[1] {
            Err(ClaireError::DeadlineExceeded { deadline_ms, .. }) => {
                assert_eq!(*deadline_ms, 7);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The surviving request is bit-identical to a batch that never
        // carried a cancelled neighbour: memo tiers are exact, so
        // cancellation cannot contaminate completed work.
        let alone = resident.custom_batch(&[CustomRequest::new(zoo::alexnet())]);
        let survivor = results[0].as_ref().expect("survivor succeeds");
        let reference = alone[0].as_ref().expect("solo succeeds");
        assert_eq!(survivor.report, reference.report);
        assert_eq!(
            format!("{:?}", survivor.config),
            format!("{:?}", reference.config)
        );
    }

    #[test]
    fn checkpoints_are_throttled_by_dirty_tier_deltas() {
        let dir = std::env::temp_dir().join(format!("claire-resident-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let resident = ResidentEngine::new(
            ClaireOptions {
                cache_dir: Some(dir.clone()),
                ..ClaireOptions::default()
            },
            vec![],
        );
        resident.custom_batch(&[CustomRequest::new(zoo::alexnet())]);
        assert_eq!(resident.checkpoint().expect("first checkpoint"), Some(1));
        // Nothing new memoized: the dirty-delta throttle skips.
        assert_eq!(resident.checkpoint().expect("clean checkpoint"), None);
        resident.custom_batch(&[CustomRequest::new(zoo::resnet18())]);
        assert_eq!(resident.checkpoint().expect("dirty checkpoint"), Some(2));
        assert_eq!(resident.checkpoint_generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assignment_reuses_the_lazily_trained_output() {
        let resident = ResidentEngine::new(
            ClaireOptions::default(),
            vec![zoo::resnet18(), zoo::resnet50(), zoo::gpt2()],
        );
        let report = resident.assign(&zoo::alexnet()).expect("assign");
        assert!(report.assigned_library.is_some());
        // Second call must not retrain: the cached output is the same
        // allocation.
        let first = std::ptr::from_ref(resident.train_output().expect("trained"));
        let second = std::ptr::from_ref(resident.train_output().expect("trained"));
        assert_eq!(first, second);
        let again = resident.assign(&zoo::alexnet()).expect("assign");
        assert_eq!(report.ppa.library, again.ppa.library);
    }
}
