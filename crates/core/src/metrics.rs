//! Step #TT2 composable metrics: algorithm coverage `C_layer`,
//! chiplet utilization `U_chiplet`, and normalised NRE cost.

use crate::config::DesignConfig;
use claire_cost::NreModel;
use claire_model::Model;
use std::collections::BTreeSet;

/// Algorithm coverage `C_layer(i, k)`: "the percentage of layers in
/// algorithm *i* that can be implemented by design configuration
/// `C_k`, divided by the total number of layers". 1.0 = the required
/// 100 %.
pub fn algorithm_coverage(model: &Model, config: &DesignConfig) -> f64 {
    let total = model.layer_count();
    if total == 0 {
        return 1.0;
    }
    let implementable = model
        .layers()
        .iter()
        .filter(|l| config.supports(l.op_class()))
        .count();
    implementable as f64 / total as f64
}

/// Chiplet utilization `U_chiplet(i, k)`: "the fraction of modules
/// utilized within the chiplets of the design configuration when
/// algorithm *i* is mapped onto it".
///
/// A *module group* is one hardware-unit class instantiated on a
/// chiplet; the metric counts groups the algorithm's layers execute on
/// (Tanh layers exercising the GELU unit count the GELU group)
/// divided by the total number of groups across the configuration's
/// chiplets (its class count, for a monolithic configuration).
pub fn chiplet_utilization(model: &Model, config: &DesignConfig) -> f64 {
    let total = if config.chiplets.is_empty() {
        config.classes.len()
    } else {
        config.chiplets.iter().map(|c| c.classes.len()).sum()
    };
    if total == 0 {
        return 0.0;
    }
    let used: BTreeSet<_> = model
        .op_class_counts()
        .keys()
        .filter_map(|&c| config.executing_class(c))
        .collect();
    used.len() as f64 / total as f64
}

/// Normalised NRE cost of a configuration: its system NRE divided by
/// the generic configuration's (the paper's `NRE_k` /
/// `NRE_i` normalisation).
///
/// # Panics
///
/// Panics if either configuration has no chiplets (cluster first).
pub fn normalized_nre(model: &NreModel, config: &DesignConfig, generic: &DesignConfig) -> f64 {
    assert!(
        !config.chiplets.is_empty() && !generic.chiplets.is_empty(),
        "normalized_nre requires clustered configurations"
    );
    let nre = model.system_nre(&config.chiplet_areas());
    let reference = model.system_nre(&generic.chiplet_areas());
    model.normalized(nre, reference)
}

/// Cumulative normalised NRE of a set of custom configurations —
/// `NRE_cstm(k, S) = Σ_{i ∈ S} NRE_i` (the paper's comparison target
/// for each library configuration).
pub fn cumulative_custom_nre(
    model: &NreModel,
    customs: &[&DesignConfig],
    generic: &DesignConfig,
) -> f64 {
    customs
        .iter()
        .map(|c| normalized_nre(model, c, generic))
        .sum()
}

/// A hardened chiplet's identity for cross-configuration reuse: the
/// tunable hardware parameters plus the module-group set. Two chiplets
/// with equal signatures are the same hardened IP — the paper's core
/// premise ("similar to soft IPs for SoC development, chiplets can be
/// pre-designed and pre-verified").
pub type ChipletSignature = (claire_ppa::HwParams, BTreeSet<claire_model::OpClass>);

/// Portfolio-level NRE of a set of configurations with hardened-IP
/// reuse: each distinct chiplet signature pays its die NRE once across
/// the whole portfolio; per-configuration integration/package costs
/// are still paid per configuration.
///
/// Returns `(naive, deduped, reuse)`: the naive per-configuration NRE
/// sum, the deduplicated portfolio NRE, and each signature's user list
/// (configuration names), reuse-heavy first.
pub fn portfolio_nre(
    model: &NreModel,
    configs: &[&DesignConfig],
) -> (f64, f64, Vec<(ChipletSignature, Vec<String>)>) {
    let mut naive = 0.0;
    let mut users: std::collections::BTreeMap<ChipletSignature, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut integration = 0.0;
    for cfg in configs {
        assert!(
            !cfg.chiplets.is_empty(),
            "portfolio_nre requires clustered configs"
        );
        naive += model.system_nre(&cfg.chiplet_areas());
        integration +=
            model.integration_per_chiplet * cfg.chiplets.len() as f64 + model.package_base;
        for ch in &cfg.chiplets {
            users
                .entry((cfg.hw, ch.classes.clone()))
                .or_default()
                .push(cfg.name.clone());
        }
    }
    // Deduped: each distinct signature hardened once.
    let mut deduped = integration;
    for (hw, classes) in users.keys() {
        let area: f64 = classes
            .iter()
            .map(|&c| claire_ppa::unit_area_mm2(c, hw))
            .sum();
        deduped += model.chiplet_nre(area.max(1e-6));
    }
    let mut reuse: Vec<(ChipletSignature, Vec<String>)> = users.into_iter().collect();
    reuse.sort_by(|a, b| {
        b.1.len()
            .cmp(&a.1.len())
            .then_with(|| a.0 .1.len().cmp(&b.0 .1.len()))
    });
    (naive, deduped, reuse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Chiplet;
    use claire_model::{zoo, ActivationKind, OpClass};
    use claire_ppa::HwParams;

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    fn clustered(name: &str, groups: &[&[OpClass]]) -> DesignConfig {
        let all: BTreeSet<OpClass> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        let mut cfg = DesignConfig::monolithic(name, hw(), all);
        cfg.chiplets = groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                Chiplet::from_classes(format!("L{}", i + 1), g.iter().copied().collect(), &hw())
            })
            .collect();
        cfg
    }

    #[test]
    fn full_coverage_is_one() {
        let m = zoo::alexnet();
        let cfg = DesignConfig::monolithic("c", hw(), m.op_class_counts().into_keys().collect());
        assert_eq!(algorithm_coverage(&m, &cfg), 1.0);
    }

    #[test]
    fn partial_coverage_counts_layers() {
        let m = zoo::alexnet();
        let mut classes: BTreeSet<OpClass> = m.op_class_counts().into_keys().collect();
        classes.remove(&OpClass::Linear); // drop the 3 classifier FCs
        let cfg = DesignConfig::monolithic("c", hw(), classes);
        let cov = algorithm_coverage(&m, &cfg);
        let linear_layers = m.op_class_counts()[&OpClass::Linear] as f64;
        let want = 1.0 - linear_layers / m.layer_count() as f64;
        assert!((cov - want).abs() < 1e-12);
    }

    #[test]
    fn utilization_counts_chiplet_groups() {
        // AlexNet on a 10-group C1-style configuration: uses 5 groups.
        let c1 = clustered(
            "C_1",
            &[
                &[
                    OpClass::Conv2d,
                    OpClass::Activation(ActivationKind::Relu),
                    OpClass::Activation(ActivationKind::Relu6),
                    OpClass::Pooling(claire_model::PoolingKind::MaxPool),
                    OpClass::Pooling(claire_model::PoolingKind::AvgPool),
                ],
                &[
                    OpClass::Linear,
                    OpClass::Activation(ActivationKind::Gelu),
                    OpClass::Pooling(claire_model::PoolingKind::AdaptiveAvgPool),
                    OpClass::Flatten,
                    OpClass::Permute,
                ],
            ],
        );
        let u = chiplet_utilization(&zoo::alexnet(), &c1);
        assert!((u - 0.5).abs() < 1e-12, "{u}"); // Table V: 0.5
        let u = chiplet_utilization(&zoo::detr(), &c1);
        assert!((u - 0.4).abs() < 1e-12, "{u}"); // Table V: 0.4
    }

    #[test]
    fn tanh_counts_the_gelu_group_once() {
        let c3 = clustered(
            "C_3",
            &[&[
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Gelu),
                OpClass::Activation(ActivationKind::Silu),
                OpClass::Conv2d,
            ]],
        );
        // BERT = Linear + GELU + Tanh→GELU: 2 of 4 groups.
        let u = chiplet_utilization(&zoo::bert_base(), &c3);
        assert!((u - 0.5).abs() < 1e-12, "{u}");
    }

    #[test]
    fn library_beats_generic_utilization() {
        let m = zoo::bert_base();
        let generic = clustered("C_g", &[&OpClass::all()[..7], &OpClass::all()[7..]]);
        let c3 = clustered(
            "C_3",
            &[&[
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Gelu),
                OpClass::Activation(ActivationKind::Silu),
            ]],
        );
        assert!(chiplet_utilization(&m, &c3) > 2.0 * chiplet_utilization(&m, &generic));
    }

    #[test]
    fn two_chiplets_cost_half_of_four() {
        let nre = NreModel::tsmc28();
        let two = clustered("a", &[&[OpClass::Conv2d], &[OpClass::Linear]]);
        let four = clustered(
            "g",
            &[
                &[OpClass::Conv2d],
                &[OpClass::Linear],
                &[OpClass::Conv1d],
                &[OpClass::Activation(ActivationKind::Gelu)],
            ],
        );
        let r = normalized_nre(&nre, &two, &four);
        assert!((0.4..0.6).contains(&r), "{r}");
        // Cumulative: 3 two-chiplet customs ≈ 1.5.
        let c = cumulative_custom_nre(&nre, &[&two, &two, &two], &four);
        assert!((1.3..1.7).contains(&c), "{c}");
    }

    #[test]
    fn portfolio_dedup_never_costs_more() {
        let nre = NreModel::tsmc28();
        let a = clustered("a", &[&[OpClass::Conv2d], &[OpClass::Linear]]);
        let b = clustered("b", &[&[OpClass::Conv2d], &[OpClass::Linear]]);
        let (naive, deduped, reuse) = portfolio_nre(&nre, &[&a, &b]);
        assert!(deduped < naive, "{deduped} !< {naive}");
        // Both signatures reused by both configurations.
        assert_eq!(reuse.len(), 2);
        assert_eq!(reuse[0].1.len(), 2);
    }

    #[test]
    fn portfolio_without_overlap_keeps_die_costs() {
        let nre = NreModel::tsmc28();
        let a = clustered("a", &[&[OpClass::Conv2d]]);
        let b = clustered("b", &[&[OpClass::Conv1d]]);
        let (naive, deduped, reuse) = portfolio_nre(&nre, &[&a, &b]);
        // No shared signatures: dedup only removes double-counted
        // routing/PHY area inside chiplet_nre vs per-config areas.
        assert_eq!(reuse.len(), 2);
        assert!(reuse.iter().all(|(_, u)| u.len() == 1));
        assert!(deduped <= naive + 1e-9);
    }

    #[test]
    #[should_panic(expected = "clustered")]
    fn nre_requires_clusters() {
        let nre = NreModel::tsmc28();
        let mono = DesignConfig::monolithic("m", hw(), [OpClass::Linear].into_iter().collect());
        normalized_nre(&nre, &mono, &mono);
    }
}
