//! Error type for the CLAIRE framework.

use std::fmt;

/// Errors produced by the CLAIRE training/testing flow.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaireError {
    /// The training or test set was empty.
    EmptyAlgorithmSet,
    /// No configuration in the DSE scope satisfied the constraints
    /// for the named algorithm (or algorithm set).
    NoFeasibleConfiguration {
        /// The algorithm (or subset description) that failed.
        subject: String,
    },
    /// Clustering could not keep every chiplet under the area limit:
    /// a single module group already exceeds it.
    ChipletAreaUnsatisfiable {
        /// The offending module group.
        group: String,
        /// Its area, mm².
        area_mm2: f64,
        /// The limit it exceeds, mm².
        limit_mm2: f64,
    },
    /// An algorithm was evaluated on a configuration that does not
    /// cover all of its layer types (`C_layer < 100 %`).
    IncompleteCoverage {
        /// The algorithm.
        algorithm: String,
        /// The configuration.
        config: String,
        /// A layer class the configuration cannot implement.
        missing: String,
    },
    /// A worker closure panicked inside a parallel map; the panic was
    /// contained and the sweep's remaining items completed.
    WorkerPanic {
        /// Index of the work item whose closure panicked.
        index: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An evaluated metric came out NaN or infinite — corrupt unit-PPA
    /// data or a degenerate configuration; the report was withheld
    /// rather than propagating the non-finite value.
    NonFiniteMetric {
        /// The algorithm being evaluated.
        algorithm: String,
        /// The configuration it was evaluated on.
        config: String,
        /// Which metric failed the finiteness check.
        metric: &'static str,
    },
    /// An input failed validation before the pipeline ran (empty or
    /// zero-valued DSE axes, degenerate hardware parameters, …).
    InvalidInput {
        /// What was wrong.
        what: String,
    },
    /// No route exists between two op classes' execution sites — every
    /// path crosses a failed NoC link.
    NoRoute {
        /// Source op class.
        from: String,
        /// Destination op class.
        to: String,
    },
    /// An internal invariant did not hold; surfaced as a typed error
    /// instead of a panic so callers can degrade gracefully.
    Internal {
        /// The violated invariant.
        detail: String,
    },
    /// A warm-state snapshot could not be read: missing or truncated
    /// file, bad magic, foreign endianness, version mismatch, checksum
    /// failure, or a payload that fails validation. Callers degrade to
    /// a cold start — the snapshot is an accelerator, never an input.
    SnapshotInvalid {
        /// What was wrong with the snapshot.
        detail: String,
    },
    /// The serving admission queue was full when the request arrived;
    /// the request was shed instead of queued unboundedly. Retry after
    /// backoff — shedding is load control, not failure of the request
    /// itself.
    Overloaded {
        /// Requests already waiting when this one was shed.
        queued: usize,
        /// The admission queue's capacity.
        capacity: usize,
    },
    /// The request's declared deadline expired before (or while) it
    /// was evaluated; partial work was cancelled cooperatively and no
    /// answer is returned.
    DeadlineExceeded {
        /// The deadline the request declared, in milliseconds.
        deadline_ms: u64,
        /// Where the deadline fired: "queued" (expired while waiting
        /// for admission/dispatch) or "evaluating" (cancelled at a
        /// cooperative checkpoint mid-evaluation).
        stage: &'static str,
    },
}

impl fmt::Display for ClaireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaireError::EmptyAlgorithmSet => write!(f, "algorithm set is empty"),
            ClaireError::NoFeasibleConfiguration { subject } => {
                write!(f, "no DSE configuration satisfies the constraints for {subject}")
            }
            ClaireError::ChipletAreaUnsatisfiable {
                group,
                area_mm2,
                limit_mm2,
            } => write!(
                f,
                "module group {group} ({area_mm2:.1} mm²) exceeds the chiplet area limit ({limit_mm2:.1} mm²)"
            ),
            ClaireError::IncompleteCoverage {
                algorithm,
                config,
                missing,
            } => write!(
                f,
                "configuration {config} cannot implement layer class {missing} of {algorithm}"
            ),
            ClaireError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
            ClaireError::NonFiniteMetric {
                algorithm,
                config,
                metric,
            } => write!(
                f,
                "metric {metric} of {algorithm} on {config} is not finite"
            ),
            ClaireError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            ClaireError::NoRoute { from, to } => {
                write!(f, "no surviving NoC route from {from} to {to}")
            }
            ClaireError::Internal { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            ClaireError::SnapshotInvalid { detail } => {
                write!(f, "warm-state snapshot rejected: {detail}")
            }
            ClaireError::Overloaded { queued, capacity } => {
                write!(
                    f,
                    "admission queue full ({queued}/{capacity} waiting); request shed"
                )
            }
            ClaireError::DeadlineExceeded { deadline_ms, stage } => {
                write!(f, "deadline of {deadline_ms} ms exceeded while {stage}")
            }
        }
    }
}

impl std::error::Error for ClaireError {}

impl From<crate::parallel::WorkerPanic> for ClaireError {
    fn from(p: crate::parallel::WorkerPanic) -> Self {
        ClaireError::WorkerPanic {
            index: p.index,
            message: p.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ClaireError::NoFeasibleConfiguration {
            subject: "VGG16".into(),
        };
        assert!(e.to_string().contains("VGG16"));
        let e = ClaireError::IncompleteCoverage {
            algorithm: "BERT-base".into(),
            config: "C_1".into(),
            missing: "TANH".into(),
        };
        assert!(e.to_string().contains("TANH"));
    }
}
