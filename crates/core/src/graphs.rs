//! Step #TR1: initial graph construction.
//!
//! Each algorithm becomes `G_ini(N, E, w_N, w_E)`: nodes are hardware
//! units (systolic-array groups, activation/pooling/reshape units),
//! node weights are "the number of times the node needs to be executed
//! to compute the entire layer" (tile/sub-task counts under the
//! configured hardware), and edge weights are "the volume of data
//! communication between layers" in bytes (8-bit activations).

use crate::evaluate::CostProvider;
use claire_graph::WeightedGraph;
use claire_model::{Model, OpClass};
use claire_ppa::{layer_cost, HwParams};
use std::collections::BTreeMap;

/// Builds the initial graph `G_ini` of one algorithm under `hw`.
///
/// Node weights accumulate the execution (sub-task) counts of every
/// layer mapping to that unit; edge weights accumulate the activation
/// volume flowing between consecutive layers' units.
pub fn build_graph(model: &Model, hw: &HwParams) -> WeightedGraph<OpClass> {
    build_graph_with_costs(model, hw, &RawCosts)
}

/// [`build_graph`] with layer costs served by `costs` (e.g. the
/// memoized [`crate::parallel::Engine`]) — value-identical, since the
/// provider contract is to return exactly what a recomputation would.
pub fn build_graph_with_costs<C: CostProvider + ?Sized>(
    model: &Model,
    hw: &HwParams,
    costs: &C,
) -> WeightedGraph<OpClass> {
    let mut g = WeightedGraph::new();
    for layer in model.layers() {
        let cost = costs.layer_cost(&layer.kind, hw);
        g.add_node(layer.op_class(), cost.executions as f64);
    }
    for (a, b, bytes) in model.edges() {
        g.add_edge(a, b, bytes as f64);
    }
    g
}

/// Builds the universal graph `UG` of an algorithm set: the merge of
/// all individual graphs, consolidating node and edge weights.
pub fn universal_graph(models: &[Model], hw: &HwParams) -> WeightedGraph<OpClass> {
    universal_graph_with_costs(models, hw, &RawCosts)
}

/// [`universal_graph`] with layer costs served by `costs`.
pub fn universal_graph_with_costs<C: CostProvider + ?Sized>(
    models: &[Model],
    hw: &HwParams,
    costs: &C,
) -> WeightedGraph<OpClass> {
    let mut ug = WeightedGraph::new();
    for m in models {
        ug.merge(&build_graph_with_costs(m, hw, costs));
    }
    ug
}

/// The unmemoized provider behind the plain entry points.
struct RawCosts;

impl CostProvider for RawCosts {
    fn layer_cost(
        &self,
        kind: &claire_model::LayerKind,
        hw: &claire_ppa::HwParams,
    ) -> claire_ppa::LayerCost {
        layer_cost(kind, hw)
    }
}

/// Edge-combination occurrence counts across an algorithm set — the
/// data behind the paper's Fig. 2 ("Number of edge occurrences for
/// edge combinations/layer connections in the training set
/// algorithms"), sorted descending.
pub fn edge_histogram(models: &[Model]) -> Vec<((OpClass, OpClass), u32)> {
    let mut counts: BTreeMap<(OpClass, OpClass), u32> = BTreeMap::new();
    for m in models {
        for (pair, n) in m.edge_combination_counts() {
            *counts.entry(pair).or_insert(0) += n;
        }
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    #[test]
    fn graph_nodes_match_model_inventory() {
        let m = zoo::alexnet();
        let g = build_graph(&m, &hw());
        assert_eq!(g.node_count(), m.op_class_counts().len());
    }

    #[test]
    fn node_weights_are_execution_counts() {
        let m = zoo::alexnet();
        let g = build_graph(&m, &hw());
        // Every node executed at least once.
        for (n, w) in g.nodes() {
            assert!(w >= 1.0, "{n} weight {w}");
        }
        // Conv tiles dominate: AlexNet's conv stack needs many waves.
        let conv_w = g.node_weight(&OpClass::Conv2d).unwrap();
        assert!(conv_w > 100.0, "{conv_w}");
    }

    #[test]
    fn edge_weights_are_data_volumes() {
        let m = zoo::alexnet();
        let g = build_graph(&m, &hw());
        // conv1 -> relu edge carries 55*55*64 activations (+ later
        // conv->relu hops accumulated on the same class pair).
        let w = g
            .edge_weight(
                &OpClass::Conv2d,
                &OpClass::Activation(claire_model::ActivationKind::Relu),
            )
            .unwrap();
        assert!(w >= (55 * 55 * 64) as f64);
    }

    #[test]
    fn universal_graph_sums_members() {
        let models = [zoo::resnet18(), zoo::alexnet()];
        let ug = universal_graph(&models, &hw());
        let g0 = build_graph(&models[0], &hw());
        let g1 = build_graph(&models[1], &hw());
        let w_ug = ug.node_weight(&OpClass::Conv2d).unwrap();
        let w_sum =
            g0.node_weight(&OpClass::Conv2d).unwrap() + g1.node_weight(&OpClass::Conv2d).unwrap();
        assert!((w_ug - w_sum).abs() < 1e-9);
    }

    #[test]
    fn fig2_linear_linear_dominates_training_set() {
        // "The LINEAR-LINEAR connection is the most dominant, largely
        // due to the Q, K, V operations in Transformer-based
        // algorithms."
        let hist = edge_histogram(&zoo::training_set());
        assert_eq!(hist[0].0, (OpClass::Linear, OpClass::Linear));
    }

    #[test]
    fn fig2_conv_relu_is_a_top_combination() {
        // "Next is the CONV2D-RELU connection, which is prevalent due
        // to its frequent use in CNNs." — top-4 in our extraction.
        let hist = edge_histogram(&zoo::training_set());
        let pos = hist
            .iter()
            .position(|(pair, _)| {
                *pair
                    == (
                        OpClass::Conv2d,
                        OpClass::Activation(claire_model::ActivationKind::Relu),
                    )
            })
            .expect("CONV2D-RELU present");
        assert!(pos < 4, "CONV2D-RELU ranked {pos}");
    }

    #[test]
    fn histogram_is_sorted_descending() {
        let hist = edge_histogram(&zoo::training_set());
        for w in hist.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
