//! Deterministic, seeded fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes *which* faults to inject and *how often*,
//! and hands out per-site decisions that are a pure function of
//! `(seed, fault class, site)`. Sites are stable identifiers of the
//! place a fault could strike — a layer-cost cache key, a model ×
//! configuration pair, a work-item index, a torus link — hashed with a
//! fixed (non-random) hasher, so a plan injects the *same* faults at
//! the *same* places regardless of thread count, scheduling, or how
//! many times a site is visited. That makes every failure the harness
//! provokes exactly reproducible: rerun with the same seed and the
//! same fault fires again.
//!
//! The plan is wired into [`crate::parallel::Engine`] via
//! [`Engine::with_faults`](crate::parallel::Engine::with_faults); with
//! no plan attached (the default) every hook below is compiled but
//! never consulted on the hot path beyond an `Option` check, and the
//! engine's outputs are bit-identical to an unfaulted build.
//!
//! Fault classes and the hardened behaviour they exercise:
//!
//! * [`FaultClass::NanPpa`] / [`FaultClass::InfPpa`] /
//!   [`FaultClass::PerturbPpa`] — corrupt unit-PPA energies after the
//!   analytical model computes them. Non-finite values are rejected at
//!   the cache-insert boundary and surface as
//!   [`ClaireError::NonFiniteMetric`](crate::ClaireError::NonFiniteMetric)
//!   from evaluation; perturbed-but-finite values flow through
//!   normally (they model calibration drift, not corruption).
//! * [`FaultClass::DropCoverage`] — pretend a configuration lost an
//!   op class, surfacing
//!   [`ClaireError::IncompleteCoverage`](crate::ClaireError::IncompleteCoverage).
//! * [`FaultClass::WorkerPanic`] — panic inside a
//!   [`try_par_map`](crate::parallel::Engine::try_par_map) worker;
//!   contained by `catch_unwind` and surfaced as
//!   [`ClaireError::WorkerPanic`](crate::ClaireError::WorkerPanic).
//! * [`FaultClass::PoisonShard`] — poison layer-cost cache shards at
//!   engine construction; recovered by the poison-tolerant lock
//!   accessors (memo caches hold pure values, so a panicked writer
//!   cannot leave them logically corrupt).
//! * [`FaultClass::InfeasibleConstraints`] — substitute an
//!   unsatisfiable constraint set for a DSE subject; fail-fast mode
//!   surfaces the typed error, degrade mode walks the relaxation
//!   ladder (see [`crate::dse::RobustnessPolicy`]).
//! * [`FaultClass::FailedNocLink`] — mark 2D-torus links dead; route
//!   tables recompute routes around them (degraded hop counts) and
//!   surface [`ClaireError::NoRoute`](crate::ClaireError::NoRoute)
//!   when a class pair is disconnected.
//!
//! Four further classes cover the *serving* layer. They are consulted
//! by the `serve` front end (never by the engine itself, so an armed
//! serve plan does not disable warm-state snapshots and engine answers
//! stay bit-identical):
//!
//! * [`FaultClass::DroppedConnection`] — abruptly close an accepted
//!   connection after its first request; the server cleans up the
//!   connection's threads and keeps serving everyone else.
//! * [`FaultClass::SlowLorisClient`] — treat a connection as a stalled
//!   writer (a client that never completes a line); the read-timeout
//!   path answers a typed wire error and closes it.
//! * [`FaultClass::MidBatchPanic`] — panic inside the dispatcher while
//!   a batch is mid-evaluation; contained by `catch_unwind`, every
//!   request in the batch is answered with a typed
//!   [`ClaireError::WorkerPanic`](crate::ClaireError::WorkerPanic).
//! * [`FaultClass::CheckpointWriteFailure`] — fail a background
//!   warm-state checkpoint write; the server logs and keeps serving,
//!   and the previous checkpoint generation stays intact on disk.

use crate::telemetry::{ArgValue, Metric, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The classes of fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Replace a unit-PPA energy with NaN.
    NanPpa,
    /// Replace a unit-PPA energy with +∞.
    InfPpa,
    /// Scale a unit-PPA energy by a deterministic finite factor.
    PerturbPpa,
    /// Pretend a configuration cannot cover one of a model's classes.
    DropCoverage,
    /// Panic inside a `try_par_map` worker closure.
    WorkerPanic,
    /// Poison a layer-cost cache shard at engine construction.
    PoisonShard,
    /// Substitute an unsatisfiable constraint set for a DSE subject.
    InfeasibleConstraints,
    /// Mark a 2D-torus link as failed, forcing route-around.
    FailedNocLink,
    /// Abruptly drop an accepted serve connection after its first
    /// request (serve layer).
    DroppedConnection,
    /// Treat a serve connection as a stalled slow-loris writer,
    /// driving the read-timeout path (serve layer).
    SlowLorisClient,
    /// Panic inside the serve dispatcher mid-batch (serve layer).
    MidBatchPanic,
    /// Fail a background warm-state checkpoint write (serve layer).
    CheckpointWriteFailure,
}

impl FaultClass {
    /// Number of fault classes.
    pub const COUNT: usize = 12;

    /// Every fault class, in a fixed order.
    pub const ALL: [FaultClass; FaultClass::COUNT] = [
        FaultClass::NanPpa,
        FaultClass::InfPpa,
        FaultClass::PerturbPpa,
        FaultClass::DropCoverage,
        FaultClass::WorkerPanic,
        FaultClass::PoisonShard,
        FaultClass::InfeasibleConstraints,
        FaultClass::FailedNocLink,
        FaultClass::DroppedConnection,
        FaultClass::SlowLorisClient,
        FaultClass::MidBatchPanic,
        FaultClass::CheckpointWriteFailure,
    ];

    /// The serve-layer classes, in `ALL` order — the subset a
    /// `--serve-faults` plan arms by default.
    pub const SERVE: [FaultClass; 4] = [
        FaultClass::DroppedConnection,
        FaultClass::SlowLorisClient,
        FaultClass::MidBatchPanic,
        FaultClass::CheckpointWriteFailure,
    ];

    /// Dense index, used for the rate and counter tables.
    fn index(self) -> usize {
        match self {
            FaultClass::NanPpa => 0,
            FaultClass::InfPpa => 1,
            FaultClass::PerturbPpa => 2,
            FaultClass::DropCoverage => 3,
            FaultClass::WorkerPanic => 4,
            FaultClass::PoisonShard => 5,
            FaultClass::InfeasibleConstraints => 6,
            FaultClass::FailedNocLink => 7,
            FaultClass::DroppedConnection => 8,
            FaultClass::SlowLorisClient => 9,
            FaultClass::MidBatchPanic => 10,
            FaultClass::CheckpointWriteFailure => 11,
        }
    }

    /// The class's lower-snake-case label, used in telemetry event
    /// arguments, counter names, and `--serve-faults` specs.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NanPpa => "nan_ppa",
            FaultClass::InfPpa => "inf_ppa",
            FaultClass::PerturbPpa => "perturb_ppa",
            FaultClass::DropCoverage => "drop_coverage",
            FaultClass::WorkerPanic => "worker_panic",
            FaultClass::PoisonShard => "poison_shard",
            FaultClass::InfeasibleConstraints => "infeasible_constraints",
            FaultClass::FailedNocLink => "failed_noc_link",
            FaultClass::DroppedConnection => "dropped_connection",
            FaultClass::SlowLorisClient => "slow_loris_client",
            FaultClass::MidBatchPanic => "mid_batch_panic",
            FaultClass::CheckpointWriteFailure => "checkpoint_write_failure",
        }
    }

    /// Parses a class from its [`label`](FaultClass::label).
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.label() == label)
    }

    /// A per-class tag mixed into every decision hash so the same
    /// site draws independently for different classes.
    fn tag(self) -> u64 {
        // Arbitrary distinct odd constants; any fixed values work.
        0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(self.index() as u64 * 2 + 1)
    }
}

/// A seeded, reproducible fault-injection plan.
///
/// Build one with [`FaultPlan::new`] and per-class rates via
/// [`FaultPlan::with`]; rates are probabilities in `[0, 1]` applied
/// independently per *site* (1.0 = fault every site of that class).
/// Decisions are pure functions of `(seed, class, site)` — see the
/// module docs for the determinism argument. Injection counters record
/// how many *distinct decisions* came up positive (a site revisited
/// through a cache miss may be counted again; counters are for test
/// assertions, not exact occurrence accounting).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultClass::COUNT],
    injected: [AtomicU64; FaultClass::COUNT],
    /// Set once by [`crate::Engine::with_faults`]; mirrors every
    /// positive decision into the engine's fault counters and (when
    /// tracing) the trace as `fault.injected` instant events.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl FaultPlan {
    /// A plan with the given seed and every rate zero (injects
    /// nothing until [`FaultPlan::with`] arms a class).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; FaultClass::COUNT],
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            telemetry: OnceLock::new(),
        }
    }

    /// Binds the plan to an engine's telemetry hub (first bind wins;
    /// a plan is owned by at most one engine).
    pub(crate) fn attach_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The attached telemetry hub, if any.
    pub(crate) fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.get().map(Arc::as_ref)
    }

    /// Arms `class` at `rate` (clamped to `[0, 1]`), builder style.
    pub fn with(mut self, class: FaultClass, rate: f64) -> Self {
        self.rates[class.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed rate for `class`.
    pub fn rate(&self, class: FaultClass) -> f64 {
        self.rates[class.index()]
    }

    /// How many positive injection decisions `class` has produced.
    pub fn injections(&self, class: FaultClass) -> u64 {
        self.injected[class.index()].load(Ordering::Relaxed)
    }

    /// Total positive injection decisions across all classes.
    pub fn total_injections(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// True when any PPA-corruption class is armed (the engine then
    /// routes compute sums through the per-layer path so corruption
    /// and finiteness checks see every layer).
    pub fn has_ppa_faults(&self) -> bool {
        self.rate(FaultClass::NanPpa) > 0.0
            || self.rate(FaultClass::InfPpa) > 0.0
            || self.rate(FaultClass::PerturbPpa) > 0.0
    }

    /// True when torus links may fail under this plan.
    pub fn has_link_faults(&self) -> bool {
        self.rate(FaultClass::FailedNocLink) > 0.0
    }

    /// The deterministic decision for `(class, site)`: true iff the
    /// site's unit draw falls under the class rate. Counts positive
    /// decisions.
    fn decide(&self, class: FaultClass, site: u64) -> bool {
        let rate = self.rates[class.index()];
        if rate <= 0.0 {
            return false;
        }
        let hit = unit_draw(self.seed, class, site) < rate;
        if hit {
            self.injected[class.index()].fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry() {
                t.count(Metric::for_fault(class));
                if t.tracing_enabled() {
                    t.instant(
                        "fault.injected",
                        "fault",
                        vec![
                            ("class", ArgValue::Text(class.label().to_owned())),
                            ("site", ArgValue::Int(site)),
                        ],
                    );
                }
            }
        }
        hit
    }

    /// Corrupts a unit-PPA cost at `site` per the armed PPA classes:
    /// NaN beats Inf beats a finite perturbation. Returns the cost
    /// unchanged when no class fires.
    pub fn corrupt_cost(
        &self,
        site: u64,
        mut cost: claire_ppa::LayerCost,
    ) -> claire_ppa::LayerCost {
        if self.decide(FaultClass::NanPpa, site) {
            cost.energy_pj = f64::NAN;
        } else if self.decide(FaultClass::InfPpa, site) {
            cost.energy_pj = f64::INFINITY;
        } else if self.decide(FaultClass::PerturbPpa, site) {
            // A deterministic drift in (1, 2]: large enough to move
            // every downstream aggregate, still finite and positive.
            let drift = 1.0 + unit_draw(self.seed, FaultClass::PerturbPpa, site ^ 0x5eed);
            cost.energy_pj *= drift;
        }
        cost
    }

    /// Whether evaluating `algorithm` on `config` should pretend an
    /// op class is uncovered.
    pub fn drops_coverage(&self, algorithm: &str, config: &str) -> bool {
        let site = fnv1a(algorithm.as_bytes()) ^ fnv1a(config.as_bytes()).rotate_left(17);
        self.decide(FaultClass::DropCoverage, site)
    }

    /// Whether the worker processing item `index` should panic.
    pub fn panics_worker(&self, index: usize) -> bool {
        self.decide(FaultClass::WorkerPanic, index as u64)
    }

    /// Which of `n` cache shards to poison at engine construction.
    pub fn poisoned_shards(&self, n: usize) -> Vec<usize> {
        (0..n)
            .filter(|&i| self.decide(FaultClass::PoisonShard, i as u64))
            .collect()
    }

    /// Whether the DSE subject named `subject` should face an
    /// unsatisfiable constraint set.
    pub fn infeasible_constraints(&self, subject: &str) -> bool {
        self.decide(FaultClass::InfeasibleConstraints, fnv1a(subject.as_bytes()))
    }

    /// Whether the torus link between adjacent positions `a` and `b`
    /// on a `cols × rows` torus is dead. Symmetric in `a`/`b`.
    pub fn link_failed(&self, cols: u32, rows: u32, a: u32, b: u32) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        let site = (u64::from(cols) << 48)
            ^ (u64::from(rows) << 32)
            ^ (u64::from(lo) << 16)
            ^ u64::from(hi);
        self.decide(FaultClass::FailedNocLink, site)
    }

    /// Whether the serve layer should abruptly drop connection
    /// `conn_id` after reading its first request.
    pub fn drops_connection(&self, conn_id: u64) -> bool {
        self.decide(FaultClass::DroppedConnection, conn_id)
    }

    /// Whether the serve layer should treat connection `conn_id` as a
    /// slow-loris client (a writer that stalls past the read timeout).
    pub fn slow_loris(&self, conn_id: u64) -> bool {
        self.decide(FaultClass::SlowLorisClient, conn_id)
    }

    /// Whether the serve dispatcher should panic mid-way through batch
    /// `batch_id`.
    pub fn panics_batch(&self, batch_id: u64) -> bool {
        self.decide(FaultClass::MidBatchPanic, batch_id)
    }

    /// Whether the background checkpoint of `generation` should fail
    /// to write.
    pub fn fails_checkpoint(&self, generation: u64) -> bool {
        self.decide(FaultClass::CheckpointWriteFailure, generation)
    }
}

/// The unit draw in `[0, 1)` for `(seed, class, site)` — two rounds of
/// splitmix64 over the XOR-combined inputs, top 53 bits as mantissa.
fn unit_draw(seed: u64, class: FaultClass, site: u64) -> f64 {
    let h = splitmix64(seed ^ class.tag() ^ splitmix64(site));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: a fixed, dependency-free string hash for site
/// identifiers derived from names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let a = FaultPlan::new(42).with(FaultClass::NanPpa, 0.5);
        let b = FaultPlan::new(42).with(FaultClass::NanPpa, 0.5);
        for site in 0..256 {
            assert_eq!(
                a.decide(FaultClass::NanPpa, site),
                b.decide(FaultClass::NanPpa, site)
            );
        }
        assert_eq!(a.total_injections(), b.total_injections());
        assert!(a.total_injections() > 0, "rate 0.5 over 256 sites fires");
    }

    #[test]
    fn classes_draw_independently() {
        let plan = FaultPlan::new(7)
            .with(FaultClass::NanPpa, 1.0)
            .with(FaultClass::InfPpa, 1.0);
        // NaN wins the priority chain, so Inf never fires through
        // corrupt_cost even though its rate is 1.
        let cost = plan.corrupt_cost(
            3,
            claire_ppa::LayerCost {
                cycles: 10,
                energy_pj: 1.0,
                executions: 1,
            },
        );
        assert!(cost.energy_pj.is_nan());
        assert_eq!(plan.injections(FaultClass::NanPpa), 1);
        assert_eq!(plan.injections(FaultClass::InfPpa), 0);
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        let plan = FaultPlan::new(1).with(FaultClass::WorkerPanic, 1.0);
        for i in 0..64 {
            assert!(plan.panics_worker(i));
            assert!(!plan.drops_coverage("m", "c"), "unarmed class silent");
        }
        assert_eq!(plan.injections(FaultClass::WorkerPanic), 64);
        assert_eq!(plan.injections(FaultClass::DropCoverage), 0);
    }

    #[test]
    fn rates_scale_injection_frequency() {
        let sites = 4096u64;
        let count = |rate: f64| {
            let plan = FaultPlan::new(99).with(FaultClass::PoisonShard, rate);
            (0..sites)
                .filter(|&s| plan.decide(FaultClass::PoisonShard, s))
                .count()
        };
        let low = count(0.1);
        let high = count(0.9);
        assert!(low > 0 && high > low && high < sites as usize);
        // Rough agreement with the nominal rates.
        assert!((low as f64 / sites as f64 - 0.1).abs() < 0.05);
        assert!((high as f64 / sites as f64 - 0.9).abs() < 0.05);
    }

    #[test]
    fn link_failures_are_symmetric() {
        let plan = FaultPlan::new(5).with(FaultClass::FailedNocLink, 0.5);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(plan.link_failed(4, 2, a, b), plan.link_failed(4, 2, b, a));
            }
        }
    }

    #[test]
    fn serve_classes_are_deterministic_and_labelled() {
        let plan = FaultPlan::new(404)
            .with(FaultClass::DroppedConnection, 0.5)
            .with(FaultClass::SlowLorisClient, 0.5)
            .with(FaultClass::MidBatchPanic, 0.5)
            .with(FaultClass::CheckpointWriteFailure, 0.5);
        let twin = FaultPlan::new(404)
            .with(FaultClass::DroppedConnection, 0.5)
            .with(FaultClass::SlowLorisClient, 0.5)
            .with(FaultClass::MidBatchPanic, 0.5)
            .with(FaultClass::CheckpointWriteFailure, 0.5);
        for site in 0..512 {
            assert_eq!(plan.drops_connection(site), twin.drops_connection(site));
            assert_eq!(plan.slow_loris(site), twin.slow_loris(site));
            assert_eq!(plan.panics_batch(site), twin.panics_batch(site));
            assert_eq!(plan.fails_checkpoint(site), twin.fails_checkpoint(site));
        }
        for class in FaultClass::SERVE {
            assert!(plan.injections(class) > 0, "{} fired", class.label());
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
        // Serve classes draw independently of the engine classes.
        assert_eq!(plan.injections(FaultClass::WorkerPanic), 0);
    }

    #[test]
    fn all_lists_every_class_once() {
        assert_eq!(FaultClass::ALL.len(), FaultClass::COUNT);
        for (i, class) in FaultClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        let labels: std::collections::HashSet<_> =
            FaultClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), FaultClass::COUNT);
    }

    #[test]
    fn perturbation_is_finite_and_bounded() {
        let plan = FaultPlan::new(11).with(FaultClass::PerturbPpa, 1.0);
        for site in 0..128 {
            let cost = plan.corrupt_cost(
                site,
                claire_ppa::LayerCost {
                    cycles: 1,
                    energy_pj: 2.0,
                    executions: 1,
                },
            );
            assert!(cost.energy_pj.is_finite());
            assert!(cost.energy_pj > 2.0 && cost.energy_pj <= 4.0);
        }
    }
}
