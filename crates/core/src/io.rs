//! Configuration-file I/O.
//!
//! The paper's framework is file-driven: Input #2 is "two categories
//! of hardware configuration files" (PPA values and the tunable
//! hardware parameter file) and Input #4 is the constraint set. This
//! module round-trips the corresponding structures as JSON so that
//! runs are reproducible artefacts.

use crate::config::Constraints;
use claire_cost::NreModel;
use claire_ppa::DseSpace;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A complete, serialisable framework setup: the tunable hardware
/// parameter sweep, the constraints, the NRE calibration, and the
/// clustering knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// DSE scope (Input #2, tunable hardware parameter file).
    pub space: DseSpace,
    /// Constraints (Input #4).
    pub constraints: Constraints,
    /// NRE cost calibration.
    pub nre: NreModel,
    /// Weighted-Jaccard threshold for subset formation.
    pub jaccard_threshold: f64,
    /// Louvain resolution for chiplet clustering.
    pub louvain_resolution: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            space: DseSpace::default(),
            constraints: Constraints::default(),
            nre: NreModel::tsmc28(),
            jaccard_threshold: 0.6,
            louvain_resolution: 1.0,
        }
    }
}

/// Error loading or saving a [`RunConfig`].
#[derive(Debug)]
pub enum ConfigIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// Structurally valid but semantically unusable values.
    Invalid(String),
}

impl fmt::Display for ConfigIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigIoError::Io(e) => write!(f, "config file I/O failed: {e}"),
            ConfigIoError::Parse(e) => write!(f, "config file is not valid JSON: {e}"),
            ConfigIoError::Invalid(msg) => write!(f, "config file is invalid: {msg}"),
        }
    }
}

impl std::error::Error for ConfigIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigIoError::Io(e) => Some(e),
            ConfigIoError::Parse(e) => Some(e),
            ConfigIoError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for ConfigIoError {
    fn from(e: std::io::Error) -> Self {
        ConfigIoError::Io(e)
    }
}

impl From<serde_json::Error> for ConfigIoError {
    fn from(e: serde_json::Error) -> Self {
        ConfigIoError::Parse(e)
    }
}

impl RunConfig {
    /// Validates value ranges (the structural part is serde's job).
    ///
    /// # Errors
    ///
    /// [`ConfigIoError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigIoError> {
        self.space
            .validate()
            .map_err(|e| ConfigIoError::Invalid(e.to_string()))?;
        if !(0.0..=1.0).contains(&self.jaccard_threshold) {
            return Err(ConfigIoError::Invalid(format!(
                "jaccard_threshold {} outside [0, 1]",
                self.jaccard_threshold
            )));
        }
        if self.louvain_resolution <= 0.0 {
            return Err(ConfigIoError::Invalid(
                "louvain_resolution must be positive".into(),
            ));
        }
        if self.constraints.chiplet_area_limit_mm2 <= 0.0
            || self.constraints.power_density_limit_w_per_mm2 <= 0.0
            || self.constraints.latency_slack < 0.0
        {
            return Err(ConfigIoError::Invalid(
                "constraints must be positive (slack non-negative)".into(),
            ));
        }
        Ok(())
    }

    /// Loads and validates a config from a JSON file.
    ///
    /// # Errors
    ///
    /// I/O, parse, or validation failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConfigIoError> {
        let text = std::fs::read_to_string(path)?;
        let cfg: RunConfig = serde_json::from_str(&text)?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Saves the config as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// I/O or serialisation failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConfigIoError> {
        let text = serde_json::to_string_pretty(self)?;
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Converts into framework options with the configured subset
    /// threshold (log-scaled weighted Jaccard).
    pub fn into_options(self) -> crate::ClaireOptions {
        crate::ClaireOptions {
            constraints: self.constraints,
            space: self.space,
            subsets: crate::SubsetStrategy::WeightedJaccard {
                threshold: self.jaccard_threshold,
                scale: crate::assign::WeightScale::Log,
            },
            louvain_resolution: self.louvain_resolution,
            nre: self.nre,
            ..crate::ClaireOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("claire-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp("roundtrip.json");
        let mut cfg = RunConfig {
            jaccard_threshold: 0.42,
            ..RunConfig::default()
        };
        cfg.constraints.chiplet_area_limit_mm2 = 80.0;
        cfg.save(&path).unwrap();
        let back = RunConfig::load(&path).unwrap();
        assert_eq!(cfg, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validation_rejects_bad_threshold() {
        let cfg = RunConfig {
            jaccard_threshold: 1.5,
            ..RunConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("jaccard_threshold"));
    }

    #[test]
    fn validation_rejects_empty_space() {
        let mut cfg = RunConfig::default();
        cfg.space.sa_sizes.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_valued_axis() {
        let mut cfg = RunConfig::default();
        cfg.space.n_pools = vec![8, 0];
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("n_pools"), "{err}");
    }

    #[test]
    fn load_rejects_malformed_json() {
        let path = tmp("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = RunConfig::load(&path).unwrap_err();
        assert!(matches!(err, ConfigIoError::Parse(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = RunConfig::load("/nonexistent/claire.json").unwrap_err();
        assert!(matches!(err, ConfigIoError::Io(_)));
    }

    #[test]
    fn into_options_carries_fields() {
        let cfg = RunConfig {
            jaccard_threshold: 0.33,
            louvain_resolution: 1.7,
            ..RunConfig::default()
        };
        let opts = cfg.into_options();
        assert_eq!(opts.louvain_resolution, 1.7);
        match opts.subsets {
            crate::SubsetStrategy::WeightedJaccard { threshold, .. } => {
                assert_eq!(threshold, 0.33)
            }
            other => panic!("{other:?}"),
        }
    }
}
