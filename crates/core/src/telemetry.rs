//! Structured telemetry: spans, metric instruments and trace export.
//!
//! Every [`crate::Engine`] owns one [`Telemetry`] instance — the
//! single source of truth behind [`crate::EngineStats`], the `profile`
//! bench's `BENCH_profile.json` writer and the CLI's `--trace-out` /
//! `--metrics-json` exports. The layer provides three instrument
//! families:
//!
//! * **Counters** ([`Metric`]) — monotonic event counts: memo-tier
//!   hits/misses, DSE prune/evaluate totals, parallel-map items and
//!   contained panics, Louvain passes, batched kernel pricings, NoC
//!   reroutes, degradation-ladder attempts/successes and per-class
//!   fault injections. Counters are plain relaxed atomics and are
//!   always on — they replace the ad-hoc `EngineStats` fields.
//! * **Gauges** ([`Gauge`]) — last-written values (memo-tier entry
//!   counts, thread count), set by the engine when a snapshot or an
//!   export is taken.
//! * **Histograms** — fixed-bucket distributions: degradation rungs
//!   and parallel work-item durations.
//!
//! **Spans** come in two kinds. *Stage spans* ([`Telemetry::stage_span`])
//! are always recorded: their wall-time aggregates feed
//! `EngineStats::stages` exactly as the old bespoke `Duration`
//! bookkeeping did. *Trace spans* ([`Telemetry::span`]) are gated on a
//! single relaxed [`AtomicBool`] load and cost nothing but that load
//! when tracing is disabled; when enabled they record into per-thread
//! buffers (a `thread_local!` `Vec`, no locks on the hot path) that
//! workers flush into the shared event log when they retire.
//!
//! Because no recorded value ever feeds back into the pipeline's
//! arithmetic, outputs are bit-identical with tracing on or off — the
//! `telemetry` integration suite pins this at 1/2/8 threads.
//!
//! Two exporters read the recorded state: [`Telemetry::chrome_trace`]
//! renders Chrome Trace Event Format JSON (loadable in Perfetto or
//! `chrome://tracing`, one track per worker thread), and
//! [`Telemetry::text_summary`] renders a flamegraph-style indented
//! text profile. [`Telemetry::metrics_value`] serialises every
//! instrument for `--metrics-json`.

use crate::fault::FaultClass;
use serde::{Number, Value};
use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks `lock`, recovering from poisoning: telemetry state is
/// append-only (event vectors, accumulated durations), so a writer
/// that panicked mid-push can at worst have left a complete record or
/// none — both valid.
fn lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Monotonic counter instruments. Each variant is one named counter;
/// names follow a `subsystem.object.event` dotted convention (e.g.
/// `memo.layer.hit`, `dse.pruned`, `fault.worker_panic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Layer-cost memo lookups served from cache.
    LayerHit,
    /// Layer-cost memo lookups that computed (and stored).
    LayerMiss,
    /// Route-table lookups served from the topology cache.
    RouteHit,
    /// Route-table lookups that built a new table.
    RouteMiss,
    /// Whole-model compute sums served from cache.
    SumHit,
    /// Whole-model compute sums computed fresh.
    SumMiss,
    /// Louvain partitions served from the canonical-graph cache.
    LouvainHit,
    /// Louvain partitions clustered fresh.
    LouvainMiss,
    /// Universal graph builds served from cache.
    GraphHit,
    /// Universal graph builds constructed fresh.
    GraphMiss,
    /// Monolithic-area computations served from the area tables.
    AreaHit,
    /// Monolithic-area computations that built a new table.
    AreaMiss,
    /// DSE points skipped by the staged sweep's area screen.
    DsePruned,
    /// DSE points that survived the screen into full evaluation.
    DseEvaluated,
    /// Work items claimed by `par_map`/`try_par_map`.
    ParItems,
    /// Worker panics contained by `par_map_catch`.
    ParPanics,
    /// Louvain local-move + aggregation rounds run on cache misses.
    LouvainPasses,
    /// Whole-model sums priced through the batched `LayerBatch` kernel.
    BatchSums,
    /// Torus routes that took the BFS route-around (`hops_avoiding`).
    NocReroutes,
    /// Nodes expanded by the BFS route-around searches.
    NocRerouteVisited,
    /// Degradation-ladder rungs above 0 attempted.
    DegradeAttempts,
    /// Selections that succeeded only on a rung above 0.
    DegradeSuccesses,
    /// Injected NaN unit-PPA corruptions.
    FaultNanPpa,
    /// Injected infinite unit-PPA corruptions.
    FaultInfPpa,
    /// Injected finite unit-PPA perturbations.
    FaultPerturbPpa,
    /// Injected coverage drops.
    FaultDropCoverage,
    /// Injected worker panics.
    FaultWorkerPanic,
    /// Injected memo-shard poisonings.
    FaultPoisonShard,
    /// Injected infeasible constraint substitutions.
    FaultInfeasibleConstraints,
    /// Injected NoC link failures.
    FaultFailedNocLink,
    /// Edge-cost sequences served from the communication memo tier.
    CommHit,
    /// Edge-cost sequences built fresh (bucketed pricing).
    CommMiss,
    /// Louvain partitions served from a prior resolution's certified
    /// γ-interval (warm-start reuse).
    LouvainWarmHit,
    /// Louvain runs whose certificate was consulted but did not cover
    /// the requested resolution.
    LouvainWarmMiss,
    /// Multi-member universal graphs assembled by merging cached
    /// member graphs instead of rebuilding from scratch.
    MergedGraphBuilds,
    /// Evaluation items enumerated by the flat execution plan.
    PlanItems,
    /// Latency lower bounds served from the memo tier.
    LbHit,
    /// Latency lower bounds computed fresh (cycles-only kernel).
    LbMiss,
    /// DSE points screened out by the latency lower-bound stage.
    DseLbPruned,
    /// Successive-halving rungs executed by sampled searches.
    SearchRungs,
    /// Serve requests shed because the admission queue was full.
    ServeShed,
    /// Serve requests answered `DeadlineExceeded` (at dispatch or by
    /// cooperative cancellation mid-evaluation).
    ServeDeadlineExpired,
    /// Warm-state checkpoints written by the serve loop.
    ServeCheckpoints,
    /// Request lines received by the serve front ends (well-formed or
    /// not, including in-band `stats` probes).
    ServeRequests,
    /// Responses delivered to serve clients (success or typed error).
    ServeAnswered,
    /// Lifecycle events dropped because the event-log channel was full
    /// (a slow disk never stalls dispatch; drops are counted here).
    ServeEventsDropped,
    /// Flight-recorder dumps written (panic hook, drain, containment).
    ServeFlightDumps,
    /// Injected serve-connection drops.
    FaultDroppedConnection,
    /// Injected slow-loris connection stalls.
    FaultSlowLorisClient,
    /// Injected mid-batch dispatcher panics.
    FaultMidBatchPanic,
    /// Injected checkpoint write failures.
    FaultCheckpointWriteFailure,
}

impl Metric {
    /// Number of counter instruments.
    pub const COUNT: usize = 51;

    /// Every counter, in index order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::LayerHit,
        Metric::LayerMiss,
        Metric::RouteHit,
        Metric::RouteMiss,
        Metric::SumHit,
        Metric::SumMiss,
        Metric::LouvainHit,
        Metric::LouvainMiss,
        Metric::GraphHit,
        Metric::GraphMiss,
        Metric::AreaHit,
        Metric::AreaMiss,
        Metric::DsePruned,
        Metric::DseEvaluated,
        Metric::ParItems,
        Metric::ParPanics,
        Metric::LouvainPasses,
        Metric::BatchSums,
        Metric::NocReroutes,
        Metric::NocRerouteVisited,
        Metric::DegradeAttempts,
        Metric::DegradeSuccesses,
        Metric::FaultNanPpa,
        Metric::FaultInfPpa,
        Metric::FaultPerturbPpa,
        Metric::FaultDropCoverage,
        Metric::FaultWorkerPanic,
        Metric::FaultPoisonShard,
        Metric::FaultInfeasibleConstraints,
        Metric::FaultFailedNocLink,
        Metric::CommHit,
        Metric::CommMiss,
        Metric::LouvainWarmHit,
        Metric::LouvainWarmMiss,
        Metric::MergedGraphBuilds,
        Metric::PlanItems,
        Metric::LbHit,
        Metric::LbMiss,
        Metric::DseLbPruned,
        Metric::SearchRungs,
        Metric::ServeShed,
        Metric::ServeDeadlineExpired,
        Metric::ServeCheckpoints,
        Metric::ServeRequests,
        Metric::ServeAnswered,
        Metric::ServeEventsDropped,
        Metric::ServeFlightDumps,
        Metric::FaultDroppedConnection,
        Metric::FaultSlowLorisClient,
        Metric::FaultMidBatchPanic,
        Metric::FaultCheckpointWriteFailure,
    ];

    /// The counter's dotted instrument name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::LayerHit => "memo.layer.hit",
            Metric::LayerMiss => "memo.layer.miss",
            Metric::RouteHit => "memo.route.hit",
            Metric::RouteMiss => "memo.route.miss",
            Metric::SumHit => "memo.sum.hit",
            Metric::SumMiss => "memo.sum.miss",
            Metric::LouvainHit => "memo.louvain.hit",
            Metric::LouvainMiss => "memo.louvain.miss",
            Metric::GraphHit => "memo.graph.hit",
            Metric::GraphMiss => "memo.graph.miss",
            Metric::AreaHit => "memo.area.hit",
            Metric::AreaMiss => "memo.area.miss",
            Metric::DsePruned => "dse.pruned",
            Metric::DseEvaluated => "dse.evaluated",
            Metric::ParItems => "par.items",
            Metric::ParPanics => "par.panics",
            Metric::LouvainPasses => "louvain.passes",
            Metric::BatchSums => "ppa.batch_sums",
            Metric::NocReroutes => "noc.reroutes",
            Metric::NocRerouteVisited => "noc.reroute_visited",
            Metric::DegradeAttempts => "degrade.attempts",
            Metric::DegradeSuccesses => "degrade.successes",
            Metric::FaultNanPpa => "fault.nan_ppa",
            Metric::FaultInfPpa => "fault.inf_ppa",
            Metric::FaultPerturbPpa => "fault.perturb_ppa",
            Metric::FaultDropCoverage => "fault.drop_coverage",
            Metric::FaultWorkerPanic => "fault.worker_panic",
            Metric::FaultPoisonShard => "fault.poison_shard",
            Metric::FaultInfeasibleConstraints => "fault.infeasible_constraints",
            Metric::FaultFailedNocLink => "fault.failed_noc_link",
            Metric::CommHit => "memo.comm.hit",
            Metric::CommMiss => "memo.comm.miss",
            Metric::LouvainWarmHit => "memo.louvain_warm.hit",
            Metric::LouvainWarmMiss => "memo.louvain_warm.miss",
            Metric::MergedGraphBuilds => "graph.merged_builds",
            Metric::PlanItems => "plan.items",
            Metric::LbHit => "memo.lb.hit",
            Metric::LbMiss => "memo.lb.miss",
            Metric::DseLbPruned => "dse.lb_pruned",
            Metric::SearchRungs => "dse.search.rungs",
            Metric::ServeShed => "serve.shed",
            Metric::ServeDeadlineExpired => "serve.deadline_expired",
            Metric::ServeCheckpoints => "serve.checkpoints",
            Metric::ServeRequests => "serve.requests",
            Metric::ServeAnswered => "serve.answered",
            Metric::ServeEventsDropped => "serve.events_dropped",
            Metric::ServeFlightDumps => "serve.flight_dumps",
            Metric::FaultDroppedConnection => "fault.dropped_connection",
            Metric::FaultSlowLorisClient => "fault.slow_loris_client",
            Metric::FaultMidBatchPanic => "fault.mid_batch_panic",
            Metric::FaultCheckpointWriteFailure => "fault.checkpoint_write_failure",
        }
    }

    /// The injection counter for a fault class.
    pub fn for_fault(class: FaultClass) -> Metric {
        match class {
            FaultClass::NanPpa => Metric::FaultNanPpa,
            FaultClass::InfPpa => Metric::FaultInfPpa,
            FaultClass::PerturbPpa => Metric::FaultPerturbPpa,
            FaultClass::DropCoverage => Metric::FaultDropCoverage,
            FaultClass::WorkerPanic => Metric::FaultWorkerPanic,
            FaultClass::PoisonShard => Metric::FaultPoisonShard,
            FaultClass::InfeasibleConstraints => Metric::FaultInfeasibleConstraints,
            FaultClass::FailedNocLink => Metric::FaultFailedNocLink,
            FaultClass::DroppedConnection => Metric::FaultDroppedConnection,
            FaultClass::SlowLorisClient => Metric::FaultSlowLorisClient,
            FaultClass::MidBatchPanic => Metric::FaultMidBatchPanic,
            FaultClass::CheckpointWriteFailure => Metric::FaultCheckpointWriteFailure,
        }
    }
}

/// Last-value gauge instruments, set by the engine at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Worker threads the engine maps over.
    Threads,
    /// Entries in the layer-cost memo cache.
    LayerEntries,
    /// Topologies with cached route tables.
    RouteEntries,
    /// Entries in the compute-sum cache.
    SumEntries,
    /// Entries in the Louvain partition cache.
    LouvainEntries,
    /// Entries in the universal-graph cache.
    GraphEntries,
    /// Hardware points with cached area tables.
    AreaEntries,
    /// Distinct layer structures interned.
    StructEntries,
    /// Model instances mapped onto interned structures.
    StructInstances,
    /// Entries in the communication edge-cost sequence cache.
    CommEntries,
    /// Graphs carrying certified Louvain warm-start intervals.
    LouvainWarmEntries,
    /// Entries in the latency lower-bound cache.
    LbEntries,
}

impl Gauge {
    /// Number of gauge instruments.
    pub const COUNT: usize = 12;

    /// Every gauge, in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::Threads,
        Gauge::LayerEntries,
        Gauge::RouteEntries,
        Gauge::SumEntries,
        Gauge::LouvainEntries,
        Gauge::GraphEntries,
        Gauge::AreaEntries,
        Gauge::StructEntries,
        Gauge::StructInstances,
        Gauge::CommEntries,
        Gauge::LouvainWarmEntries,
        Gauge::LbEntries,
    ];

    /// The gauge's dotted instrument name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Threads => "engine.threads",
            Gauge::LayerEntries => "memo.layer.entries",
            Gauge::RouteEntries => "memo.route.entries",
            Gauge::SumEntries => "memo.sum.entries",
            Gauge::LouvainEntries => "memo.louvain.entries",
            Gauge::GraphEntries => "memo.graph.entries",
            Gauge::AreaEntries => "memo.area.entries",
            Gauge::StructEntries => "engine.struct_entries",
            Gauge::StructInstances => "engine.struct_instances",
            Gauge::CommEntries => "memo.comm.entries",
            Gauge::LouvainWarmEntries => "memo.louvain_warm.entries",
            Gauge::LbEntries => "memo.lb.entries",
        }
    }
}

/// A fixed-bucket histogram: `bounds` are inclusive upper edges; one
/// overflow bucket catches everything beyond the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Box<[AtomicU64]>,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, counts }
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is
    /// the overflow bucket).
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "bounds".to_owned(),
                Value::Array(
                    self.bounds
                        .iter()
                        .map(|&b| Value::Number(Number::PosInt(b)))
                        .collect(),
                ),
            ),
            (
                "counts".to_owned(),
                Value::Array(
                    self.snapshot()
                        .into_iter()
                        .map(|c| Value::Number(Number::PosInt(c)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// An exact quantile digest over `u64` samples: the recorded multiset
/// is held as a sorted run-length encoding, so quantiles are exact
/// (identical to indexing the fully sorted sample vector) and merging
/// per-thread digests is order-independent — any permutation of
/// inserts and merges over the same multiset yields byte-identical
/// state and summaries.
///
/// Memory is bounded by the number of *distinct* values recorded, not
/// the sample count. For naturally coarse inputs (e.g. latencies in
/// whole microseconds) that is small; callers with adversarial value
/// ranges can pre-quantize via [`QuantileDigest::with_resolution`],
/// which drops low bits per inserted value — a pure per-value function,
/// so determinism and merge order-independence are preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileDigest {
    /// Sorted `(value, occurrences)` runs — the canonical RLE of the
    /// recorded multiset.
    runs: Vec<(u64, u64)>,
    /// Total samples recorded.
    count: u64,
    /// Low bits dropped from every inserted value (0 = exact).
    shift: u32,
}

/// The fixed quantile/max summary a [`QuantileDigest`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantileSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (nearest-rank, lower).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl QuantileSummary {
    /// Serialises the summary for stats snapshots and metrics exports.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "count".to_owned(),
                Value::Number(Number::PosInt(self.count)),
            ),
            ("p50".to_owned(), Value::Number(Number::PosInt(self.p50))),
            ("p90".to_owned(), Value::Number(Number::PosInt(self.p90))),
            ("p99".to_owned(), Value::Number(Number::PosInt(self.p99))),
            ("max".to_owned(), Value::Number(Number::PosInt(self.max))),
        ])
    }
}

impl Default for QuantileDigest {
    fn default() -> Self {
        QuantileDigest::new()
    }
}

impl QuantileDigest {
    /// An empty exact digest.
    pub fn new() -> Self {
        QuantileDigest {
            runs: Vec::new(),
            count: 0,
            shift: 0,
        }
    }

    /// An empty digest that drops the low `shift` bits of every
    /// inserted value, bounding distinct-value memory for inputs with
    /// adversarial precision. Quantiles are then exact over the
    /// quantized multiset.
    pub fn with_resolution(shift: u32) -> Self {
        QuantileDigest {
            runs: Vec::new(),
            count: 0,
            shift: shift.min(63),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let value = (value >> self.shift) << self.shift;
        match self.runs.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.runs[i].1 += 1,
            Err(i) => self.runs.insert(i, (value, 1)),
        }
        self.count += 1;
    }

    /// Folds another digest in: the result is exactly the digest of
    /// the union multiset, independent of merge order. Both sides must
    /// share the same resolution.
    pub fn merge(&mut self, other: &QuantileDigest) {
        debug_assert_eq!(self.shift, other.shift, "digest resolutions differ");
        let mut merged = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut a, mut b) = (self.runs.iter().peekable(), other.runs.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(va, ca)), Some(&&(vb, cb))) => {
                    if va < vb {
                        merged.push((va, ca));
                        a.next();
                    } else if vb < va {
                        merged.push((vb, cb));
                        b.next();
                    } else {
                        merged.push((va, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&run), None) => {
                    merged.push(run);
                    a.next();
                }
                (None, Some(&&run)) => {
                    merged.push(run);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.runs = merged;
        self.count += other.count;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact `p`-th percentile (nearest-rank, lower: the value a
    /// sorted sample vector holds at index `(count - 1) * p / 100`).
    /// `None` on an empty digest.
    pub fn quantile(&self, p: u8) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (u128::from(self.count - 1) * u128::from(p.min(100)) / 100) as u64;
        let mut seen = 0u64;
        for &(value, occurrences) in &self.runs {
            seen += occurrences;
            if rank < seen {
                return Some(value);
            }
        }
        self.runs.last().map(|&(v, _)| v)
    }

    /// The largest recorded sample; `None` on an empty digest.
    pub fn max(&self) -> Option<u64> {
        self.runs.last().map(|&(v, _)| v)
    }

    /// The p50/p90/p99/max summary (all zeros when empty).
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count,
            p50: self.quantile(50).unwrap_or(0),
            p90: self.quantile(90).unwrap_or(0),
            p99: self.quantile(99).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }
}

/// Sliding-window event rates over 1 s / 10 s / 60 s horizons, driven
/// entirely by caller-injected timestamps (microseconds since an epoch
/// the caller chooses) — the type never reads a wall clock, so replays
/// with the same injected times are deterministic.
///
/// Events are bucketed per absolute second into a fixed 64-slot ring;
/// a window's count sums the buckets it covers, including the current
/// in-progress second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateWindows {
    /// Per-second counts, indexed by `second % 64`.
    buckets: [u64; 64],
    /// Absolute second of the newest bucket written.
    head_s: u64,
    /// Lifetime events recorded.
    total: u64,
}

/// One [`RateWindows`] reading: events in the trailing windows plus
/// per-second rates and the lifetime total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSnapshot {
    /// Events in the last 1 s.
    pub last_1s: u64,
    /// Events in the last 10 s.
    pub last_10s: u64,
    /// Events in the last 60 s.
    pub last_60s: u64,
    /// Lifetime events recorded.
    pub total: u64,
}

impl RateSnapshot {
    /// Serialises the snapshot (counts plus per-second rates).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "last_1s".to_owned(),
                Value::Number(Number::PosInt(self.last_1s)),
            ),
            (
                "last_10s".to_owned(),
                Value::Number(Number::PosInt(self.last_10s)),
            ),
            (
                "last_60s".to_owned(),
                Value::Number(Number::PosInt(self.last_60s)),
            ),
            (
                "per_s_10s".to_owned(),
                Value::Number(Number::Float(self.last_10s as f64 / 10.0)),
            ),
            (
                "per_s_60s".to_owned(),
                Value::Number(Number::Float(self.last_60s as f64 / 60.0)),
            ),
            (
                "total".to_owned(),
                Value::Number(Number::PosInt(self.total)),
            ),
        ])
    }
}

impl Default for RateWindows {
    fn default() -> Self {
        RateWindows::new()
    }
}

impl RateWindows {
    /// An empty rate tracker.
    pub fn new() -> Self {
        RateWindows {
            buckets: [0; 64],
            head_s: 0,
            total: 0,
        }
    }

    /// Zeroes every bucket between the current head and `second`,
    /// exclusive/inclusive, so stale laps of the ring never leak into
    /// a window sum.
    fn advance_to(&mut self, second: u64) {
        if second <= self.head_s {
            return;
        }
        let skipped = second - self.head_s;
        if skipped >= 64 {
            self.buckets = [0; 64];
        } else {
            for s in (self.head_s + 1)..=second {
                self.buckets[(s % 64) as usize] = 0;
            }
        }
        self.head_s = second;
    }

    /// Records one event at the injected time (µs since the caller's
    /// epoch). Timestamps may arrive slightly out of order; an event
    /// older than the ring's horizon still counts toward `total`.
    pub fn record(&mut self, now_us: u64) {
        let second = now_us / 1_000_000;
        self.advance_to(second);
        self.total += 1;
        if self.head_s - second < 64 {
            self.buckets[(second % 64) as usize] += 1;
        }
    }

    /// Reads the trailing 1 s / 10 s / 60 s windows at the injected
    /// time.
    pub fn snapshot(&mut self, now_us: u64) -> RateSnapshot {
        let second = now_us / 1_000_000;
        self.advance_to(second);
        let window = |len: u64| -> u64 {
            (0..len.min(64))
                .map(|back| {
                    let s = second.wrapping_sub(back);
                    if back > second {
                        0
                    } else {
                        self.buckets[(s % 64) as usize]
                    }
                })
                .sum()
        };
        RateSnapshot {
            last_1s: window(1),
            last_10s: window(10),
            last_60s: window(60),
            total: self.total,
        }
    }
}

/// A fixed-capacity ring of the most recent events: pushes past
/// capacity evict the oldest entry, and the lifetime total makes the
/// eviction count visible (`total - len`). This is the in-memory
/// flight recorder the serve layer dumps on panic/drain/containment.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    cap: usize,
    buf: std::collections::VecDeque<T>,
    total: u64,
}

impl<T> EventRing<T> {
    /// An empty ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            cap,
            buf: std::collections::VecDeque::with_capacity(cap),
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&mut self, event: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Lifetime events pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted by capacity (`total - len`).
    pub fn evicted(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

/// One span or instant event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    Int(u64),
    /// A float argument.
    Float(f64),
    /// A text argument.
    Text(String),
}

impl ArgValue {
    fn to_value(&self) -> Value {
        match self {
            ArgValue::Int(n) => Value::Number(Number::PosInt(*n)),
            ArgValue::Float(f) => Value::Number(Number::Float(*f)),
            ArgValue::Text(s) => Value::String(s.clone()),
        }
    }
}

/// A recorded trace event: a completed span (`dur_ns` set) or an
/// instant marker.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span taxonomy: `stage.<name>`, `<stage>.item`,
    /// `route.build`, `louvain.cluster`, `graph.build`, `sum.batch`,
    /// `dse.screen`, `dse.eval`, `degrade.success`, `fault.injected`).
    pub name: String,
    /// Event category (`stage`, `item`, `memo`, `dse`, `fault`).
    pub cat: &'static str,
    /// Start time in nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Logical track: 0 = main thread, `i + 1` = worker `i`.
    pub tid: u32,
    /// Typed event arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One accumulated stage aggregate: total wall time and completed
/// span count, in first-recorded order.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Stage name (`customs`, `generic`, …).
    pub name: String,
    /// Accumulated wall time across all spans of this stage.
    pub total: Duration,
    /// Number of completed spans.
    pub count: u64,
}

/// One parallel-map worker's accounting for one map: busy time (inside
/// item closures), wall time (claim loop start to retire) and items
/// completed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSample {
    /// The enclosing stage, when the map ran inside one.
    pub stage: Option<String>,
    /// Worker index within the map (0-based).
    pub worker: usize,
    /// Time spent inside item closures.
    pub busy: Duration,
    /// Wall time from spawn to retire.
    pub wall: Duration,
    /// Items this worker completed.
    pub items: u64,
}

/// Aggregated per-worker utilization across every parallel map.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Worker index.
    pub worker: usize,
    /// Total busy time across maps.
    pub busy: Duration,
    /// Total wall time across maps.
    pub wall: Duration,
    /// Total items completed.
    pub items: u64,
}

impl WorkerUtilization {
    /// `busy / wall` in `[0, 1]`; 0 when no wall time was recorded.
    pub fn utilization(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

/// Output paths for the telemetry exporters, carried on
/// [`crate::ClaireOptions`] and the CLI's global `--trace-out` /
/// `--metrics-json` flags. When `trace_out` is set the engine runs
/// with tracing enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Write a Chrome Trace Event JSON file here after the run.
    pub trace_out: Option<PathBuf>,
    /// Write a metrics snapshot JSON file here after the run.
    pub metrics_out: Option<PathBuf>,
}

impl TelemetryOptions {
    /// Whether any export is requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }
}

/// Process-unique telemetry instance ids, used to invalidate stale
/// thread-local buffers when a worker thread outlives one engine and
/// serves another.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Logical track id of the current thread: 0 on the main thread,
    /// `worker + 1` inside a parallel map.
    static CURRENT_TID: Cell<u32> = const { Cell::new(0) };
    /// This thread's pending trace events, tagged with the telemetry
    /// instance they belong to.
    static LOCAL_BUF: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

#[derive(Debug)]
struct LocalBuf {
    id: u64,
    events: Vec<TraceEvent>,
}

/// Sets the current thread's logical track id (worker threads call
/// this with `worker + 1` on spawn; scope-local threads never leak the
/// value).
pub(crate) fn set_current_tid(tid: u32) {
    CURRENT_TID.with(|t| t.set(tid));
}

/// The current thread's logical track id.
pub(crate) fn current_tid() -> u32 {
    CURRENT_TID.with(Cell::get)
}

/// The telemetry hub owned by one [`crate::Engine`]: counters, gauges,
/// histograms, stage aggregates, worker samples and the trace event
/// log.
#[derive(Debug)]
pub struct Telemetry {
    id: u64,
    epoch: Instant,
    tracing: AtomicBool,
    counters: [AtomicU64; Metric::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    degrade_rungs: Histogram,
    item_duration_us: Histogram,
    queue_wait_us: Histogram,
    in_flight: Histogram,
    stage_aggs: Mutex<Vec<StageAgg>>,
    stage_stack: Mutex<Vec<String>>,
    workers: Mutex<Vec<WorkerSample>>,
    events: Mutex<Vec<TraceEvent>>,
}

/// Degradation-ladder rung buckets: rungs 0–2 get their own bucket,
/// rung 3 lands in the overflow bucket.
const RUNG_BOUNDS: &[u64] = &[0, 1, 2];

/// Log-spaced microsecond buckets for parallel work-item durations.
const ITEM_US_BOUNDS: &[u64] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Log-spaced microsecond buckets for serve admission-queue waits
/// (sub-millisecond through 10 s; slower waits overflow).
const QUEUE_WAIT_US_BOUNDS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Power-of-two buckets for the number of requests in flight when a
/// serve batch dispatches.
const IN_FLIGHT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh hub with tracing disabled and every instrument at zero.
    pub fn new() -> Self {
        Telemetry {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            tracing: AtomicBool::new(false),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            degrade_rungs: Histogram::new(RUNG_BOUNDS),
            item_duration_us: Histogram::new(ITEM_US_BOUNDS),
            queue_wait_us: Histogram::new(QUEUE_WAIT_US_BOUNDS),
            in_flight: Histogram::new(IN_FLIGHT_BOUNDS),
            stage_aggs: Mutex::new(Vec::new()),
            stage_stack: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Enables or disables trace-span recording. Counters, gauges,
    /// histograms and stage aggregates are always on.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether trace spans are being recorded. This single relaxed
    /// load is the entire disabled-path cost of every gated hook.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn count(&self, metric: Metric) {
        self.counters[metric as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn count_by(&self, metric: Metric, n: u64) {
        self.counters[metric as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// The gauge's last-written value.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// The degradation-rung histogram (one observation per successful
    /// relaxed selection, bucketed by rung).
    pub fn degrade_rungs(&self) -> &Histogram {
        &self.degrade_rungs
    }

    /// Records one observation in the rung histogram.
    pub(crate) fn record_degrade_rung(&self, rung: u64) {
        self.degrade_rungs.record(rung);
    }

    /// The parallel work-item duration histogram (microsecond log
    /// buckets).
    pub fn item_durations(&self) -> &Histogram {
        &self.item_duration_us
    }

    /// Records one parallel item's closure duration.
    pub(crate) fn record_item_duration(&self, took: Duration) {
        self.item_duration_us.record(took.as_micros() as u64);
    }

    /// The serve admission-queue wait histogram (microsecond log
    /// buckets, one observation per dispatched request).
    pub fn queue_waits(&self) -> &Histogram {
        &self.queue_wait_us
    }

    /// Records how long a serve request waited in the admission queue
    /// before its batch dispatched.
    pub fn record_queue_wait(&self, waited: Duration) {
        self.queue_wait_us.record(waited.as_micros() as u64);
    }

    /// The serve in-flight histogram (requests being evaluated when a
    /// batch dispatches, power-of-two buckets).
    pub fn in_flight(&self) -> &Histogram {
        &self.in_flight
    }

    /// Records the number of requests in flight at a batch dispatch.
    pub fn record_in_flight(&self, n: u64) {
        self.in_flight.record(n);
    }

    /// Opens an always-recorded stage span; its wall time accumulates
    /// into the stage aggregates (feeding `EngineStats::stages`) when
    /// the guard drops, and a trace event is emitted when tracing is
    /// enabled.
    pub fn stage_span(&self, name: &str) -> StageSpan<'_> {
        lock(&self.stage_stack).push(name.to_owned());
        StageSpan {
            telemetry: self,
            name: name.to_owned(),
            start: Instant::now(),
        }
    }

    /// The innermost open stage, if any.
    pub(crate) fn current_stage(&self) -> Option<String> {
        lock(&self.stage_stack).last().cloned()
    }

    /// Opens a gated trace span: a no-op (one relaxed load) when
    /// tracing is disabled.
    pub fn span(&self, name: &'static str, cat: &'static str) -> TraceSpan<'_> {
        if !self.tracing_enabled() {
            return TraceSpan(None);
        }
        TraceSpan(Some(TraceSpanInner {
            telemetry: self,
            name: name.to_owned(),
            cat,
            start: Instant::now(),
            args: Vec::new(),
        }))
    }

    /// Opens a gated per-item span inside a parallel map, named after
    /// the enclosing stage.
    pub(crate) fn item_span(&self, index: usize, stage: Option<&str>) -> TraceSpan<'_> {
        if !self.tracing_enabled() {
            return TraceSpan(None);
        }
        let name = match stage {
            Some(s) => format!("{s}.item"),
            None => "par.item".to_owned(),
        };
        TraceSpan(Some(TraceSpanInner {
            telemetry: self,
            name,
            cat: "item",
            start: Instant::now(),
            args: vec![("index", ArgValue::Int(index as u64))],
        }))
    }

    /// Records a gated instant event (a point marker on the current
    /// thread's track). No-op when tracing is disabled.
    pub fn instant(&self, name: &str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
        if !self.tracing_enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.push_event(TraceEvent {
            name: name.to_owned(),
            cat,
            ts_ns,
            dur_ns: None,
            tid: current_tid(),
            args,
        });
    }

    fn now_ns(&self) -> u64 {
        Instant::now()
            .saturating_duration_since(self.epoch)
            .as_nanos() as u64
    }

    /// Appends an event to the current thread's local buffer,
    /// rebinding (and discarding stale events) when the buffer belongs
    /// to a different telemetry instance.
    fn push_event(&self, event: TraceEvent) {
        LOCAL_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            match buf.as_mut() {
                Some(local) if local.id == self.id => local.events.push(event),
                _ => {
                    *buf = Some(LocalBuf {
                        id: self.id,
                        events: vec![event],
                    });
                }
            }
        });
    }

    /// Moves the current thread's buffered events into the shared log.
    /// Workers call this before retiring; exporters call it to collect
    /// the calling thread's (main) buffer.
    pub fn flush_thread_events(&self) {
        let drained = LOCAL_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            match buf.as_mut() {
                Some(local) if local.id == self.id && !local.events.is_empty() => {
                    Some(std::mem::take(&mut local.events))
                }
                _ => None,
            }
        });
        if let Some(events) = drained {
            lock(&self.events).extend(events);
        }
    }

    /// Records one worker's busy/wall accounting for a parallel map.
    pub(crate) fn record_worker(&self, sample: WorkerSample) {
        lock(&self.workers).push(sample);
    }

    /// Every per-map worker sample recorded so far.
    pub fn worker_samples(&self) -> Vec<WorkerSample> {
        lock(&self.workers).clone()
    }

    /// Per-worker utilization aggregated across every parallel map.
    pub fn worker_utilization(&self) -> Vec<WorkerUtilization> {
        let samples = self.worker_samples();
        let mut out: Vec<WorkerUtilization> = Vec::new();
        for s in &samples {
            match out.iter_mut().find(|u| u.worker == s.worker) {
                Some(u) => {
                    u.busy += s.busy;
                    u.wall += s.wall;
                    u.items += s.items;
                }
                None => out.push(WorkerUtilization {
                    worker: s.worker,
                    busy: s.busy,
                    wall: s.wall,
                    items: s.items,
                }),
            }
        }
        out.sort_by_key(|u| u.worker);
        out
    }

    /// Per-worker busy time within one named stage: `(worker, busy)`
    /// pairs summed across that stage's maps.
    pub fn stage_worker_busy(&self, stage: &str) -> Vec<(usize, Duration)> {
        let mut out: Vec<(usize, Duration)> = Vec::new();
        for s in self.worker_samples() {
            if s.stage.as_deref() != Some(stage) {
                continue;
            }
            match out.iter_mut().find(|(w, _)| *w == s.worker) {
                Some((_, busy)) => *busy += s.busy,
                None => out.push((s.worker, s.busy)),
            }
        }
        out.sort_by_key(|&(w, _)| w);
        out
    }

    /// Stage wall-time aggregates in first-recorded order — the data
    /// behind `EngineStats::stages`.
    pub fn stage_aggregates(&self) -> Vec<(String, Duration)> {
        lock(&self.stage_aggs)
            .iter()
            .map(|a| (a.name.clone(), a.total))
            .collect()
    }

    /// Stage aggregates with span counts.
    pub fn stage_aggregates_detailed(&self) -> Vec<StageAgg> {
        lock(&self.stage_aggs).clone()
    }

    fn accumulate_stage(&self, name: &str, took: Duration) {
        let mut aggs = lock(&self.stage_aggs);
        match aggs.iter_mut().find(|a| a.name == name) {
            Some(agg) => {
                agg.total += took;
                agg.count += 1;
            }
            None => aggs.push(StageAgg {
                name: name.to_owned(),
                total: took,
                count: 1,
            }),
        }
    }

    /// Renders the recorded trace as a Chrome Trace Event Format JSON
    /// value (`{"traceEvents": [...]}`): `ph:"X"` complete events for
    /// spans, `ph:"i"` instants, and `ph:"M"` metadata naming the
    /// process and one track per worker thread. Timestamps are floored
    /// to integer microseconds from a common epoch; flooring both span
    /// ends preserves nesting containment.
    pub fn chrome_trace(&self) -> Value {
        self.flush_thread_events();
        let mut events = lock(&self.events).clone();
        events.sort_by(|a, b| {
            (a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
                b.tid,
                b.ts_ns,
                std::cmp::Reverse(b.dur_ns),
            ))
        });

        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();

        let mut out = Vec::with_capacity(events.len() + tids.len() + 1);
        out.push(Value::Object(vec![
            ("name".to_owned(), Value::String("process_name".to_owned())),
            ("ph".to_owned(), Value::String("M".to_owned())),
            ("pid".to_owned(), Value::Number(Number::PosInt(1))),
            ("tid".to_owned(), Value::Number(Number::PosInt(0))),
            (
                "args".to_owned(),
                Value::Object(vec![(
                    "name".to_owned(),
                    Value::String("claire".to_owned()),
                )]),
            ),
        ]));
        for &tid in &tids {
            let label = if tid == 0 {
                "main".to_owned()
            } else {
                format!("worker {}", tid - 1)
            };
            out.push(Value::Object(vec![
                ("name".to_owned(), Value::String("thread_name".to_owned())),
                ("ph".to_owned(), Value::String("M".to_owned())),
                ("pid".to_owned(), Value::Number(Number::PosInt(1))),
                (
                    "tid".to_owned(),
                    Value::Number(Number::PosInt(u64::from(tid))),
                ),
                (
                    "args".to_owned(),
                    Value::Object(vec![("name".to_owned(), Value::String(label))]),
                ),
            ]));
        }
        for e in &events {
            let ts_us = e.ts_ns / 1_000;
            let mut fields = vec![
                ("name".to_owned(), Value::String(e.name.clone())),
                ("cat".to_owned(), Value::String(e.cat.to_owned())),
            ];
            match e.dur_ns {
                Some(dur_ns) => {
                    // Floor both endpoints to µs so child spans stay
                    // contained in their parents after rounding.
                    let end_us = (e.ts_ns + dur_ns) / 1_000;
                    fields.push(("ph".to_owned(), Value::String("X".to_owned())));
                    fields.push(("ts".to_owned(), Value::Number(Number::PosInt(ts_us))));
                    fields.push((
                        "dur".to_owned(),
                        Value::Number(Number::PosInt(end_us - ts_us)),
                    ));
                }
                None => {
                    fields.push(("ph".to_owned(), Value::String("i".to_owned())));
                    fields.push(("ts".to_owned(), Value::Number(Number::PosInt(ts_us))));
                    fields.push(("s".to_owned(), Value::String("t".to_owned())));
                }
            }
            fields.push(("pid".to_owned(), Value::Number(Number::PosInt(1))));
            fields.push((
                "tid".to_owned(),
                Value::Number(Number::PosInt(u64::from(e.tid))),
            ));
            if !e.args.is_empty() {
                fields.push((
                    "args".to_owned(),
                    Value::Object(
                        e.args
                            .iter()
                            .map(|(k, v)| ((*k).to_owned(), v.to_value()))
                            .collect(),
                    ),
                ));
            }
            out.push(Value::Object(fields));
        }
        Value::Object(vec![("traceEvents".to_owned(), Value::Array(out))])
    }

    /// Renders a flamegraph-style text summary: per-track span trees
    /// (indentation = nesting, computed from span containment) plus
    /// stage aggregates and non-zero counters.
    pub fn text_summary(&self) -> String {
        self.flush_thread_events();
        let mut out = String::from("== telemetry summary ==\n");
        out.push_str("stages:\n");
        for agg in self.stage_aggregates_detailed() {
            out.push_str(&format!(
                "  {:<12} {:>9.3} ms  ({} span(s))\n",
                agg.name,
                agg.total.as_secs_f64() * 1e3,
                agg.count
            ));
        }
        let mut events = lock(&self.events).clone();
        events.sort_by(|a, b| {
            (a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
                b.tid,
                b.ts_ns,
                std::cmp::Reverse(b.dur_ns),
            ))
        });
        let mut last_tid = None;
        // Stack of span end times; depth = open enclosing spans.
        let mut ends: Vec<u64> = Vec::new();
        for e in &events {
            if last_tid != Some(e.tid) {
                let label = if e.tid == 0 {
                    "main".to_owned()
                } else {
                    format!("worker {}", e.tid - 1)
                };
                out.push_str(&format!("track {label}:\n"));
                last_tid = Some(e.tid);
                ends.clear();
            }
            while ends.last().is_some_and(|&end| e.ts_ns >= end) {
                ends.pop();
            }
            let indent = "  ".repeat(ends.len() + 1);
            match e.dur_ns {
                Some(dur) => {
                    out.push_str(&format!("{indent}{} {:.3} ms\n", e.name, dur as f64 / 1e6));
                    ends.push(e.ts_ns + dur);
                }
                None => out.push_str(&format!("{indent}@ {}\n", e.name)),
            }
        }
        out.push_str("counters:\n");
        for m in Metric::ALL {
            let v = self.counter(m);
            if v > 0 {
                out.push_str(&format!("  {:<28} {v}\n", m.name()));
            }
        }
        out
    }

    /// Serialises every instrument — counters, gauges, histograms,
    /// stage aggregates and per-worker utilization — as a JSON value
    /// for `--metrics-json`.
    pub fn metrics_value(&self) -> Value {
        let counters = Metric::ALL
            .iter()
            .map(|&m| {
                (
                    m.name().to_owned(),
                    Value::Number(Number::PosInt(self.counter(m))),
                )
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| {
                (
                    g.name().to_owned(),
                    Value::Number(Number::PosInt(self.gauge(g))),
                )
            })
            .collect();
        let stages = self
            .stage_aggregates_detailed()
            .into_iter()
            .map(|a| {
                Value::Object(vec![
                    ("name".to_owned(), Value::String(a.name)),
                    (
                        "total_ms".to_owned(),
                        Value::Number(Number::Float(a.total.as_secs_f64() * 1e3)),
                    ),
                    ("count".to_owned(), Value::Number(Number::PosInt(a.count))),
                ])
            })
            .collect();
        let workers = self
            .worker_utilization()
            .into_iter()
            .map(|u| {
                Value::Object(vec![
                    (
                        "worker".to_owned(),
                        Value::Number(Number::PosInt(u.worker as u64)),
                    ),
                    (
                        "busy_ms".to_owned(),
                        Value::Number(Number::Float(u.busy.as_secs_f64() * 1e3)),
                    ),
                    (
                        "wall_ms".to_owned(),
                        Value::Number(Number::Float(u.wall.as_secs_f64() * 1e3)),
                    ),
                    ("items".to_owned(), Value::Number(Number::PosInt(u.items))),
                    (
                        "utilization".to_owned(),
                        Value::Number(Number::Float(u.utilization())),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("counters".to_owned(), Value::Object(counters)),
            ("gauges".to_owned(), Value::Object(gauges)),
            (
                "histograms".to_owned(),
                Value::Object(vec![
                    ("degrade.rungs".to_owned(), self.degrade_rungs.to_value()),
                    (
                        "par.item_duration_us".to_owned(),
                        self.item_duration_us.to_value(),
                    ),
                    (
                        "serve.queue_wait_us".to_owned(),
                        self.queue_wait_us.to_value(),
                    ),
                    ("serve.in_flight".to_owned(), self.in_flight.to_value()),
                ]),
            ),
            ("stages".to_owned(), Value::Array(stages)),
            ("worker_utilization".to_owned(), Value::Array(workers)),
        ])
    }
}

/// Guard for an always-recorded stage span (see
/// [`Telemetry::stage_span`]).
#[derive(Debug)]
pub struct StageSpan<'a> {
    telemetry: &'a Telemetry,
    name: String,
    start: Instant,
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        let took = self.start.elapsed();
        {
            let mut stack = lock(&self.telemetry.stage_stack);
            if stack.last().map(String::as_str) == Some(self.name.as_str()) {
                stack.pop();
            }
        }
        self.telemetry.accumulate_stage(&self.name, took);
        if self.telemetry.tracing_enabled() {
            let ts_ns = self
                .start
                .saturating_duration_since(self.telemetry.epoch)
                .as_nanos() as u64;
            self.telemetry.push_event(TraceEvent {
                name: format!("stage.{}", self.name),
                cat: "stage",
                ts_ns,
                dur_ns: Some(took.as_nanos() as u64),
                tid: current_tid(),
                args: Vec::new(),
            });
        }
    }
}

/// Guard for a gated trace span (see [`Telemetry::span`]). Holds
/// nothing when tracing is disabled.
#[derive(Debug)]
pub struct TraceSpan<'a>(Option<TraceSpanInner<'a>>);

#[derive(Debug)]
struct TraceSpanInner<'a> {
    telemetry: &'a Telemetry,
    name: String,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

impl TraceSpan<'_> {
    /// Attaches an argument to the span (no-op when tracing is off).
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, value));
        }
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        let took = inner.start.elapsed();
        let ts_ns = inner
            .start
            .saturating_duration_since(inner.telemetry.epoch)
            .as_nanos() as u64;
        inner.telemetry.push_event(TraceEvent {
            name: inner.name,
            cat: inner.cat,
            ts_ns,
            dur_ns: Some(took.as_nanos() as u64),
            tid: current_tid(),
            args: inner.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_accumulate() {
        let t = Telemetry::new();
        assert_eq!(t.counter(Metric::LayerHit), 0);
        t.count(Metric::LayerHit);
        t.count_by(Metric::LayerHit, 4);
        assert_eq!(t.counter(Metric::LayerHit), 5);
        assert_eq!(t.counter(Metric::LayerMiss), 0);
    }

    #[test]
    fn metric_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "{} out of order", m.name());
        }
    }

    /// A dotted lowercase instrument name: `a-z0-9_` segments joined
    /// by `.`, at least two segments.
    fn is_dotted_lowercase(name: &str) -> bool {
        name.contains('.')
            && name.split('.').all(|seg| {
                !seg.is_empty()
                    && seg
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            })
    }

    #[test]
    fn every_instrument_has_a_dotted_name_and_is_exported() {
        let t = Telemetry::new();
        let dump = t.metrics_value();
        let counters = dump["counters"].as_object().unwrap();
        let gauges = dump["gauges"].as_object().unwrap();
        for m in Metric::ALL {
            assert!(
                is_dotted_lowercase(m.name()),
                "counter name `{}` is not dotted lowercase",
                m.name()
            );
            assert!(
                counters.iter().any(|(k, _)| k == m.name()),
                "counter `{}` missing from metrics_value",
                m.name()
            );
        }
        for g in Gauge::ALL {
            assert!(
                is_dotted_lowercase(g.name()),
                "gauge name `{}` is not dotted lowercase",
                g.name()
            );
            assert!(
                gauges.iter().any(|(k, _)| k == g.name()),
                "gauge `{}` missing from metrics_value",
                g.name()
            );
        }
        // Uniqueness across both families: a counter and a gauge must
        // not collide either.
        let mut names: Vec<&str> = Metric::ALL
            .iter()
            .map(|m| m.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "instrument names collide");
    }

    #[test]
    fn quantile_digest_matches_sorted_reference() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 997).collect();
        let mut digest = QuantileDigest::new();
        let mut sorted = Vec::new();
        for (n, &s) in samples.iter().enumerate() {
            digest.record(s);
            sorted.push(s);
            sorted.sort_unstable();
            let count = (n + 1) as u64;
            for p in [50u8, 90, 99] {
                let rank = ((count - 1) * u64::from(p) / 100) as usize;
                assert_eq!(digest.quantile(p), Some(sorted[rank]), "p{p} at n={count}");
            }
            assert_eq!(digest.max(), sorted.last().copied());
        }
    }

    #[test]
    fn quantile_digest_merge_is_order_independent() {
        let parts: Vec<Vec<u64>> = vec![
            (0..100).map(|i| i * 3 % 71).collect(),
            (0..57).map(|i| i * 13 % 301).collect(),
            vec![5, 5, 5, 1_000_000, 0],
        ];
        let merge_in = |order: &[usize]| {
            let mut acc = QuantileDigest::new();
            for &i in order {
                let mut part = QuantileDigest::new();
                for &s in &parts[i] {
                    part.record(s);
                }
                acc.merge(&part);
            }
            acc
        };
        let a = merge_in(&[0, 1, 2]);
        let b = merge_in(&[2, 0, 1]);
        let c = merge_in(&[1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.summary(), c.summary());
        // And merged state equals recording everything into one digest.
        let mut flat = QuantileDigest::new();
        for part in &parts {
            for &s in part {
                flat.record(s);
            }
        }
        assert_eq!(a, flat);
    }

    #[test]
    fn quantile_digest_resolution_quantizes_inputs() {
        let mut d = QuantileDigest::with_resolution(4);
        for v in [0u64, 3, 15, 16, 17, 31, 32] {
            d.record(v);
        }
        assert_eq!(d.count(), 7);
        assert_eq!(d.max(), Some(32));
        assert_eq!(d.quantile(50), Some(16));
    }

    #[test]
    fn rate_windows_sum_trailing_buckets_with_injected_clock() {
        let mut r = RateWindows::new();
        for s in 0..30u64 {
            r.record(s * 1_000_000);
            r.record(s * 1_000_000 + 500_000);
        }
        let snap = r.snapshot(29 * 1_000_000 + 900_000);
        assert_eq!(snap.last_1s, 2);
        assert_eq!(snap.last_10s, 20);
        assert_eq!(snap.last_60s, 60);
        assert_eq!(snap.total, 60);
        // 70 s later every window is empty but the total survives.
        let later = r.snapshot(100 * 1_000_000);
        assert_eq!(later.last_60s, 0);
        assert_eq!(later.total, 60);
    }

    #[test]
    fn rate_windows_clear_stale_laps_of_the_ring() {
        let mut r = RateWindows::new();
        r.record(0);
        // One full lap later the second-0 bucket must not alias into
        // second 64's window.
        r.record(64 * 1_000_000);
        let snap = r.snapshot(64 * 1_000_000);
        assert_eq!(snap.last_1s, 1);
        assert_eq!(snap.total, 2);
    }

    #[test]
    fn event_ring_keeps_the_most_recent_events() {
        let mut ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.evicted(), 2);
        let held: Vec<u64> = ring.iter().copied().collect();
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn gauge_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Gauge::COUNT);
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{} out of order", g.name());
        }
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let h = Histogram::new(&[0, 1, 2]);
        for rung in [0, 0, 1, 3, 7] {
            h.record(rung);
        }
        assert_eq!(h.snapshot(), vec![2, 1, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn stage_spans_accumulate_without_tracing() {
        let t = Telemetry::new();
        {
            let _a = t.stage_span("demo");
        }
        {
            let _b = t.stage_span("demo");
        }
        let aggs = t.stage_aggregates_detailed();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].name, "demo");
        assert_eq!(aggs[0].count, 2);
        // No trace events were recorded while tracing was off.
        let trace = t.chrome_trace();
        let events = trace["traceEvents"].as_array().unwrap();
        assert!(events.iter().all(|e| e["ph"].as_str() == Some("M")));
    }

    #[test]
    fn trace_spans_record_only_when_enabled() {
        let t = Telemetry::new();
        {
            let _off = t.span("route.build", "memo");
        }
        t.set_tracing(true);
        {
            let mut on = t.span("route.build", "memo");
            on.arg("n", ArgValue::Int(3));
        }
        let trace = t.chrome_trace();
        let events = trace["traceEvents"].as_array().unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0]["name"].as_str(), Some("route.build"));
        assert_eq!(spans[0]["args"]["n"].as_u64(), Some(3));
    }

    #[test]
    fn nested_stage_spans_track_current_stage() {
        let t = Telemetry::new();
        assert_eq!(t.current_stage(), None);
        let outer = t.stage_span("outer");
        assert_eq!(t.current_stage().as_deref(), Some("outer"));
        {
            let _inner = t.stage_span("inner");
            assert_eq!(t.current_stage().as_deref(), Some("inner"));
        }
        assert_eq!(t.current_stage().as_deref(), Some("outer"));
        drop(outer);
        assert_eq!(t.current_stage(), None);
    }

    #[test]
    fn worker_utilization_aggregates_across_maps() {
        let t = Telemetry::new();
        for (stage, busy_ms) in [("a", 10), ("b", 30)] {
            t.record_worker(WorkerSample {
                stage: Some(stage.to_owned()),
                worker: 0,
                busy: Duration::from_millis(busy_ms),
                wall: Duration::from_millis(40),
                items: 2,
            });
        }
        let agg = t.worker_utilization();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].items, 4);
        assert_eq!(agg[0].busy, Duration::from_millis(40));
        assert!((agg[0].utilization() - 0.5).abs() < 1e-9);
        let stage_a = t.stage_worker_busy("a");
        assert_eq!(stage_a, vec![(0, Duration::from_millis(10))]);
    }

    #[test]
    fn chrome_trace_round_trips_through_serde() {
        let t = Telemetry::new();
        t.set_tracing(true);
        {
            let _s = t.stage_span("demo");
            t.instant("fault.injected", "fault", vec![("site", ArgValue::Int(7))]);
        }
        let rendered = serde_json::to_string_pretty(&t.chrome_trace()).unwrap();
        let parsed: Value = serde_json::from_str(&rendered).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["ph"].as_str() == Some("X")));
        assert!(
            events
                .iter()
                .any(|e| e["ph"].as_str() == Some("i")
                    && e["name"].as_str() == Some("fault.injected"))
        );
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("thread_name")));
    }

    #[test]
    fn text_summary_names_stages_and_counters() {
        let t = Telemetry::new();
        t.set_tracing(true);
        {
            let _s = t.stage_span("demo");
        }
        t.count(Metric::RouteMiss);
        let text = t.text_summary();
        assert!(text.contains("demo"), "{text}");
        assert!(text.contains("memo.route.miss"), "{text}");
        assert!(text.contains("track main"), "{text}");
    }
}
