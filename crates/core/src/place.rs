//! 2.5-D interposer placement of chiplets.
//!
//! The paper routes every inter-chiplet transfer over "one channel of
//! the AIB 2.0 interface", implicitly assuming adjacent dies. Once a
//! configuration has more than two chiplets, where each die sits on
//! the interposer determines how many channel hops a transfer crosses;
//! this module places chiplets on a grid to minimise
//! `Σ traffic × Manhattan distance` (greedy construction + pairwise
//! swap refinement, fully deterministic).

use crate::config::DesignConfig;
use claire_graph::WeightedGraph;
use claire_model::OpClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A placement of chiplets on an interposer grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterposerPlacement {
    /// Grid columns.
    cols: u32,
    /// Slot of each chiplet (by chiplet index), `(col, row)`.
    slots: Vec<(u32, u32)>,
}

impl InterposerPlacement {
    /// Builds a placement from explicit slots (testing / ablation).
    ///
    /// # Panics
    ///
    /// Panics if two chiplets share a slot.
    pub fn from_slots(slots: Vec<(u32, u32)>, cols: u32) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for s in &slots {
            assert!(seen.insert(*s), "slot {s:?} reused");
        }
        InterposerPlacement { cols, slots }
    }

    /// Manhattan distance between two chiplets' slots, in channel
    /// hops (adjacent dies = 1).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        let (ax, ay) = self.slots[a];
        let (bx, by) = self.slots[b];
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Number of placed chiplets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for an empty placement.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot of chiplet `i`.
    pub fn slot(&self, i: usize) -> (u32, u32) {
        self.slots[i]
    }

    /// Total weighted wirelength `Σ traffic × distance`.
    pub fn wirelength(&self, traffic: &BTreeMap<(usize, usize), f64>) -> f64 {
        traffic
            .iter()
            .map(|(&(a, b), &w)| w * f64::from(self.distance(a, b)))
            .sum()
    }
}

/// Aggregates a configuration's class-level communication graph into
/// chiplet-pair traffic (bytes), keyed by `(min, max)` chiplet index.
pub fn chiplet_traffic(
    config: &DesignConfig,
    class_graph: &WeightedGraph<OpClass>,
) -> BTreeMap<(usize, usize), f64> {
    let mut traffic = BTreeMap::new();
    for (a, b, w) in class_graph.edges() {
        let (Some(ca), Some(cb)) = (config.chiplet_of(*a), config.chiplet_of(*b)) else {
            continue;
        };
        if ca != cb {
            *traffic.entry((ca.min(cb), ca.max(cb))).or_insert(0.0) += w;
        }
    }
    traffic
}

/// Places `n` chiplets on the smallest near-square grid, minimising
/// weighted wirelength: heaviest-communicating chiplet first at the
/// grid centre, each next chiplet greedily, then pairwise-swap hill
/// climbing to a local optimum. Deterministic throughout.
pub fn place(n: usize, traffic: &BTreeMap<(usize, usize), f64>) -> InterposerPlacement {
    if n == 0 {
        return InterposerPlacement {
            cols: 1,
            slots: Vec::new(),
        };
    }
    let cols = (n as f64).sqrt().ceil() as u32;
    let rows = (n as u32).div_ceil(cols);
    let free: Vec<(u32, u32)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (c, r)))
        .collect();

    // Total traffic per chiplet, for the placement order.
    let mut degree = vec![0.0_f64; n];
    for (&(a, b), &w) in traffic {
        degree[a] += w;
        degree[b] += w;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| degree[b].total_cmp(&degree[a]).then(a.cmp(&b)));

    // Greedy construction.
    let mut slot_of: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut used = vec![false; free.len()];
    for &c in &order {
        let mut best = None;
        for (si, &s) in free.iter().enumerate() {
            if used[si] {
                continue;
            }
            // Cost of putting c at s against already-placed partners.
            let mut cost = 0.0;
            for (&(a, b), &w) in traffic {
                let partner = if a == c {
                    b
                } else if b == c {
                    a
                } else {
                    continue;
                };
                if let Some((px, py)) = slot_of[partner] {
                    cost += w * f64::from(s.0.abs_diff(px) + s.1.abs_diff(py));
                }
            }
            // Mild centre preference for the first placements.
            let centre = f64::from(s.0.abs_diff(cols / 2) + s.1.abs_diff(rows / 2));
            let score = cost + centre * 1e-9;
            if best
                .map(|(bs, _, _): (f64, usize, (u32, u32))| score < bs)
                .unwrap_or(true)
            {
                best = Some((score, si, s));
            }
        }
        // The grid always holds at least n slots, so a candidate
        // exists; the guard keeps the loop total regardless.
        let Some((_, si, s)) = best else { continue };
        used[si] = true;
        slot_of[c] = Some(s);
    }
    let mut placement = InterposerPlacement {
        cols,
        slots: slot_of.into_iter().map(|s| s.unwrap_or((0, 0))).collect(),
    };

    // Pairwise-swap refinement.
    let mut improved = true;
    while improved {
        improved = false;
        let current = placement.wirelength(traffic);
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                placement.slots.swap(i, j);
                if placement.wirelength(traffic) + 1e-12 < current {
                    improved = true;
                    break 'outer;
                }
                placement.slots.swap(i, j);
            }
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pairs: &[((usize, usize), f64)]) -> BTreeMap<(usize, usize), f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn heavy_pairs_end_up_adjacent() {
        // 4 chiplets: 0-1 heavy, 2-3 heavy, 0-2 light.
        let traffic = t(&[((0, 1), 100.0), ((2, 3), 100.0), ((0, 2), 1.0)]);
        let p = place(4, &traffic);
        assert_eq!(p.distance(0, 1), 1);
        assert_eq!(p.distance(2, 3), 1);
    }

    #[test]
    fn wirelength_beats_pessimal_order() {
        // A chain 0-1-2-3-4-5 with decaying weights on a 3x2 grid.
        let traffic = t(&[
            ((0, 1), 50.0),
            ((1, 2), 40.0),
            ((2, 3), 30.0),
            ((3, 4), 20.0),
            ((4, 5), 10.0),
        ]);
        let optimised = place(6, &traffic);
        // Pessimal: reversed row-major assignment.
        let pessimal = InterposerPlacement {
            cols: 3,
            slots: vec![(2, 1), (0, 0), (2, 0), (0, 1), (1, 0), (1, 1)],
        };
        assert!(optimised.wirelength(&traffic) < pessimal.wirelength(&traffic));
    }

    #[test]
    fn deterministic() {
        let traffic = t(&[((0, 1), 5.0), ((1, 2), 7.0), ((0, 3), 2.0)]);
        assert_eq!(place(4, &traffic), place(4, &traffic));
    }

    #[test]
    fn zero_and_one_chiplets() {
        assert!(place(0, &BTreeMap::new()).is_empty());
        let p = place(1, &BTreeMap::new());
        assert_eq!(p.len(), 1);
        assert_eq!(p.distance(0, 0), 0);
    }

    #[test]
    fn slots_are_unique() {
        let traffic = t(&[((0, 1), 1.0)]);
        let p = place(9, &traffic);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..9 {
            assert!(seen.insert(p.slot(i)), "slot reused");
        }
    }

    #[test]
    fn two_chiplets_distance_one() {
        let p = place(2, &t(&[((0, 1), 3.0)]));
        assert_eq!(p.distance(0, 1), 1);
    }
}
