//! The flat execution plan: one up-front item set for a whole flow.
//!
//! The recursive flow runs one staged DSE sweep per model; the outer
//! parallel map claims whole models, the nested per-point maps are
//! forced serial inside workers, and models of very different sizes
//! leave workers idle (the test stage's ~3.2× worker-busy imbalance
//! at 4 threads). The flat plan instead enumerates **every**
//! `(model, hw-point)` evaluation the flow will need as one item set
//! and feeds it through a single [`Engine::par_map`], so the atomic
//! work cursor balances points — not models — across workers.
//!
//! The per-model and per-subset *selections* then replay serially from
//! the resulting [`EvalTable`]. Replay calls the exact selection code
//! the recursive flow uses ([`crate::dse::select_custom_config`],
//! [`crate::dse::select_set_hw`]) on the same point lists in the same
//! space iteration order, and every table entry is produced by the
//! same [`Engine::evaluate`] call the recursive flow would make —
//! deterministic and cache-state-independent by the engine's core
//! invariant — so the planned flow's outputs are bit-identical to the
//! recursive flow's at any thread count.

use crate::config::{Constraints, DesignConfig};
use crate::dse::{
    monolithic_for, select_custom_config, select_set_hw, DseObjective, DsePoint, SHELL_HW,
};
use crate::error::ClaireError;
use crate::evaluate::PpaReport;
use crate::parallel::Engine;
use crate::telemetry::ArgValue;
use claire_model::{Model, OpClass};
use claire_ppa::{DseSpace, HwParams};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One model's slice of the evaluation table: its screened DSE points
/// in space iteration order, with each point's monolithic-shell
/// evaluation (`None` when the evaluation surfaced an error — the same
/// points the recursive sweep drops).
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// The model's screened hardware points, in space iteration order.
    pub points: Vec<HwParams>,
    /// Per-point monolithic-shell reports, parallel to `points`.
    pub reports: Vec<Option<PpaReport>>,
    /// `points`/`reports` re-indexed by hardware point for the subset
    /// replays (a set sweep visits the intersection of its members'
    /// screens, so every lookup lands in the member's row).
    by_hw: HashMap<HwParams, Option<PpaReport>>,
}

impl ModelRow {
    /// The feasible [`DsePoint`]s of this row under `constraints`, in
    /// space iteration order. The recursive
    /// [`crate::dse::sweep_with_engine`] additionally drops points the
    /// latency lower-bound screen proves can never be selected, so its
    /// list is an order-preserving subset of this one — and every
    /// selection over either list is bit-identical (the shared
    /// [`crate::dse::select_custom_config`] tail, see the
    /// [`crate::search`] soundness argument).
    pub fn feasible_points(&self, constraints: &Constraints) -> Vec<DsePoint> {
        self.points
            .iter()
            .zip(&self.reports)
            .filter_map(|(&hw, r)| {
                let report = (*r)?;
                let feasible = report.area_mm2 <= constraints.chiplet_area_limit_mm2
                    && report.power_density_w_per_mm2()
                        <= constraints.power_density_limit_w_per_mm2;
                feasible.then_some(DsePoint { hw, report })
            })
            .collect()
    }

    /// The stored report for `hw`, or `None` when the point was
    /// screened out or its evaluation failed.
    fn report_for(&self, hw: HwParams) -> Option<PpaReport> {
        self.by_hw.get(&hw).copied().flatten()
    }
}

/// The flat plan's output: every `(model, hw-point)` evaluation a flow
/// needs, computed once through a single load-balanced parallel map.
#[derive(Debug, Clone)]
pub struct EvalTable {
    /// The full DSE space, in iteration order (the subset replays
    /// re-screen from it).
    pub space_points: Vec<HwParams>,
    /// Per-model monolithic DSE shells, parallel to the planned model
    /// list.
    pub shells: Vec<DesignConfig>,
    /// Per-model rows, parallel to the planned model list.
    pub rows: Vec<ModelRow>,
}

/// Builds the evaluation table for `models`: screens each model's
/// points from the engine's memoized area tables (stage A of the
/// staged sweep, identical constraints and counters), then evaluates
/// the union of all screened `(model, hw-point)` items through one
/// [`Engine::par_map`]. The item count lands on the `plan.items`
/// counter.
pub fn build_eval_table(
    models: &[Model],
    space: &DseSpace,
    constraints: &Constraints,
    engine: &Engine,
) -> EvalTable {
    let space_points: Vec<HwParams> = space.iter().collect();
    let shells: Vec<DesignConfig> = models.iter().map(|m| monolithic_for(m, SHELL_HW)).collect();

    // Stage A per model: the same sound area screen the recursive
    // sweep applies, decided from the memoized area tables alone. The
    // survivor scratch is hoisted out of the per-model loop — each
    // screen filters into the same full-capacity buffer and copies
    // once into an exact-sized row, instead of growth-reallocating a
    // fresh `Vec` per model.
    let mut rows: Vec<ModelRow> = Vec::with_capacity(models.len());
    let mut scratch: Vec<HwParams> = Vec::with_capacity(space_points.len());
    for shell in &shells {
        let points: Vec<HwParams> = if engine.pruning_enabled() {
            let mut span = engine.telemetry().span("dse.screen", "dse");
            scratch.clear();
            scratch.extend(space_points.iter().copied().filter(|hw| {
                engine.monolithic_area(&shell.classes, hw) <= constraints.chiplet_area_limit_mm2
            }));
            engine.note_dse_pruned((space_points.len() - scratch.len()) as u64);
            engine.note_dse_evaluated(scratch.len() as u64);
            span.arg(
                "pruned",
                ArgValue::Int((space_points.len() - scratch.len()) as u64),
            );
            span.arg("kept", ArgValue::Int(scratch.len() as u64));
            scratch.as_slice().to_vec()
        } else {
            space_points.clone()
        };
        rows.push(ModelRow {
            points,
            reports: Vec::new(),
            by_hw: HashMap::new(),
        });
    }

    // The flat item set: every evaluation of the flow, one parallel
    // map, points (not models) as the unit of work claiming.
    let items: Vec<(usize, usize)> = rows
        .iter()
        .enumerate()
        .flat_map(|(mi, row)| (0..row.points.len()).map(move |pi| (mi, pi)))
        .collect();
    engine.note_plan_items(items.len() as u64);
    let mut span = engine.telemetry().span("plan.eval", "plan");
    span.arg("items", ArgValue::Int(items.len() as u64));
    let reports: Vec<Option<PpaReport>> = engine.par_map(&items, |_, &(mi, pi)| {
        let mut cfg = shells[mi].clone();
        cfg.hw = rows[mi].points[pi];
        engine.evaluate(&models[mi], &cfg).ok()
    });
    drop(span);

    // Scatter the row-major results back into per-model rows.
    let mut it = reports.into_iter();
    for row in &mut rows {
        row.reports = it.by_ref().take(row.points.len()).collect();
        row.by_hw = row
            .points
            .iter()
            .copied()
            .zip(row.reports.iter().copied())
            .collect();
    }

    EvalTable {
        space_points,
        shells,
        rows,
    }
}

/// The flat-plan replay of [`crate::dse::custom_config_with_engine`]:
/// filters the model's row to its feasible points (the recursive
/// sweep's exact survivor list) and runs the shared selection tail.
///
/// # Errors
///
/// Same as [`crate::dse::custom_config`].
pub fn custom_from_row(
    model: &Model,
    row: &ModelRow,
    constraints: &Constraints,
    objective: DseObjective,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    select_custom_config(
        model,
        row.feasible_points(constraints),
        constraints,
        objective,
    )
}

/// The flat-plan replay of [`crate::dse::set_config_with_engine`]:
/// re-screens the space for the member set (every member's shell must
/// fit, same counters), computes each surviving point's member-total
/// area from the table in member order (the recursive sweep's exact
/// early-exit fold), and runs the shared selection fold.
///
/// # Errors
///
/// Same as [`crate::dse::set_config`].
pub fn set_config_from_table(
    name: &str,
    members: &[usize],
    models: &[Model],
    table: &EvalTable,
    constraints: &Constraints,
    custom_latency_s: &BTreeMap<String, f64>,
    engine: &Engine,
) -> Result<DesignConfig, ClaireError> {
    if members.is_empty() {
        return Err(ClaireError::EmptyAlgorithmSet);
    }
    let points: Vec<HwParams> = if engine.pruning_enabled() {
        let mut span = engine.telemetry().span("dse.screen", "dse");
        let kept: Vec<HwParams> = table
            .space_points
            .iter()
            .copied()
            .filter(|hw| {
                members.iter().all(|&mi| {
                    engine.monolithic_area(&table.shells[mi].classes, hw)
                        <= constraints.chiplet_area_limit_mm2
                })
            })
            .collect();
        engine.note_dse_pruned((table.space_points.len() - kept.len()) as u64);
        engine.note_dse_evaluated(kept.len() as u64);
        span.arg(
            "pruned",
            ArgValue::Int((table.space_points.len() - kept.len()) as u64),
        );
        span.arg("kept", ArgValue::Int(kept.len() as u64));
        kept
    } else {
        table.space_points.clone()
    };
    let totals: Vec<Option<f64>> = points
        .iter()
        .map(|&hw| {
            let mut total_area = 0.0;
            for &mi in members {
                let m = &models[mi];
                let report = table.rows[mi].report_for(hw)?;
                let latency_ok = custom_latency_s
                    .get(m.name())
                    .map(|&l| report.latency_s <= l * (1.0 + constraints.latency_slack))
                    .unwrap_or(true);
                if report.area_mm2 > constraints.chiplet_area_limit_mm2
                    || report.power_density_w_per_mm2() > constraints.power_density_limit_w_per_mm2
                    || !latency_ok
                {
                    return None;
                }
                total_area += report.area_mm2;
            }
            Some(total_area)
        })
        .collect();

    let hw = select_set_hw(name, &points, &totals)?;
    let classes: BTreeSet<OpClass> = members
        .iter()
        .flat_map(|&mi| table.shells[mi].classes.iter().copied())
        .collect();
    Ok(DesignConfig::monolithic(name, hw, classes))
}
