//! The flat execution plan: one up-front item set for a whole flow.
//!
//! The recursive flow runs one staged DSE sweep per model; the outer
//! parallel map claims whole models, the nested per-point maps are
//! forced serial inside workers, and models of very different sizes
//! leave workers idle (the test stage's ~3.2× worker-busy imbalance
//! at 4 threads). The flat plan instead enumerates **every**
//! `(model, hw-point)` evaluation the flow will need as one item set
//! and feeds it through a single [`Engine::par_map`], so the atomic
//! work cursor balances points — not models — across workers.
//!
//! The per-model and per-subset *selections* then replay serially from
//! the resulting [`EvalTable`]. Replay calls the exact selection code
//! the recursive flow uses ([`crate::dse::select_custom_config`],
//! [`crate::dse::select_set_hw`]) on the same point lists in the same
//! space iteration order, and every table entry is produced by the
//! same [`Engine::evaluate`] call the recursive flow would make —
//! deterministic and cache-state-independent by the engine's core
//! invariant — so the planned flow's outputs are bit-identical to the
//! recursive flow's at any thread count.

use crate::config::{Constraints, DesignConfig};
use crate::dse::{
    monolithic_for, select_custom_config, select_set_hw, DseObjective, DsePoint, SHELL_HW,
};
use crate::error::ClaireError;
use crate::evaluate::PpaReport;
use crate::parallel::Engine;
use crate::telemetry::ArgValue;
use claire_model::{Model, OpClass};
use claire_ppa::{DseSpace, HwParams};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One model's slice of the evaluation table: its area-screened DSE
/// points in space iteration order, with each point's
/// monolithic-shell evaluation (`None` when the evaluation surfaced
/// an error — the same points the recursive sweep drops) and a marker
/// for points the latency lower-bound screen dropped *before*
/// evaluation (the same points the recursive stage A′ drops).
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// The model's area-screened hardware points, in space iteration
    /// order.
    pub points: Vec<HwParams>,
    /// Per-point monolithic-shell reports, parallel to `points`.
    /// `None` for failed evaluations *and* for lb-screened points —
    /// `lb_screened` tells them apart.
    pub reports: Vec<Option<PpaReport>>,
    /// Parallel to `points`: `true` when the latency lower-bound
    /// screen proved the point can never be selected, so the plan
    /// never priced it. A subset replay that still needs such a point
    /// (its member-set bound can be looser than this row's pivot
    /// bound) prices it lazily through the engine's memo tiers — see
    /// [`set_config_from_table`].
    lb_screened: Vec<bool>,
    /// `points`/`reports`/`lb_screened` re-indexed by hardware point
    /// for the subset replays (a set sweep visits the intersection of
    /// its members' screens, so every lookup lands in the member's
    /// row).
    by_hw: HashMap<HwParams, (Option<PpaReport>, bool)>,
}

impl ModelRow {
    /// The feasible [`DsePoint`]s of this row under `constraints`, in
    /// space iteration order — exactly the recursive
    /// [`crate::dse::sweep_with_engine`] survivor list: area screen,
    /// then the latency lower-bound screen, then per-point
    /// feasibility. Every selection over it is bit-identical to the
    /// recursive flow's (the shared
    /// [`crate::dse::select_custom_config`] tail, see the
    /// [`crate::search`] soundness argument).
    pub fn feasible_points(&self, constraints: &Constraints) -> Vec<DsePoint> {
        self.points
            .iter()
            .zip(&self.reports)
            .zip(&self.lb_screened)
            .filter_map(|((&hw, r), &screened)| {
                if screened {
                    return None;
                }
                let report = (*r)?;
                let feasible = report.area_mm2 <= constraints.chiplet_area_limit_mm2
                    && report.power_density_w_per_mm2()
                        <= constraints.power_density_limit_w_per_mm2;
                feasible.then_some(DsePoint { hw, report })
            })
            .collect()
    }

    /// The row's slot for `hw`: `(report, lb_screened)`. `None` when
    /// the point was dropped by the area screen.
    fn slot_for(&self, hw: HwParams) -> Option<(Option<PpaReport>, bool)> {
        self.by_hw.get(&hw).copied()
    }
}

/// The flat plan's output: every `(model, hw-point)` evaluation a flow
/// needs, computed once through a single load-balanced parallel map.
#[derive(Debug, Clone)]
pub struct EvalTable {
    /// The full DSE space, in iteration order (the subset replays
    /// re-screen from it).
    pub space_points: Vec<HwParams>,
    /// Per-model monolithic DSE shells, parallel to the planned model
    /// list.
    pub shells: Vec<DesignConfig>,
    /// Per-model rows, parallel to the planned model list.
    pub rows: Vec<ModelRow>,
}

/// Builds the evaluation table for `models`: screens each model's
/// points from the engine's memoized area tables (stage A of the
/// staged sweep, identical constraints and counters), then evaluates
/// the union of all screened `(model, hw-point)` items through one
/// [`Engine::par_map`]. The item count lands on the `plan.items`
/// counter.
pub fn build_eval_table(
    models: &[Model],
    space: &DseSpace,
    constraints: &Constraints,
    engine: &Engine,
) -> EvalTable {
    build_eval_table_cancellable(models, space, constraints, engine, &[])
}

/// [`build_eval_table`] with per-model cooperative cancellation.
///
/// `cancels` is parallel to `models` (an empty slice disables
/// cancellation entirely). Each evaluation item checks its model's
/// flag when a worker claims it — the cooperative checkpoint — and
/// returns unevaluated when the flag is set, so an expired request
/// stops consuming workers at item granularity. A cancelled model's
/// row is garbage (its caller must discard it); every *other* model's
/// row is bit-identical to an uncancelled build, because screens,
/// bounds, and evaluations are per-model and the shared memo tiers
/// hold exact values — skipping a neighbour's items can only *miss*
/// warm entries, never write wrong ones.
pub fn build_eval_table_cancellable(
    models: &[Model],
    space: &DseSpace,
    constraints: &Constraints,
    engine: &Engine,
    cancels: &[Arc<AtomicBool>],
) -> EvalTable {
    let cancelled = |mi: usize| cancels.get(mi).is_some_and(|c| c.load(Ordering::Relaxed));
    let space_points: Vec<HwParams> = space.iter().collect();
    let shells: Vec<DesignConfig> = models.iter().map(|m| monolithic_for(m, SHELL_HW)).collect();

    // Stage A per model: the same sound area screen the recursive
    // sweep applies, decided from the memoized area tables alone. The
    // survivor scratch is hoisted out of the per-model loop — each
    // screen filters into the same full-capacity buffer and copies
    // once into an exact-sized row, instead of growth-reallocating a
    // fresh `Vec` per model.
    let mut rows: Vec<ModelRow> = Vec::with_capacity(models.len());
    let mut scratch: Vec<HwParams> = Vec::with_capacity(space_points.len());
    for shell in &shells {
        let points: Vec<HwParams> = if engine.pruning_enabled() {
            let mut span = engine.telemetry().span("dse.screen", "dse");
            scratch.clear();
            scratch.extend(space_points.iter().copied().filter(|hw| {
                engine.monolithic_area(&shell.classes, hw) <= constraints.chiplet_area_limit_mm2
            }));
            engine.note_dse_pruned((space_points.len() - scratch.len()) as u64);
            span.arg(
                "pruned",
                ArgValue::Int((space_points.len() - scratch.len()) as u64),
            );
            span.arg("kept", ArgValue::Int(scratch.len() as u64));
            scratch.as_slice().to_vec()
        } else {
            space_points.clone()
        };
        let n = points.len();
        rows.push(ModelRow {
            points,
            reports: Vec::new(),
            lb_screened: vec![false; n],
            by_hw: HashMap::new(),
        });
    }

    // Stage A′ per model: the latency lower-bound screen — the same
    // sound pre-pricing drop the recursive sweep applies (see
    // [`crate::search`]). All models' lower bounds run through one
    // flat `par_map` (they hit the memoized `lb` tier and the
    // structural interner, never the full evaluator), each model's
    // pivot — its first minimal-bound point in space order — is
    // priced, and every point whose bound exceeds the pivot's slack-
    // widened latency is marked screened: provably never selectable,
    // so the plan's big map need not price it.
    if engine.lb_screen_enabled() && constraints.latency_slack.is_finite() {
        let mut span = engine.telemetry().span("plan.lb_screen", "plan");
        let lb_items: Vec<(usize, usize)> = rows
            .iter()
            .enumerate()
            .flat_map(|(mi, row)| (0..row.points.len()).map(move |pi| (mi, pi)))
            .collect();
        let lbs: Vec<u64> = engine.par_map(&lb_items, |_, &(mi, pi)| {
            engine.compute_cycles_lb(&models[mi], &rows[mi].points[pi])
        });
        // Per-model lb slices (rows are contiguous in the flat list).
        let mut offsets = Vec::with_capacity(rows.len());
        let mut at = 0usize;
        for row in &rows {
            offsets.push(at);
            at += row.points.len();
        }
        // Pivot per model: first index with minimal bound (u64
        // compare — exact, order-deterministic).
        let pivots: Vec<Option<usize>> = rows
            .iter()
            .enumerate()
            .map(|(mi, row)| {
                (!row.points.is_empty()).then(|| {
                    let slice = &lbs[offsets[mi]..offsets[mi] + row.points.len()];
                    let mut pivot = 0usize;
                    for (i, &lb) in slice.iter().enumerate() {
                        if lb < slice[pivot] {
                            pivot = i;
                        }
                    }
                    pivot
                })
            })
            .collect();
        // Price every pivot (one small parallel map over models); an
        // infeasible or failed pivot yields no sound bound — keep all.
        let bounds: Vec<f64> = engine.par_map(&pivots, |mi, pivot| {
            let Some(pi) = *pivot else {
                return f64::INFINITY;
            };
            if cancelled(mi) {
                // Cooperative checkpoint: an infinite bound keeps the
                // model's points unscreened, and the big map below
                // skips them anyway.
                return f64::INFINITY;
            }
            let mut cfg = shells[mi].clone();
            cfg.hw = rows[mi].points[pi];
            match engine.evaluate(&models[mi], &cfg) {
                Ok(r)
                    if r.area_mm2 <= constraints.chiplet_area_limit_mm2
                        && r.power_density_w_per_mm2()
                            <= constraints.power_density_limit_w_per_mm2 =>
                {
                    r.latency_s * (1.0 + constraints.latency_slack)
                }
                _ => f64::INFINITY,
            }
        });
        let clock = claire_ppa::tech28::CLOCK_HZ;
        let mut total_pruned: u64 = 0;
        for (mi, row) in rows.iter_mut().enumerate() {
            if !bounds[mi].is_finite() {
                continue;
            }
            let slice = &lbs[offsets[mi]..offsets[mi] + row.points.len()];
            for (pi, &lb) in slice.iter().enumerate() {
                // The pivot's own bound never exceeds its latency, so
                // the pivot always survives its own screen.
                if lb as f64 / clock > bounds[mi] {
                    row.lb_screened[pi] = true;
                    total_pruned += 1;
                }
            }
        }
        engine.note_dse_lb_pruned(total_pruned);
        span.arg("pruned", ArgValue::Int(total_pruned));
    }
    if engine.pruning_enabled() {
        let evaluated: u64 = rows
            .iter()
            .map(|r| r.lb_screened.iter().filter(|&&s| !s).count() as u64)
            .sum();
        engine.note_dse_evaluated(evaluated);
    }

    // The flat item set: every surviving evaluation of the flow, one
    // parallel map, points (not models) as the unit of work claiming.
    let items: Vec<(usize, usize)> = rows
        .iter()
        .enumerate()
        .flat_map(|(mi, row)| {
            (0..row.points.len())
                .filter(|&pi| !row.lb_screened[pi])
                .map(move |pi| (mi, pi))
        })
        .collect();
    engine.note_plan_items(items.len() as u64);
    let mut span = engine.telemetry().span("plan.eval", "plan");
    span.arg("items", ArgValue::Int(items.len() as u64));
    let reports: Vec<Option<PpaReport>> = engine.par_map(&items, |_, &(mi, pi)| {
        // Cooperative cancellation checkpoint, at item-claim time: an
        // expired model's remaining items fall through unevaluated.
        if cancelled(mi) {
            return None;
        }
        let mut cfg = shells[mi].clone();
        cfg.hw = rows[mi].points[pi];
        engine.evaluate(&models[mi], &cfg).ok()
    });
    drop(span);

    // Scatter the results back into per-model rows; lb-screened slots
    // stay `None` (never priced).
    let mut it = reports.into_iter();
    for row in &mut rows {
        row.reports = row
            .lb_screened
            .iter()
            .map(|&screened| if screened { None } else { it.next().flatten() })
            .collect();
        row.by_hw = row
            .points
            .iter()
            .copied()
            .zip(
                row.reports
                    .iter()
                    .copied()
                    .zip(row.lb_screened.iter().copied()),
            )
            .collect();
    }

    EvalTable {
        space_points,
        shells,
        rows,
    }
}

/// The flat-plan replay of [`crate::dse::custom_config_with_engine`]:
/// filters the model's row to its feasible points (the recursive
/// sweep's exact survivor list) and runs the shared selection tail.
///
/// # Errors
///
/// Same as [`crate::dse::custom_config`].
pub fn custom_from_row(
    model: &Model,
    row: &ModelRow,
    constraints: &Constraints,
    objective: DseObjective,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    select_custom_config(
        model,
        row.feasible_points(constraints),
        constraints,
        objective,
    )
}

/// The flat-plan replay of [`crate::dse::set_config_with_engine`]:
/// re-screens the space for the member set (every member's shell must
/// fit, then the members' custom-latency lower bounds — same screens,
/// same counters), computes each surviving point's member-total area
/// from the table in member order (the recursive sweep's exact
/// early-exit fold), and runs the shared selection fold.
///
/// A surviving point may have been lb-screened in a *member's* row
/// (the member's pivot bound can be tighter than its custom-latency
/// bound); such points are priced lazily here through the engine's
/// memo tiers — the identical [`Engine::evaluate`] call the plan's
/// map would have made, so the fold's inputs are unchanged.
///
/// # Errors
///
/// Same as [`crate::dse::set_config`].
pub fn set_config_from_table(
    name: &str,
    members: &[usize],
    models: &[Model],
    table: &EvalTable,
    constraints: &Constraints,
    custom_latency_s: &BTreeMap<String, f64>,
    engine: &Engine,
) -> Result<DesignConfig, ClaireError> {
    if members.is_empty() {
        return Err(ClaireError::EmptyAlgorithmSet);
    }
    let mut points: Vec<HwParams> = if engine.pruning_enabled() {
        let mut span = engine.telemetry().span("dse.screen", "dse");
        let kept: Vec<HwParams> = table
            .space_points
            .iter()
            .copied()
            .filter(|hw| {
                members.iter().all(|&mi| {
                    engine.monolithic_area(&table.shells[mi].classes, hw)
                        <= constraints.chiplet_area_limit_mm2
                })
            })
            .collect();
        engine.note_dse_pruned((table.space_points.len() - kept.len()) as u64);
        span.arg(
            "pruned",
            ArgValue::Int((table.space_points.len() - kept.len()) as u64),
        );
        span.arg("kept", ArgValue::Int(kept.len() as u64));
        kept
    } else {
        table.space_points.clone()
    };
    // Stage A′: members with a custom latency reference admit an
    // absolute latency bound known before any pricing — the same
    // screen the recursive set sweep applies (see
    // [`crate::dse::set_config_with_engine`]); a dropped point's
    // member fold would have come back `None` anyway.
    if engine.lb_screen_enabled() && constraints.latency_slack.is_finite() && !points.is_empty() {
        let bounds: Vec<(usize, f64)> = members
            .iter()
            .filter_map(|&mi| {
                custom_latency_s
                    .get(models[mi].name())
                    .map(|&l| (mi, l * (1.0 + constraints.latency_slack)))
            })
            .filter(|(_, b)| b.is_finite())
            .collect();
        if !bounds.is_empty() {
            let mut span = engine.telemetry().span("dse.lb_screen", "dse");
            let clock = claire_ppa::tech28::CLOCK_HZ;
            let keep: Vec<bool> = engine.par_map(&points, |_, hw| {
                bounds.iter().all(|&(mi, bound)| {
                    engine.compute_cycles_lb(&models[mi], hw) as f64 / clock <= bound
                })
            });
            let before = points.len();
            let mut i = 0usize;
            points.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            engine.note_dse_lb_pruned((before - points.len()) as u64);
            span.arg("pruned", ArgValue::Int((before - points.len()) as u64));
            span.arg("kept", ArgValue::Int(points.len() as u64));
        }
    }
    if engine.pruning_enabled() {
        engine.note_dse_evaluated(points.len() as u64);
    }
    let totals: Vec<Option<f64>> = points
        .iter()
        .map(|&hw| {
            let mut total_area = 0.0;
            for &mi in members {
                let m = &models[mi];
                let (stored, lb_screened) = table.rows[mi].slot_for(hw)?;
                let report = if lb_screened {
                    // Never priced by the plan (screened under the
                    // member's tighter pivot bound): price it now,
                    // memo-warm — bit-identical to the plan's map.
                    let mut cfg = table.shells[mi].clone();
                    cfg.hw = hw;
                    engine.evaluate(m, &cfg).ok()?
                } else {
                    stored?
                };
                let latency_ok = custom_latency_s
                    .get(m.name())
                    .map(|&l| report.latency_s <= l * (1.0 + constraints.latency_slack))
                    .unwrap_or(true);
                if report.area_mm2 > constraints.chiplet_area_limit_mm2
                    || report.power_density_w_per_mm2() > constraints.power_density_limit_w_per_mm2
                    || !latency_ok
                {
                    return None;
                }
                total_area += report.area_mm2;
            }
            Some(total_area)
        })
        .collect();

    let hw = select_set_hw(name, &points, &totals)?;
    let classes: BTreeSet<OpClass> = members
        .iter()
        .flat_map(|&mi| table.shells[mi].classes.iter().copied())
        .collect();
    Ok(DesignConfig::monolithic(name, hw, classes))
}
