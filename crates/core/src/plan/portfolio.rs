//! Portfolio planning over a hardened chiplet library.
//!
//! The paper argues chiplet libraries amortise NRE across products;
//! this module answers the planning question that follows: *given a
//! product roadmap, which library configurations are worth hardening?*
//! Formulated as weighted set cover — each library entry covers the
//! roadmap algorithms it can implement, at its die-NRE price; anything
//! left uncovered falls back to a custom design at custom-NRE price —
//! and solved with the classic greedy (ln n–approximate, deterministic).

use crate::claire::TrainOutput;
use crate::error::ClaireError;
use crate::metrics::normalized_nre;
use claire_cost::NreModel;
use claire_model::Model;
use serde::Serialize;

/// One roadmap product: a name plus the algorithms it must run.
#[derive(Debug, Clone)]
pub struct Product {
    /// Product name.
    pub name: String,
    /// The algorithms it deploys.
    pub algorithms: Vec<Model>,
}

impl Product {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, algorithms: Vec<Model>) -> Self {
        Product {
            name: name.into(),
            algorithms,
        }
    }
}

/// The outcome of portfolio planning.
#[derive(Debug, Clone, Serialize)]
pub struct PortfolioPlan {
    /// Indices of the library entries worth hardening.
    pub selected: Vec<usize>,
    /// Names of the selected configurations.
    pub selected_names: Vec<String>,
    /// Roadmap algorithms no selected entry covers (custom fallback).
    pub fallbacks: Vec<String>,
    /// Normalised NRE of the selected library entries.
    pub library_nre: f64,
    /// Normalised NRE of the custom fallbacks.
    pub fallback_nre: f64,
    /// Normalised NRE of building *every* roadmap algorithm custom —
    /// the baseline the plan beats.
    pub all_custom_nre: f64,
}

impl PortfolioPlan {
    /// Total plan cost (library + fallbacks), normalised.
    pub fn total_nre(&self) -> f64 {
        self.library_nre + self.fallback_nre
    }

    /// NRE benefit over the all-custom baseline.
    pub fn benefit(&self) -> f64 {
        self.all_custom_nre / self.total_nre().max(f64::MIN_POSITIVE)
    }
}

/// Plans which library configurations to harden for a product roadmap.
///
/// Greedy weighted set cover over the *distinct* roadmap algorithms:
/// repeatedly select the entry with the lowest NRE per newly covered
/// algorithm until no entry adds coverage; remaining algorithms get
/// custom designs (derived with the framework's default options) and
/// their NRE is charged to the plan.
///
/// # Errors
///
/// Propagates custom-DSE failures for fallback algorithms, and
/// [`ClaireError::EmptyAlgorithmSet`] for an empty roadmap.
pub fn plan_portfolio(
    train: &TrainOutput,
    nre: &NreModel,
    products: &[Product],
) -> Result<PortfolioPlan, ClaireError> {
    // Distinct algorithms across the roadmap, by name, in first-seen
    // order.
    let mut algorithms: Vec<&Model> = Vec::new();
    for p in products {
        for m in &p.algorithms {
            if !algorithms.iter().any(|x| x.name() == m.name()) {
                algorithms.push(m);
            }
        }
    }
    if algorithms.is_empty() {
        return Err(ClaireError::EmptyAlgorithmSet);
    }

    // Coverage matrix: entry -> algorithm indices it can implement.
    let coverage: Vec<Vec<usize>> = train
        .libraries
        .iter()
        .map(|l| {
            algorithms
                .iter()
                .enumerate()
                .filter(|(_, m)| l.config.covers(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut uncovered: std::collections::BTreeSet<usize> = (0..algorithms.len()).collect();
    let mut selected = Vec::new();
    let mut library_nre = 0.0;
    while !uncovered.is_empty() {
        // Best ratio: NRE per newly covered algorithm.
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, new, entry)
        for (e, covers) in coverage.iter().enumerate() {
            if selected.contains(&e) {
                continue;
            }
            let new = covers.iter().filter(|i| uncovered.contains(i)).count();
            if new == 0 {
                continue;
            }
            let ratio = train.libraries[e].nre_normalized / new as f64;
            let better = match best {
                None => true,
                Some((r, n, be)) => {
                    ratio < r - 1e-12
                        || ((ratio - r).abs() <= 1e-12 && (new > n || (new == n && e < be)))
                }
            };
            if better {
                best = Some((ratio, new, e));
            }
        }
        let Some((_, _, e)) = best else { break };
        selected.push(e);
        library_nre += train.libraries[e].nre_normalized;
        for i in &coverage[e] {
            uncovered.remove(i);
        }
    }

    // Fallback customs for anything uncovered + the all-custom baseline.
    let claire = crate::Claire::default();
    let mut fallbacks = Vec::new();
    let mut fallback_nre = 0.0;
    let mut all_custom_nre = 0.0;
    for (i, m) in algorithms.iter().enumerate() {
        let custom = claire.custom_for(m)?;
        let cost = normalized_nre(nre, &custom.config, &train.generic);
        all_custom_nre += cost;
        if uncovered.contains(&i) {
            fallbacks.push(m.name().to_owned());
            fallback_nre += cost;
        }
    }

    selected.sort_unstable();
    Ok(PortfolioPlan {
        selected_names: selected
            .iter()
            .map(|&e| train.libraries[e].config.name.clone())
            .collect(),
        selected,
        fallbacks,
        library_nre,
        fallback_nre,
        all_custom_nre,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claire::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
    use claire_model::zoo;
    use std::sync::OnceLock;

    fn train() -> &'static TrainOutput {
        static T: OnceLock<TrainOutput> = OnceLock::new();
        T.get_or_init(|| {
            Claire::new(ClaireOptions {
                subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
                ..ClaireOptions::default()
            })
            .train(&zoo::training_set())
            .expect("train")
        })
    }

    #[test]
    fn transformer_roadmap_needs_one_or_two_entries() {
        let products = [
            Product::new("chat", vec![zoo::bert_base(), zoo::graphormer()]),
            Product::new("vision", vec![zoo::vit_base(), zoo::ast()]),
        ];
        let plan = plan_portfolio(train(), &NreModel::tsmc28(), &products).unwrap();
        assert!(plan.fallbacks.is_empty(), "{:?}", plan.fallbacks);
        assert!(plan.selected.len() <= 2, "{:?}", plan.selected_names);
        assert!(plan.benefit() > 1.0, "benefit {}", plan.benefit());
    }

    #[test]
    fn mixed_roadmap_beats_all_custom() {
        let products = [
            Product::new("edge-cam", vec![zoo::alexnet(), zoo::detr()]),
            Product::new("assistant", vec![zoo::bert_base(), zoo::wav2vec2_base()]),
            Product::new("codegen", vec![zoo::distilgpt2()]),
        ];
        let plan = plan_portfolio(train(), &NreModel::tsmc28(), &products).unwrap();
        assert!(plan.fallbacks.is_empty());
        assert!(plan.total_nre() < plan.all_custom_nre);
    }

    #[test]
    fn uncoverable_algorithms_fall_back_to_custom() {
        let products = [Product::new(
            "silu-cam",
            vec![zoo::efficientnet_b0(), zoo::alexnet()],
        )];
        let plan = plan_portfolio(train(), &NreModel::tsmc28(), &products).unwrap();
        assert_eq!(plan.fallbacks, vec!["EfficientNet-B0".to_owned()]);
        assert!(plan.fallback_nre > 0.0);
        // AlexNet still rides the library.
        assert!(!plan.selected.is_empty());
    }

    #[test]
    fn duplicate_algorithms_counted_once() {
        let products = [
            Product::new("a", vec![zoo::bert_base()]),
            Product::new("b", vec![zoo::bert_base()]),
        ];
        let plan = plan_portfolio(train(), &NreModel::tsmc28(), &products).unwrap();
        assert_eq!(plan.selected.len(), 1);
        let single = plan.all_custom_nre;
        // One BERT custom, not two.
        assert!(single < 0.6, "{single}");
    }

    #[test]
    fn empty_roadmap_is_an_error() {
        let err = plan_portfolio(train(), &NreModel::tsmc28(), &[]).unwrap_err();
        assert_eq!(err, ClaireError::EmptyAlgorithmSet);
    }
}
