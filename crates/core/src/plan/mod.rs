//! Flow planning.
//!
//! Two planners live here:
//!
//! - [`flat`] — the **flat execution plan**: enumerate every
//!   `(model, hw-point)` evaluation a run will need as one item set,
//!   feed the whole set through a single [`crate::Engine::par_map`]
//!   for load balance, and replay the per-model/per-subset selection
//!   logic from the resulting table. Bit-identical to the recursive
//!   per-model flow at any thread count (see MODELING.md, "Flat
//!   execution plan").
//! - [`portfolio`](self) — portfolio planning over a hardened chiplet
//!   library ([`plan_portfolio`]): greedy weighted set cover deciding
//!   which library configurations are worth hardening for a product
//!   roadmap.

pub mod flat;
mod portfolio;

pub use flat::{build_eval_table, EvalTable, ModelRow};
pub use portfolio::{plan_portfolio, PortfolioPlan, Product};
