//! The hardened chiplet library as a persistent artifact.
//!
//! The paper's end state is a *library*: "a set of hardened IPs and
//! chiplet libraries optimized for a broad range of AI applications…
//! improves flexibility, reusability, and efficiency". This module
//! makes that library a file: train once, serialise the synthesized
//! configurations (with their assignment vectors and NRE context), and
//! let downstream users deploy new algorithms against it without
//! re-running training — the Step #TT1 flow as a product.

use crate::claire::{LibraryConfig, TrainOutput};
use crate::config::DesignConfig;
use crate::error::ClaireError;
use crate::evaluate::{evaluate, PpaReport};
use crate::io::ConfigIoError;
use crate::metrics::{algorithm_coverage, chiplet_utilization, normalized_nre};
use claire_cost::NreModel;
use claire_graph::weighted_jaccard;
use claire_model::{Model, OpClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Current on-disk format version.
pub const LIBRARY_FORMAT_VERSION: u32 = 1;

/// One hardened library configuration with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryEntry {
    /// The clustered configuration.
    pub config: DesignConfig,
    /// Training algorithms the configuration was synthesized for.
    pub trained_on: Vec<String>,
    /// Assignment vector (scaled node weights) as a list — JSON maps
    /// need string keys.
    pub vector: Vec<(OpClass, f64)>,
    /// Normalised NRE of the configuration (vs the stored generic).
    pub nre_normalized: f64,
}

/// A persistable chiplet library: everything a downstream team needs
/// to deploy new algorithms onto already-hardened silicon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipletLibrary {
    /// On-disk format version (see [`LIBRARY_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Library name.
    pub name: String,
    /// The synthesized configurations.
    pub entries: Vec<LibraryEntry>,
    /// The generic reference configuration (NRE normalisation basis).
    pub generic: DesignConfig,
    /// The NRE calibration the normalisations used.
    pub nre: NreModel,
}

/// The result of deploying an algorithm against a stored library.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Index of the chosen entry.
    pub entry: usize,
    /// Name of the chosen configuration.
    pub config_name: String,
    /// Weighted-Jaccard similarity to the chosen entry.
    pub similarity: f64,
    /// Coverage (must be 1.0 — entries that cannot cover are skipped).
    pub coverage: f64,
    /// Chiplet utilization on the chosen configuration.
    pub utilization: f64,
    /// PPA of the algorithm on the configuration.
    pub ppa: PpaReport,
    /// NRE a fresh custom design would have cost (normalised to the
    /// library's generic) — the saving, since deployment onto hardened
    /// silicon costs zero new die NRE.
    pub custom_nre_avoided: Option<f64>,
}

impl ChipletLibrary {
    /// Packages a training run into a persistable library.
    pub fn from_training(name: impl Into<String>, train: &TrainOutput, nre: NreModel) -> Self {
        let entry = |l: &LibraryConfig| LibraryEntry {
            config: l.config.clone(),
            trained_on: l.member_names.clone(),
            vector: l.vector.iter().map(|(k, v)| (*k, *v)).collect(),
            nre_normalized: l.nre_normalized,
        };
        ChipletLibrary {
            format_version: LIBRARY_FORMAT_VERSION,
            name: name.into(),
            entries: train.libraries.iter().map(entry).collect(),
            generic: train.generic.clone(),
            nre,
        }
    }

    /// Saves the library as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// I/O or serialisation failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ConfigIoError> {
        let text = serde_json::to_string_pretty(self)?;
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Loads and validates a library file.
    ///
    /// # Errors
    ///
    /// I/O or parse failure, or an unsupported `format_version`, or an
    /// empty entry list.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ConfigIoError> {
        let text = std::fs::read_to_string(path)?;
        let lib: ChipletLibrary = serde_json::from_str(&text)?;
        if lib.format_version != LIBRARY_FORMAT_VERSION {
            return Err(ConfigIoError::Invalid(format!(
                "unsupported library format version {} (expected {LIBRARY_FORMAT_VERSION})",
                lib.format_version
            )));
        }
        if lib.entries.is_empty() {
            return Err(ConfigIoError::Invalid("library has no entries".into()));
        }
        Ok(lib)
    }

    /// Deploys `model` onto the most similar *covering* entry — the
    /// Step #TT1 assignment against a stored library, with no
    /// retraining.
    ///
    /// `model_vector_scale` must match the scale the library's vectors
    /// were built with (log-compressed by default in [`crate::Claire`]).
    ///
    /// # Errors
    ///
    /// [`ClaireError::IncompleteCoverage`] when no entry covers the
    /// algorithm (the composability-gap case — the library needs
    /// re-synthesis with such architectures in its training set).
    pub fn deploy(
        &self,
        model: &Model,
        scale: crate::assign::WeightScale,
    ) -> Result<Deployment, ClaireError> {
        let mv = crate::assign::scaled_vector(model, scale);
        let mut ranked: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let v: BTreeMap<OpClass, f64> = e.vector.iter().copied().collect();
                (i, weighted_jaccard(&mv, &v))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

        let Some(&(idx, similarity)) = ranked
            .iter()
            .find(|&&(i, _)| self.entries[i].config.covers(model))
        else {
            let missing = self
                .entries
                .first()
                .and_then(|e| e.config.first_missing(model))
                .map(|c| c.label())
                .unwrap_or_else(|| "?".into());
            return Err(ClaireError::IncompleteCoverage {
                algorithm: model.name().to_owned(),
                config: format!("library `{}`", self.name),
                missing,
            });
        };

        let config = &self.entries[idx].config;
        let ppa = evaluate(model, config)?;
        // What a fresh custom design would have cost (if one exists
        // under default constraints) — the avoided NRE.
        let custom_nre_avoided = crate::Claire::default()
            .custom_for(model)
            .ok()
            .map(|c| normalized_nre(&self.nre, &c.config, &self.generic));
        Ok(Deployment {
            entry: idx,
            config_name: config.name.clone(),
            similarity,
            coverage: algorithm_coverage(model, config),
            utilization: chiplet_utilization(model, config),
            ppa,
            custom_nre_avoided,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::WeightScale;
    use crate::claire::{paper_table3_subsets, Claire, ClaireOptions, SubsetStrategy};
    use claire_model::zoo;
    use std::sync::OnceLock;

    fn library() -> &'static ChipletLibrary {
        static LIB: OnceLock<ChipletLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let claire = Claire::new(ClaireOptions {
                subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
                ..ClaireOptions::default()
            });
            let train = claire.train(&zoo::training_set()).expect("train");
            ChipletLibrary::from_training("claire-v1", &train, NreModel::tsmc28())
        })
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("claire-lib-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_through_disk() {
        let lib = library();
        let path = tmp("roundtrip.json");
        lib.save(&path).unwrap();
        let back = ChipletLibrary::load(&path).unwrap();
        assert_eq!(*lib, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deploys_bert_with_full_coverage() {
        let lib = library();
        let d = lib.deploy(&zoo::bert_base(), WeightScale::Log).unwrap();
        assert_eq!(d.coverage, 1.0);
        assert!(d.utilization > 0.0);
        assert!(d.ppa.latency_s > 0.0);
        assert!(d.custom_nre_avoided.expect("custom exists") > 0.0);
    }

    #[test]
    fn composability_gap_is_an_error() {
        let lib = library();
        let err = lib
            .deploy(&zoo::efficientnet_b0(), WeightScale::Log)
            .unwrap_err();
        assert!(matches!(err, ClaireError::IncompleteCoverage { .. }));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut lib = library().clone();
        lib.format_version = 99;
        let path = tmp("badver.json");
        lib.save(&path).unwrap();
        let err = ChipletLibrary::load(&path).unwrap_err();
        assert!(err.to_string().contains("format version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_library_rejected() {
        let mut lib = library().clone();
        lib.entries.clear();
        let path = tmp("empty.json");
        lib.save(&path).unwrap();
        assert!(ChipletLibrary::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deployment_matches_live_test_phase() {
        // Deploying from the stored artifact must agree with running
        // evaluate_test live.
        let lib = library();
        let claire = Claire::new(ClaireOptions {
            subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
            ..ClaireOptions::default()
        });
        let train = claire.train(&zoo::training_set()).expect("train");
        let live = claire
            .evaluate_test(&train, &[zoo::vit_base()])
            .expect("test");
        let stored = lib.deploy(&zoo::vit_base(), WeightScale::Log).unwrap();
        assert_eq!(
            Some(stored.entry),
            live.reports[0].assigned_library,
            "artifact and live assignment diverge"
        );
        assert_eq!(stored.utilization, live.reports[0].utilization_library);
    }
}
