//! Steps #TR2/#TT3: design space exploration (the paper's
//! Algorithm 1).
//!
//! "The goal of DSE is to find the most compact configuration for all
//! design setups": sweep every configuration in scope, evaluate PPA,
//! apply the constraints, and keep the lowest-area survivor.

use crate::config::{Constraints, DesignConfig};
use crate::error::ClaireError;
use crate::evaluate::PpaReport;
use crate::parallel::Engine;
use crate::search::{search_with_engine, ParetoFront, SearchPolicy};
use crate::telemetry::{ArgValue, Metric, Telemetry};
use claire_model::{Model, OpClass};
use claire_ppa::{DesignSpace, DseSpace, HwParams};
use std::collections::{BTreeMap, BTreeSet};

/// One evaluated DSE point.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// The hardware parameters of this point.
    pub hw: HwParams,
    /// PPA of the subject algorithm on the monolithic configuration.
    pub report: PpaReport,
}

/// The DSE selection objective.
///
/// The paper minimises area ("the configuration with the lowest area
/// that satisfies the performance constraints"); the alternatives
/// exist for the objective ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DseObjective {
    /// Lowest silicon area (the paper's Algorithm 1).
    #[default]
    MinArea,
    /// Lowest latency.
    MinLatency,
    /// Lowest energy–delay product.
    MinEnergyDelayProduct,
}

impl DseObjective {
    /// Every objective, in declaration order — the axes of the
    /// three-objective Pareto front ([`crate::search::ParetoFront`]).
    pub const ALL: [DseObjective; 3] = [
        DseObjective::MinArea,
        DseObjective::MinLatency,
        DseObjective::MinEnergyDelayProduct,
    ];

    /// The scalar this objective minimises.
    pub fn score(self, report: &PpaReport) -> f64 {
        match self {
            DseObjective::MinArea => report.area_mm2,
            DseObjective::MinLatency => report.latency_s,
            DseObjective::MinEnergyDelayProduct => report.energy_j * report.latency_s,
        }
    }
}

/// How the pipeline responds when a DSE subject has no feasible
/// configuration under the given constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum RobustnessPolicy {
    /// Surface the typed error immediately (the historical behaviour,
    /// and the default).
    #[default]
    FailFast,
    /// Walk the constraint-relaxation ladder — latency slack, then
    /// power density, then chiplet area — and return the first rung's
    /// solution, flagged with the [`Degradation`] that was required.
    Degrade,
}

/// One relaxed constraint on the degradation ladder, in relax order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RelaxStep {
    /// The latency-slack bound against the custom reference was lifted.
    LatencySlack,
    /// The power-density ceiling was lifted.
    PowerDensity,
    /// The per-chiplet area cap was lifted.
    ChipletArea,
}

impl std::fmt::Display for RelaxStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RelaxStep::LatencySlack => "latency slack",
            RelaxStep::PowerDensity => "power density",
            RelaxStep::ChipletArea => "chiplet area",
        })
    }
}

/// The record attached to a result that only exists because
/// constraints were relaxed: which rungs of the ladder were taken.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Degradation {
    /// The constraints that had to be lifted, in relax order.
    pub steps: Vec<RelaxStep>,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degraded: relaxed ")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The constraint-relaxation ladder for `base`: rung 0 is `base`
/// unchanged; each later rung additionally lifts the next constraint
/// in the documented relax order — latency slack first (a slower but
/// physically buildable design), then power density (throttleable in
/// deployment), then chiplet area last (lifting it abandons the
/// composability premise, so it is the final resort). Lifted bounds
/// are internal sentinels (`f64::INFINITY` / `f64::MAX`) that never
/// appear in any report — they only widen the feasibility filter.
pub fn relaxation_ladder(base: &Constraints) -> Vec<(Vec<RelaxStep>, Constraints)> {
    let mut rungs = Vec::with_capacity(4);
    rungs.push((Vec::new(), *base));
    let mut relaxed = *base;
    let mut steps = Vec::new();
    relaxed.latency_slack = f64::INFINITY;
    steps.push(RelaxStep::LatencySlack);
    rungs.push((steps.clone(), relaxed));
    relaxed.power_density_limit_w_per_mm2 = f64::INFINITY;
    steps.push(RelaxStep::PowerDensity);
    rungs.push((steps.clone(), relaxed));
    relaxed.chiplet_area_limit_mm2 = f64::MAX;
    steps.push(RelaxStep::ChipletArea);
    rungs.push((steps, relaxed));
    rungs
}

/// True when retrying `e` under relaxed constraints could succeed —
/// the feasibility errors. Coverage gaps, contained panics, corrupt
/// numerics and invalid inputs are not constraint problems and must
/// not be retried.
fn relaxation_can_help(e: &ClaireError) -> bool {
    matches!(
        e,
        ClaireError::NoFeasibleConfiguration { .. } | ClaireError::ChipletAreaUnsatisfiable { .. }
    )
}

/// Runs `attempt` under `policy`: fail-fast runs it once with `base`;
/// degrade walks the [`relaxation_ladder`] until a rung succeeds,
/// returning the winning value and the [`Degradation`] taken (`None`
/// on rung 0, i.e. no relaxation was needed). Errors that relaxation
/// cannot fix propagate immediately from any rung.
///
/// # Errors
///
/// The last rung's feasibility error when even fully lifted
/// constraints admit no solution, or the first non-feasibility error
/// any rung surfaces.
pub fn with_relaxation<T>(
    policy: RobustnessPolicy,
    base: &Constraints,
    attempt: impl FnMut(&Constraints) -> Result<T, ClaireError>,
) -> Result<(T, Option<Degradation>), ClaireError> {
    with_relaxation_observed(policy, base, None, "", attempt)
}

/// [`with_relaxation`] that reports ladder activity to `telemetry`
/// (when given): every winning rung lands in the `degrade.rungs`
/// histogram, each relaxed retry counts a `degrade.attempts`, a
/// relaxed success counts a `degrade.successes` and — when tracing —
/// emits a `degrade.success` instant event carrying `subject` and the
/// rung index, so `--degrade` runs leave an auditable trail.
/// Observation never changes the returned value.
///
/// # Errors
///
/// Same as [`with_relaxation`].
pub fn with_relaxation_observed<T>(
    policy: RobustnessPolicy,
    base: &Constraints,
    telemetry: Option<&Telemetry>,
    subject: &str,
    mut attempt: impl FnMut(&Constraints) -> Result<T, ClaireError>,
) -> Result<(T, Option<Degradation>), ClaireError> {
    match policy {
        RobustnessPolicy::FailFast => {
            let v = attempt(base)?;
            if let Some(t) = telemetry {
                t.record_degrade_rung(0);
            }
            Ok((v, None))
        }
        RobustnessPolicy::Degrade => {
            let mut last: Option<ClaireError> = None;
            for (rung_index, (steps, rung)) in relaxation_ladder(base).into_iter().enumerate() {
                if rung_index > 0 {
                    if let Some(t) = telemetry {
                        t.count(Metric::DegradeAttempts);
                    }
                }
                match attempt(&rung) {
                    Ok(v) => {
                        if let Some(t) = telemetry {
                            t.record_degrade_rung(rung_index as u64);
                            if rung_index > 0 {
                                t.count(Metric::DegradeSuccesses);
                                if t.tracing_enabled() {
                                    t.instant(
                                        "degrade.success",
                                        "degrade",
                                        vec![
                                            ("subject", ArgValue::Text(subject.to_owned())),
                                            ("rung", ArgValue::Int(rung_index as u64)),
                                        ],
                                    );
                                }
                            }
                        }
                        let degradation = (!steps.is_empty()).then_some(Degradation { steps });
                        return Ok((v, degradation));
                    }
                    Err(e) if relaxation_can_help(&e) => last = Some(e),
                    Err(e) => return Err(e),
                }
            }
            Err(last.unwrap_or(ClaireError::NoFeasibleConfiguration {
                subject: "relaxation ladder".to_owned(),
            }))
        }
    }
}

/// The hw-independent module-class inventory of a model's monolithic
/// DSE shell.
fn monolithic_classes(model: &Model) -> BTreeSet<OpClass> {
    model.op_class_counts().keys().copied().collect()
}

/// The hw axes never affect a shell's name or class inventory, so the
/// sweeps build one shell per model under this placeholder point and
/// clone-with-hw per space point — the `format!` and class-set
/// derivation run once, outside the hot loop.
pub(crate) const SHELL_HW: HwParams = HwParams {
    sa_size: 1,
    n_sa: 1,
    n_act: 1,
    n_pool: 1,
};

pub(crate) fn monolithic_for(model: &Model, hw: HwParams) -> DesignConfig {
    DesignConfig::monolithic(
        format!("dse:{}", model.name()),
        hw,
        monolithic_classes(model),
    )
}

/// Sweeps the space for one algorithm, keeping points that satisfy the
/// area and power-density constraints (Algorithm 1 lines 2–6; the
/// latency constraint needs the custom reference and is applied by the
/// callers).
pub fn sweep(model: &Model, space: &DseSpace, constraints: &Constraints) -> Vec<DsePoint> {
    sweep_with_engine(model, space, constraints, &Engine::serial())
}

/// [`sweep`] on an explicit [`Engine`]: the exhaustive-policy
/// three-stage search ([`crate::search::search_with_engine`]),
/// returning the exactly priced survivors in space iteration order,
/// identical selections to the serial exhaustive sweep at any thread
/// count.
///
/// **Stage A** prices every point's monolithic area from the engine's
/// memoized per-op-class tables — no per-layer work — and (when
/// [`Engine::pruning_enabled`]) drops points already over
/// `chiplet_area_limit_mm2`; this screen is bit-exact against the
/// evaluated `area_mm2`, so it only removes points the feasibility
/// check would reject. **Stage A′** additionally drops points whose
/// compute-only latency lower bound already exceeds the
/// latency-slack window around an exactly priced pivot (see the
/// [`crate::search`] soundness argument) — such points can never be
/// selected under any objective, though they may be *feasible*, so
/// the returned list can be a strict subset of the unscreened
/// feasible set. **Stage B** runs the full timing/energy evaluation
/// on the survivors only. Every downstream selection
/// ([`custom_config_with_engine`], [`set_config_with_engine`], the
/// flat-plan replay) is bit-identical to the exhaustive oracle
/// (`engine.with_pruning(false)`).
pub fn sweep_with_engine(
    model: &Model,
    space: &DseSpace,
    constraints: &Constraints,
    engine: &Engine,
) -> Vec<DsePoint> {
    search_with_engine(model, space, constraints, SearchPolicy::Exhaustive, engine).points
}

/// Algorithm 1, lines 1–8: the custom design configuration `C_i` for
/// one algorithm — the lowest-area configuration whose latency stays
/// within `1 + latency_slack` of the best latency any feasible
/// configuration achieves (the "custom design solution" reference).
///
/// # Errors
///
/// [`ClaireError::NoFeasibleConfiguration`] when no point satisfies
/// the area/power-density constraints.
pub fn custom_config(
    model: &Model,
    space: &DseSpace,
    constraints: &Constraints,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    custom_config_with(model, space, constraints, DseObjective::MinArea)
}

/// [`custom_config`] under an explicit selection objective.
///
/// # Errors
///
/// Same as [`custom_config`].
pub fn custom_config_with(
    model: &Model,
    space: &DseSpace,
    constraints: &Constraints,
    objective: DseObjective,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    custom_config_with_engine(model, space, constraints, objective, &Engine::serial())
}

/// [`custom_config_with`] on an explicit [`Engine`] (parallel sweep,
/// memoized layer costs, thread-count-independent selection).
///
/// # Errors
///
/// Same as [`custom_config`].
pub fn custom_config_with_engine(
    model: &Model,
    space: &DseSpace,
    constraints: &Constraints,
    objective: DseObjective,
    engine: &Engine,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    custom_config_searched(
        model,
        space,
        constraints,
        objective,
        SearchPolicy::Exhaustive,
        engine,
    )
}

/// [`custom_config_with_engine`] over any [`DesignSpace`] and
/// [`SearchPolicy`]: one search builds the Pareto front, selection
/// replays from the front. Under [`SearchPolicy::Exhaustive`] the
/// result is bit-identical to the classic sweep-then-select path;
/// sampled policies trade that oracle guarantee for a reproducible
/// (seeded) trajectory over spaces exhaustive pricing can't touch.
///
/// # Errors
///
/// Same as [`custom_config`].
pub fn custom_config_searched(
    model: &Model,
    space: &dyn DesignSpace,
    constraints: &Constraints,
    objective: DseObjective,
    policy: SearchPolicy,
    engine: &Engine,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    let outcome = search_with_engine(model, space, constraints, policy, engine);
    select_from_front(model, &outcome.front, constraints, objective)
}

/// The selection tail of [`custom_config_with_engine`]: folds the
/// feasible points into a [`ParetoFront`] (space order) and selects
/// from it. Shared with the flat-plan replay
/// ([`crate::plan::flat`]), which feeds it the feasible point list
/// from the pre-computed evaluation table — the fold order and
/// comparisons are this one code path (and front-based selection is
/// provably bit-identical to the historical full-list fold, see
/// [`ParetoFront::select`]), so both flows select the same point bit
/// for bit.
///
/// # Errors
///
/// Same as [`custom_config`].
pub(crate) fn select_custom_config(
    model: &Model,
    points: Vec<DsePoint>,
    constraints: &Constraints,
    objective: DseObjective,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    let front = ParetoFront::from_points(&points);
    select_from_front(model, &front, constraints, objective)
}

/// Selection from an already-built [`ParetoFront`]: best-latency
/// fold, latency-slack window (an infinite slack — degradation
/// ladder — admits every point, which `best * inf = inf` does), then
/// the objective minimum under `total_cmp` (which orders exactly like
/// `partial_cmp` here because every surviving report passed the
/// evaluator's finiteness gate), first tie wins.
///
/// # Errors
///
/// Same as [`custom_config`].
pub(crate) fn select_from_front(
    model: &Model,
    front: &ParetoFront,
    constraints: &Constraints,
    objective: DseObjective,
) -> Result<(DesignConfig, PpaReport), ClaireError> {
    let chosen = front.select(constraints, objective).ok_or_else(|| {
        ClaireError::NoFeasibleConfiguration {
            subject: model.name().to_owned(),
        }
    })?;
    let mut cfg = monolithic_for(model, chosen.hw);
    cfg.name = format!("C_{}", model.name());
    Ok((cfg, chosen.report))
}

/// Algorithm 1, lines 9–13 (and 15–17 with a subset): the shared
/// configuration for an algorithm set — the configuration minimising
/// the *summed* DSE area across all member algorithms, subject to each
/// member meeting the constraints, including latency relative to its
/// own custom design (`custom_latency_s`).
///
/// The returned configuration instantiates the union of the members'
/// module classes.
///
/// # Errors
///
/// [`ClaireError::EmptyAlgorithmSet`] for an empty set and
/// [`ClaireError::NoFeasibleConfiguration`] when no configuration
/// satisfies every member's constraints.
pub fn set_config(
    name: &str,
    models: &[&Model],
    space: &DseSpace,
    constraints: &Constraints,
    custom_latency_s: &BTreeMap<String, f64>,
) -> Result<DesignConfig, ClaireError> {
    set_config_with_engine(
        name,
        models,
        space,
        constraints,
        custom_latency_s,
        &Engine::serial(),
    )
}

/// [`set_config`] on an explicit [`Engine`]. Candidate points are
/// scored in parallel; the minimum-total-area selection folds over
/// space iteration order (first strict improvement wins), so ties
/// resolve exactly as in the serial loop.
///
/// # Errors
///
/// Same as [`set_config`].
pub fn set_config_with_engine(
    name: &str,
    models: &[&Model],
    space: &DseSpace,
    constraints: &Constraints,
    custom_latency_s: &BTreeMap<String, f64>,
    engine: &Engine,
) -> Result<DesignConfig, ClaireError> {
    if models.is_empty() {
        return Err(ClaireError::EmptyAlgorithmSet);
    }

    let all: Vec<HwParams> = space.iter().collect();
    // Per-member monolithic shells, built once for the whole sweep and
    // cloned-with-hw per point.
    let shells: Vec<DesignConfig> = models.iter().map(|m| monolithic_for(m, SHELL_HW)).collect();
    // Stage A: a point is worth full evaluation only if every member's
    // model-light monolithic area fits the chiplet cap — the same
    // early-`None` the exhaustive member loop below takes, decided
    // from the memoized area tables alone.
    let mut points: Vec<HwParams> = if engine.pruning_enabled() {
        let mut span = engine.telemetry().span("dse.screen", "dse");
        let kept: Vec<HwParams> = all
            .iter()
            .copied()
            .filter(|hw| {
                shells.iter().all(|s| {
                    engine.monolithic_area(&s.classes, hw) <= constraints.chiplet_area_limit_mm2
                })
            })
            .collect();
        engine.note_dse_pruned((all.len() - kept.len()) as u64);
        span.arg("pruned", ArgValue::Int((all.len() - kept.len()) as u64));
        span.arg("kept", ArgValue::Int(kept.len() as u64));
        kept
    } else {
        all
    };
    // Stage A′: members with a custom latency reference admit an
    // *absolute* latency bound known before any pricing —
    // `l_m × (1 + slack)` — so any point whose compute-only cycle
    // lower bound already exceeds a member's bound would come back
    // `None` from the exhaustive member fold below
    // (`report.latency_s ≥ lb_s > bound` fails `latency_ok`).
    // Dropping it up front leaves the selection input unchanged.
    if engine.lb_screen_enabled() && constraints.latency_slack.is_finite() && !points.is_empty() {
        let bounds: Vec<(usize, f64)> = models
            .iter()
            .enumerate()
            .filter_map(|(i, m)| {
                custom_latency_s
                    .get(m.name())
                    .map(|&l| (i, l * (1.0 + constraints.latency_slack)))
            })
            .filter(|(_, b)| b.is_finite())
            .collect();
        if !bounds.is_empty() {
            let mut span = engine.telemetry().span("dse.lb_screen", "dse");
            let clock = claire_ppa::tech28::CLOCK_HZ;
            let keep: Vec<bool> = engine.par_map(&points, |_, hw| {
                bounds.iter().all(|&(i, bound)| {
                    engine.compute_cycles_lb(models[i], hw) as f64 / clock <= bound
                })
            });
            let before = points.len();
            let mut i = 0usize;
            points.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            engine.note_dse_lb_pruned((before - points.len()) as u64);
            span.arg("pruned", ArgValue::Int((before - points.len()) as u64));
            span.arg("kept", ArgValue::Int(points.len() as u64));
        }
    }
    if engine.pruning_enabled() {
        engine.note_dse_evaluated(points.len() as u64);
    }
    let mut eval_span = engine.telemetry().span("dse.eval", "dse");
    eval_span.arg("points", ArgValue::Int(points.len() as u64));
    let totals: Vec<Option<f64>> = engine.par_map(&points, |_, &hw| {
        let mut total_area = 0.0;
        for (m, shell) in models.iter().zip(&shells) {
            let mut cfg = shell.clone();
            cfg.hw = hw;
            let report = engine.evaluate(m, &cfg).ok()?;
            let latency_ok = custom_latency_s
                .get(m.name())
                .map(|&l| report.latency_s <= l * (1.0 + constraints.latency_slack))
                .unwrap_or(true);
            if report.area_mm2 > constraints.chiplet_area_limit_mm2
                || report.power_density_w_per_mm2() > constraints.power_density_limit_w_per_mm2
                || !latency_ok
            {
                return None;
            }
            total_area += report.area_mm2;
        }
        Some(total_area)
    });
    drop(eval_span);

    let hw = select_set_hw(name, &points, &totals)?;
    let classes: BTreeSet<OpClass> = shells.into_iter().flat_map(|s| s.classes).collect();
    Ok(DesignConfig::monolithic(name, hw, classes))
}

/// The selection fold of [`set_config_with_engine`]: the first strict
/// minimum-total-area point in space iteration order wins, so ties
/// resolve exactly as in the serial loop. Shared with the flat-plan
/// replay ([`crate::plan::flat`]), which computes the same per-point
/// member totals from the pre-computed evaluation table.
///
/// # Errors
///
/// [`ClaireError::NoFeasibleConfiguration`] when every total is
/// `None`.
pub(crate) fn select_set_hw(
    name: &str,
    points: &[HwParams],
    totals: &[Option<f64>],
) -> Result<HwParams, ClaireError> {
    let mut best: Option<(f64, HwParams)> = None;
    for (&hw, total_area) in points.iter().zip(totals) {
        let Some(total_area) = *total_area else {
            continue;
        };
        if best.map(|(a, _)| total_area < a).unwrap_or(true) {
            best = Some((total_area, hw));
        }
    }
    let (_, hw) = best.ok_or_else(|| ClaireError::NoFeasibleConfiguration {
        subject: name.to_owned(),
    })?;
    Ok(hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;

    fn setup() -> (DseSpace, Constraints) {
        (DseSpace::default(), Constraints::default())
    }

    #[test]
    fn sweep_prunes_oversized_configs() {
        let (space, cons) = setup();
        let m = zoo::vgg16();
        let pts = sweep(&m, &space, &cons);
        assert!(!pts.is_empty());
        assert!(pts.len() < space.len(), "nothing pruned");
        for p in &pts {
            assert!(p.report.area_mm2 <= cons.chiplet_area_limit_mm2);
        }
    }

    #[test]
    fn custom_config_is_feasible_and_minimal() {
        let (space, cons) = setup();
        let m = zoo::resnet18();
        let (cfg, report) = custom_config(&m, &space, &cons).unwrap();
        assert!(cfg.covers(&m));
        assert!(report.area_mm2 <= cons.chiplet_area_limit_mm2);
        // Every feasible smaller-area config must violate latency.
        let best_latency = sweep(&m, &space, &cons)
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        for p in sweep(&m, &space, &cons) {
            if p.report.area_mm2 < report.area_mm2 - 1e-9 {
                assert!(
                    p.report.latency_s > best_latency * (1.0 + cons.latency_slack),
                    "{} smaller but feasible",
                    p.hw
                );
            }
        }
    }

    #[test]
    fn custom_config_name_embeds_algorithm() {
        let (space, cons) = setup();
        let (cfg, _) = custom_config(&zoo::alexnet(), &space, &cons).unwrap();
        assert_eq!(cfg.name, "C_Alexnet");
    }

    #[test]
    fn set_config_unions_classes() {
        let (space, cons) = setup();
        let models = [zoo::resnet18(), zoo::bert_base()];
        let refs: BTreeMap<String, f64> = models
            .iter()
            .map(|m| {
                let (_, r) = custom_config(m, &space, &cons).unwrap();
                (m.name().to_owned(), r.latency_s)
            })
            .collect();
        let refs_list: Vec<&Model> = models.iter().collect();
        let cfg = set_config("C_g", &refs_list, &space, &cons, &refs).unwrap();
        for m in &models {
            assert!(cfg.covers(m), "{} not covered", m.name());
        }
        assert!(cfg.classes.contains(&OpClass::Conv2d));
        assert!(cfg.classes.contains(&OpClass::Linear));
    }

    #[test]
    fn empty_set_is_error() {
        let (space, cons) = setup();
        let err = set_config("C_g", &[], &space, &cons, &BTreeMap::new()).unwrap_err();
        assert_eq!(err, ClaireError::EmptyAlgorithmSet);
    }

    #[test]
    fn objectives_order_as_expected() {
        let (space, cons) = setup();
        let m = zoo::vgg16();
        let (_, area_r) = custom_config_with(&m, &space, &cons, DseObjective::MinArea).unwrap();
        let (_, lat_r) = custom_config_with(&m, &space, &cons, DseObjective::MinLatency).unwrap();
        let (_, edp_r) =
            custom_config_with(&m, &space, &cons, DseObjective::MinEnergyDelayProduct).unwrap();
        assert!(area_r.area_mm2 <= lat_r.area_mm2);
        assert!(lat_r.latency_s <= area_r.latency_s);
        assert!(edp_r.energy_j * edp_r.latency_s <= area_r.energy_j * area_r.latency_s + 1e-18);
    }

    #[test]
    fn staged_sweep_matches_exhaustive_bit_for_bit() {
        let (space, cons) = setup();
        let m = zoo::vgg16();
        let staged_engine = Engine::serial();
        let staged = sweep_with_engine(&m, &space, &cons, &staged_engine);
        let exhaustive =
            sweep_with_engine(&m, &space, &cons, &Engine::serial().with_pruning(false));
        // The lb screen may drop feasible-but-never-selectable points,
        // so the staged list is an order-preserving subset…
        let exhaustive_dbg: Vec<String> = exhaustive.iter().map(|p| format!("{p:?}")).collect();
        let mut cursor = 0usize;
        for p in &staged {
            let needle = format!("{p:?}");
            let pos = exhaustive_dbg[cursor..]
                .iter()
                .position(|e| *e == needle)
                .expect("staged point missing from exhaustive sweep");
            cursor += pos + 1;
        }
        // …whose removals all sit outside the latency-slack window,
        // so every objective's selection replays bit-identically.
        let best_latency = exhaustive
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        let limit = best_latency * (1.0 + cons.latency_slack);
        let staged_set: std::collections::BTreeSet<String> =
            staged.iter().map(|p| format!("{p:?}")).collect();
        for p in &exhaustive {
            if !staged_set.contains(&format!("{p:?}")) {
                assert!(
                    p.report.latency_s > limit,
                    "{} pruned but inside the latency window",
                    p.hw
                );
            }
        }
        for objective in DseObjective::ALL {
            let a = select_custom_config(&m, staged.clone(), &cons, objective).unwrap();
            let b = select_custom_config(&m, exhaustive.clone(), &cons, objective).unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{objective:?}");
        }
        let stats = staged_engine.stats();
        assert!(stats.dse_pruned > 0, "default space has oversized points");
        assert_eq!(
            stats.dse_pruned + stats.dse_lb_pruned + stats.dse_evaluated,
            space.len() as u64,
            "every point is screened exactly once"
        );
    }

    #[test]
    fn exhaustive_engine_screens_nothing() {
        let (space, cons) = setup();
        let engine = Engine::serial().with_pruning(false);
        assert!(!engine.pruning_enabled());
        sweep_with_engine(&zoo::vgg16(), &space, &cons, &engine);
        let stats = engine.stats();
        assert_eq!(stats.dse_pruned, 0);
        assert_eq!(stats.dse_evaluated, 0);
        assert_eq!(stats.pruned_fraction(), 0.0);
    }

    #[test]
    fn staged_set_config_matches_exhaustive() {
        let (space, cons) = setup();
        let models = [zoo::resnet18(), zoo::bert_base()];
        let refs: BTreeMap<String, f64> = models
            .iter()
            .map(|m| {
                let (_, r) = custom_config(m, &space, &cons).unwrap();
                (m.name().to_owned(), r.latency_s)
            })
            .collect();
        let refs_list: Vec<&Model> = models.iter().collect();
        let staged =
            set_config_with_engine("C_g", &refs_list, &space, &cons, &refs, &Engine::serial())
                .unwrap();
        let exhaustive = set_config_with_engine(
            "C_g",
            &refs_list,
            &space,
            &cons,
            &refs,
            &Engine::serial().with_pruning(false),
        )
        .unwrap();
        assert_eq!(format!("{staged:?}"), format!("{exhaustive:?}"));
    }

    #[test]
    fn impossible_constraints_are_reported() {
        let space = DseSpace::default();
        let cons = Constraints {
            chiplet_area_limit_mm2: 0.5, // nothing fits
            ..Constraints::default()
        };
        let err = custom_config(&zoo::alexnet(), &space, &cons).unwrap_err();
        assert!(matches!(err, ClaireError::NoFeasibleConfiguration { .. }));
    }

    #[test]
    fn ladder_relaxes_in_documented_order() {
        let rungs = relaxation_ladder(&Constraints::default());
        assert_eq!(rungs.len(), 4);
        assert!(rungs[0].0.is_empty());
        assert_eq!(rungs[1].0, vec![RelaxStep::LatencySlack]);
        assert_eq!(
            rungs[2].0,
            vec![RelaxStep::LatencySlack, RelaxStep::PowerDensity]
        );
        assert_eq!(
            rungs[3].0,
            vec![
                RelaxStep::LatencySlack,
                RelaxStep::PowerDensity,
                RelaxStep::ChipletArea
            ]
        );
        assert!(rungs[3].1.chiplet_area_limit_mm2 > 1e300);
        assert!(rungs[2].1.power_density_limit_w_per_mm2.is_infinite());
        assert!(rungs[1].1.latency_slack.is_infinite());
    }

    #[test]
    fn with_relaxation_flags_only_relaxed_successes() {
        let cons = Constraints::default();
        // Succeeds on rung 0: no degradation.
        let (v, d) = with_relaxation(RobustnessPolicy::Degrade, &cons, |_| {
            Ok::<_, ClaireError>(1)
        })
        .unwrap();
        assert_eq!((v, d), (1, None));
        // Needs the power-density rung: two steps flagged.
        let (_, d) = with_relaxation(RobustnessPolicy::Degrade, &cons, |c| {
            if c.power_density_limit_w_per_mm2.is_infinite() {
                Ok(2)
            } else {
                Err(ClaireError::NoFeasibleConfiguration {
                    subject: "t".into(),
                })
            }
        })
        .unwrap();
        let d = d.unwrap();
        assert_eq!(
            d.steps,
            vec![RelaxStep::LatencySlack, RelaxStep::PowerDensity]
        );
        assert!(d.to_string().contains("power density"));
        // Fail-fast never retries.
        let err = with_relaxation(RobustnessPolicy::FailFast, &cons, |_| {
            Err::<(), _>(ClaireError::NoFeasibleConfiguration {
                subject: "t".into(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, ClaireError::NoFeasibleConfiguration { .. }));
        // Non-feasibility errors propagate from any rung unchanged.
        let err = with_relaxation(RobustnessPolicy::Degrade, &cons, |_| {
            Err::<(), _>(ClaireError::EmptyAlgorithmSet)
        })
        .unwrap_err();
        assert_eq!(err, ClaireError::EmptyAlgorithmSet);
    }

    #[test]
    fn degrade_mode_rescues_impossible_area() {
        let space = DseSpace::default();
        let cons = Constraints {
            chiplet_area_limit_mm2: 0.5, // nothing fits
            ..Constraints::default()
        };
        let m = zoo::alexnet();
        let ((_, report), degradation) = with_relaxation(RobustnessPolicy::Degrade, &cons, |c| {
            custom_config(&m, &space, c)
        })
        .unwrap();
        let degradation = degradation.expect("area rescue requires relaxation");
        assert!(degradation.steps.contains(&RelaxStep::ChipletArea));
        assert!(report.latency_s.is_finite() && report.area_mm2.is_finite());
    }
}
