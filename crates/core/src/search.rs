//! Scalable DSE search: lower-bound screening, Pareto-front
//! maintenance and seeded successive halving over generative spaces.
//!
//! [`search_with_engine`] generalises the staged sweep
//! ([`crate::dse::sweep_with_engine`]) from "screen on area, price the
//! rest" to a three-stage search that handles [`DesignSpace`]s of
//! 10⁶+ points without materializing the cross-product:
//!
//! * **Stage A — area screen.** Streams the space (never collecting
//!   `HwParams` for pruned slots) and keeps points whose model-light
//!   monolithic area fits the chiplet cap. Bit-identical to a full
//!   evaluation's `area_mm2` (see
//!   [`crate::config::monolithic_area_mm2`]), so only provably
//!   infeasible points are dropped.
//! * **Stage A′ — latency lower-bound screen.** Computes each
//!   survivor's compute-only cycle count
//!   ([`Engine::latency_lower_bound`]: latency at infinite
//!   interconnect bandwidth, an *exact* lower bound on the evaluated
//!   `latency_s`), exactly prices one **pivot** — the first survivor
//!   in space order with minimal bound — and, when the pivot is
//!   feasible, drops every survivor whose lower bound already exceeds
//!   `pivot_latency × (1 + latency_slack)`. Soundness: the best
//!   feasible latency `L*` satisfies `L* ≤ pivot_latency`, so a
//!   dropped point's true latency exceeds
//!   `pivot_latency·(1+s) ≥ L*·(1+s)` — the selection window — and
//!   (having strictly worse latency than the pivot) can neither win
//!   any objective inside the window nor move `L*` itself. Survivors
//!   are priced exactly, so selections stay bit-identical to the
//!   exhaustive oracle. An infinite slack (relaxation-ladder rungs)
//!   or an infeasible pivot widens the bound to ∞ — no pruning.
//! * **Stage B — exact pricing + Pareto front.** Evaluates the
//!   remaining candidates through [`Engine::par_map`] and folds the
//!   feasible points into a [`ParetoFront`] in space order, so one
//!   sweep answers the selection query of *every* [`DseObjective`]
//!   without re-pricing.
//!
//! Under [`SearchPolicy::SuccessiveHalving`] stage B is *sampled*:
//! rungs of lower-bound ranking (each through `par_map`) shrink the
//! candidate set by `η` per rung down to `budget` points, which alone
//! are priced exactly. The rung trajectory is a pure function of
//! `(space, seed)` — reproducible across threads and cache states —
//! and `budget ≥ |candidates|` degenerates to the exhaustive path
//! exactly. Sampled selections are a documented heuristic; the
//! exhaustive policy remains the oracle.

use crate::config::{monolithic_area_mm2, Constraints};
use crate::dse::{monolithic_for, DseObjective, DsePoint, SHELL_HW};
use crate::parallel::Engine;
use crate::telemetry::ArgValue;
use claire_model::Model;
use claire_ppa::{space_points, DesignSpace, HwParams};
use std::cell::RefCell;

/// How the search walks the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SearchPolicy {
    /// Price every screened point exactly — the oracle path, and the
    /// default. Selections are provably bit-identical to the
    /// unscreened exhaustive sweep.
    #[default]
    Exhaustive,
    /// Seeded successive halving: rungs of compute-cycle-lower-bound
    /// ranking shrink the candidate set by `eta` per rung until at
    /// most `budget` points remain, which are priced exactly. A
    /// reproducible heuristic for spaces exhaustive pricing can't
    /// touch; with `budget ≥ |candidates|` it degenerates to
    /// [`SearchPolicy::Exhaustive`] exactly.
    SuccessiveHalving {
        /// Seed decorrelating rank ties between rungs; the whole
        /// trajectory is a pure function of `(space, seed)`.
        seed: u64,
        /// Per-rung shrink factor (clamped to ≥ 2).
        eta: u32,
        /// Maximum number of exactly priced points (clamped to ≥ 1).
        budget: usize,
    },
}

impl SearchPolicy {
    /// True when this policy may skip exact pricing of some screened
    /// candidates (i.e. its selections are heuristic, not oracle).
    pub fn is_sampled(&self) -> bool {
        matches!(self, SearchPolicy::SuccessiveHalving { .. })
    }
}

/// The three-objective Pareto front of a feasible point set, in space
/// iteration order.
///
/// **Dominance** is *strong*: a point is discarded only when another
/// point scores strictly better in **every** [`DseObjective`] (area,
/// latency, energy–delay product). Ties therefore survive, which is
/// what makes front-based selection bit-identical to full-list
/// selection: the first-in-space-order argmin of any objective can
/// never be evicted (eviction would need a strictly better score in
/// that very objective), every evicted point has strictly worse
/// latency than its dominator (so the best-latency fold and the
/// latency-slack window are unchanged), and insertion preserves space
/// order (removals keep relative order; new points append), so
/// `min_by`'s first-tie-wins replays exactly.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    entries: Vec<DsePoint>,
}

/// `a` strictly better than `b` in every objective.
fn dominates(a: &DsePoint, b: &DsePoint) -> bool {
    DseObjective::ALL
        .iter()
        .all(|o| o.score(&a.report) < o.score(&b.report))
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Builds the front by inserting `points` in order (the points
    /// must already be in space iteration order for the deterministic
    /// tie-break guarantees to hold).
    pub fn from_points(points: &[DsePoint]) -> Self {
        let mut front = ParetoFront::new();
        for p in points {
            front.insert(p.clone());
        }
        front
    }

    /// Offers `point` to the front: rejected when an entry strongly
    /// dominates it, otherwise inserted after evicting every entry it
    /// strongly dominates. Returns whether the point was kept.
    pub fn insert(&mut self, point: DsePoint) -> bool {
        if self.entries.iter().any(|e| dominates(e, &point)) {
            return false;
        }
        self.entries.retain(|e| !dominates(&point, e));
        self.entries.push(point);
        true
    }

    /// The non-dominated points, in space iteration order.
    pub fn entries(&self) -> &[DsePoint] {
        &self.entries
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the front holds no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the custom-configuration selection for `objective`
    /// from the front alone: best-latency fold, latency-slack window,
    /// then the objective minimum with first-tie-wins — the identical
    /// fold [`crate::dse::select_custom_config`] performs, and (by
    /// the dominance argument above) the identical winner, bit for
    /// bit, for **any** objective from one sweep.
    pub fn select(&self, constraints: &Constraints, objective: DseObjective) -> Option<&DsePoint> {
        let best_latency = self
            .entries
            .iter()
            .map(|p| p.report.latency_s)
            .fold(f64::INFINITY, f64::min);
        if !best_latency.is_finite() {
            return None;
        }
        let limit = best_latency * (1.0 + constraints.latency_slack);
        self.entries
            .iter()
            .filter(|p| p.report.latency_s <= limit)
            .min_by(|a, b| {
                objective
                    .score(&a.report)
                    .total_cmp(&objective.score(&b.report))
            })
    }
}

/// The result of a [`search_with_engine`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The exactly priced feasible points, in space iteration order.
    /// Under the exhaustive policy this is the staged sweep's survivor
    /// list; under a sampled policy it covers only the final rung.
    pub points: Vec<DsePoint>,
    /// The three-objective Pareto front of `points`, maintained
    /// incrementally during stage B.
    pub front: ParetoFront,
    /// True when a sampled trajectory skipped exact pricing of some
    /// screened candidates (selections heuristic, not oracle).
    pub sampled: bool,
}

/// Above this raw space size the search stops feeding the engine's
/// per-point memo tiers (area tables, lower bounds) and computes both
/// directly — the values are bit-identical, but 10⁶ cache entries
/// would cost far more memory than they could ever save.
const MEMO_POINT_LIMIT: usize = 1 << 17;

thread_local! {
    /// Per-worker scratch for direct (non-memoized) lower-bound
    /// kernels — reused across points, rungs and models so the hot
    /// loop never reallocates.
    static LB_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// SplitMix64 — the same finalizer the fault plan uses for per-site
/// decisions; here it decorrelates equal-lower-bound ranks between
/// rungs so the seed genuinely shapes the trajectory.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-rung tie-break key for a candidate: a pure
/// function of `(seed, rung, space index)` — no thread, cache or
/// iteration-order dependence.
fn rung_tie_break(seed: u64, rung: u64, index: u32) -> u64 {
    splitmix64(seed ^ rung.wrapping_mul(0xA076_1D64_78BD_642F) ^ u64::from(index))
}

/// The three-stage, Pareto-aware, optionally sampled design-space
/// search (see the module docs for the stage and soundness
/// arguments). Generalises [`crate::dse::sweep_with_engine`] to any
/// [`DesignSpace`] and [`SearchPolicy`]; the classic sweep is exactly
/// `search_with_engine(…, SearchPolicy::Exhaustive, …).points`.
pub fn search_with_engine(
    model: &Model,
    space: &dyn DesignSpace,
    constraints: &Constraints,
    policy: SearchPolicy,
    engine: &Engine,
) -> SearchOutcome {
    let shell = monolithic_for(model, SHELL_HW);
    let direct = space.size() > MEMO_POINT_LIMIT;

    // Stage A: stream the space through the area screen; only
    // survivors (index, point) are ever collected.
    let mut candidates: Vec<(u32, HwParams)> = if engine.pruning_enabled() {
        let mut span = engine.telemetry().span("dse.screen", "dse");
        let mut seen: u64 = 0;
        let kept: Vec<(u32, HwParams)> = space_points(space)
            .inspect(|_| seen += 1)
            .filter(|(_, hw)| {
                let area = if direct {
                    monolithic_area_mm2(&shell.classes, hw)
                } else {
                    engine.monolithic_area(&shell.classes, hw)
                };
                area <= constraints.chiplet_area_limit_mm2
            })
            .collect();
        engine.note_dse_pruned(seen - kept.len() as u64);
        span.arg("pruned", ArgValue::Int(seen - kept.len() as u64));
        span.arg("kept", ArgValue::Int(kept.len() as u64));
        kept
    } else {
        space_points(space).collect()
    };

    // The direct lower-bound kernel shares one preprocessed batch and
    // a per-worker scratch buffer across every point and rung. Fetched
    // lazily so small-space searches don't intern the model on
    // cache-off engines.
    let batch = direct.then(|| engine.model_batch(model));
    let lb_cycles = |hw: &HwParams| -> u64 {
        match &batch {
            Some(b) => LB_SCRATCH.with(|s| b.compute_cycles_with(hw, &mut s.borrow_mut())),
            None => engine.compute_cycles_lb(model, hw),
        }
    };
    let evaluate = |hw: HwParams| -> Option<DsePoint> {
        let mut cfg = shell.clone();
        cfg.hw = hw;
        let report = engine.evaluate(model, &cfg).ok()?;
        let feasible = report.area_mm2 <= constraints.chiplet_area_limit_mm2
            && report.power_density_w_per_mm2() <= constraints.power_density_limit_w_per_mm2;
        feasible.then_some(DsePoint { hw, report })
    };

    // Stage A′: the latency lower-bound screen. Gated off under fault
    // plans (corrupted costs break the bound's soundness) and skipped
    // outright when the slack is infinite — the bound would be ∞.
    if engine.lb_screen_enabled() && constraints.latency_slack.is_finite() && !candidates.is_empty()
    {
        let mut span = engine.telemetry().span("dse.lb_screen", "dse");
        let lbs: Vec<u64> = engine.par_map(&candidates, |_, (_, hw)| lb_cycles(hw));
        // Pivot: first candidate in space order with minimal bound
        // (u64 compare — exact, order-deterministic).
        let mut pivot = 0usize;
        for (i, &lb) in lbs.iter().enumerate() {
            if lb < lbs[pivot] {
                pivot = i;
            }
        }
        let bound_s = match evaluate(candidates[pivot].1) {
            Some(p) => p.report.latency_s * (1.0 + constraints.latency_slack),
            // Infeasible / failed pivot: no sound bound — keep all.
            None => f64::INFINITY,
        };
        span.arg("pivot", ArgValue::Text(candidates[pivot].1.to_string()));
        if bound_s.is_finite() {
            let clock = claire_ppa::tech28::CLOCK_HZ;
            let before = candidates.len();
            let mut i = 0usize;
            // In-place retain keyed by the parallel `lbs` vector; the
            // pivot's own bound never exceeds its latency, so the
            // pivot always survives.
            candidates.retain(|_| {
                let keep = lbs[i] as f64 / clock <= bound_s;
                i += 1;
                keep
            });
            engine.note_dse_lb_pruned((before - candidates.len()) as u64);
            span.arg("pruned", ArgValue::Int((before - candidates.len()) as u64));
            span.arg("kept", ArgValue::Int(candidates.len() as u64));
        }
    }

    // Sampled stage B: successive-halving rungs shrink the candidate
    // set on the lower-bound rank before any exact pricing.
    let mut sampled = false;
    if let SearchPolicy::SuccessiveHalving { seed, eta, budget } = policy {
        let eta = u64::from(eta.max(2));
        let budget = budget.max(1);
        let mut rung: u64 = 0;
        while candidates.len() > budget {
            sampled = true;
            rung += 1;
            engine.note_search_rung();
            let mut span = engine.telemetry().span("dse.rung", "dse");
            span.arg("rung", ArgValue::Int(rung));
            span.arg("candidates", ArgValue::Int(candidates.len() as u64));
            let lbs: Vec<u64> = engine.par_map(&candidates, |_, (_, hw)| lb_cycles(hw));
            let keep = budget.max(candidates.len().div_ceil(eta as usize));
            let mut ranked: Vec<(u64, u64, u32)> = candidates
                .iter()
                .zip(&lbs)
                .map(|(&(idx, _), &lb)| (lb, rung_tie_break(seed, rung, idx), idx))
                .collect();
            ranked.sort_unstable();
            ranked.truncate(keep);
            ranked.sort_unstable_by_key(|&(_, _, idx)| idx);
            // Rebuild the candidate list in space order from the
            // promoted indices (both lists are index-sorted).
            let mut promoted = ranked.iter().map(|&(_, _, idx)| idx).peekable();
            candidates.retain(|&(idx, _)| {
                if promoted.peek() == Some(&idx) {
                    promoted.next();
                    true
                } else {
                    false
                }
            });
            span.arg("kept", ArgValue::Int(candidates.len() as u64));
        }
    }

    // Stage B: exact pricing of the final candidates, folded into the
    // Pareto front in space order.
    if engine.pruning_enabled() {
        engine.note_dse_evaluated(candidates.len() as u64);
    }
    let mut span = engine.telemetry().span("dse.eval", "dse");
    span.arg("points", ArgValue::Int(candidates.len() as u64));
    let points: Vec<DsePoint> = engine
        .par_map(&candidates, |_, &(_, hw)| evaluate(hw))
        .into_iter()
        .flatten()
        .collect();
    drop(span);
    let front = ParetoFront::from_points(&points);
    SearchOutcome {
        points,
        front,
        sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::PpaReport;

    fn point(area: f64, latency: f64, energy: f64) -> DsePoint {
        DsePoint {
            hw: HwParams::new(1, 1, 1, 1),
            report: PpaReport {
                latency_s: latency,
                energy_j: energy,
                area_mm2: area,
                nop_energy_j: 0.0,
                noc_energy_j: 0.0,
                leakage_j: 0.0,
            },
        }
    }

    #[test]
    fn strong_dominance_keeps_ties() {
        let mut front = ParetoFront::new();
        assert!(front.insert(point(2.0, 2.0, 2.0)));
        // Equal latency: not strongly dominated, must survive even
        // though area and energy are worse.
        assert!(front.insert(point(3.0, 2.0, 3.0)));
        assert_eq!(front.len(), 2);
        // Strictly better in all three objectives: evicts both.
        assert!(front.insert(point(1.0, 1.0, 1.0)));
        assert_eq!(front.len(), 1);
        // Strictly worse in all three: rejected.
        assert!(!front.insert(point(4.0, 4.0, 4.0)));
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn front_preserves_insertion_order() {
        let pts = vec![
            point(3.0, 1.0, 5.0),
            point(1.0, 4.0, 4.0),
            point(2.0, 3.0, 1.0),
        ];
        let front = ParetoFront::from_points(&pts);
        assert_eq!(front.len(), 3);
        let areas: Vec<f64> = front.entries().iter().map(|p| p.report.area_mm2).collect();
        assert_eq!(areas, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn front_select_matches_full_list_fold() {
        let pts = vec![
            point(3.0, 1.0, 5.0),
            point(1.0, 4.0, 4.0),
            point(2.0, 1.2, 1.0),
            point(2.5, 1.1, 0.9),
            point(9.0, 9.0, 9.0), // dominated
        ];
        let cons = Constraints {
            latency_slack: 0.5,
            ..Constraints::default()
        };
        let front = ParetoFront::from_points(&pts);
        for objective in DseObjective::ALL {
            let best_latency = pts
                .iter()
                .map(|p| p.report.latency_s)
                .fold(f64::INFINITY, f64::min);
            let limit = best_latency * (1.0 + cons.latency_slack);
            let reference = pts
                .iter()
                .filter(|p| p.report.latency_s <= limit)
                .min_by(|a, b| {
                    objective
                        .score(&a.report)
                        .total_cmp(&objective.score(&b.report))
                })
                .unwrap();
            let got = front.select(&cons, objective).unwrap();
            assert_eq!(
                format!("{got:?}"),
                format!("{reference:?}"),
                "{objective:?}"
            );
        }
    }

    #[test]
    fn empty_front_selects_nothing() {
        let front = ParetoFront::new();
        assert!(front.is_empty());
        assert!(front
            .select(&Constraints::default(), DseObjective::MinArea)
            .is_none());
    }

    #[test]
    fn tie_break_is_a_pure_function() {
        assert_eq!(rung_tie_break(7, 1, 42), rung_tie_break(7, 1, 42));
        assert_ne!(rung_tie_break(7, 1, 42), rung_tie_break(8, 1, 42));
        assert_ne!(rung_tie_break(7, 1, 42), rung_tie_break(7, 2, 42));
    }

    #[test]
    fn successive_halving_with_full_budget_degenerates_to_exhaustive() {
        use claire_model::zoo;
        use claire_ppa::DseSpace;
        let space = DseSpace::default();
        let m = zoo::vgg16();
        let cons = Constraints::default();
        let ex = search_with_engine(
            &m,
            &space,
            &cons,
            SearchPolicy::Exhaustive,
            &Engine::serial(),
        );
        let engine = Engine::serial();
        let sh = search_with_engine(
            &m,
            &space,
            &cons,
            SearchPolicy::SuccessiveHalving {
                seed: 1,
                eta: 3,
                budget: space.len(),
            },
            &engine,
        );
        assert!(!sh.sampled, "full budget must not sample");
        assert_eq!(engine.stats().search_rungs, 0);
        assert_eq!(format!("{:?}", ex.points), format!("{:?}", sh.points));
        assert_eq!(
            format!("{:?}", ex.front.entries()),
            format!("{:?}", sh.front.entries())
        );
    }

    #[test]
    fn successive_halving_trajectory_is_seeded_and_reproducible() {
        use claire_model::zoo;
        use claire_ppa::DseSpace;
        let space = DseSpace::dense(6); // 1296 slots
        let m = zoo::alexnet();
        let cons = Constraints::default();
        let policy = SearchPolicy::SuccessiveHalving {
            seed: 42,
            eta: 2,
            budget: 24,
        };
        let engine = Engine::serial();
        let a = search_with_engine(&m, &space, &cons, policy, &engine);
        let b = search_with_engine(
            &m,
            &space,
            &cons,
            policy,
            &Engine::new(8), // different thread count, same trajectory
        );
        assert!(a.sampled);
        assert!(engine.stats().search_rungs > 0, "rungs must have run");
        assert!(a.points.len() <= 24);
        assert_eq!(format!("{:?}", a.points), format!("{:?}", b.points));
        // The exactly priced final rung never exceeds the budget, and
        // its selections come from real evaluations.
        for p in &a.points {
            assert!(p.report.latency_s.is_finite());
            assert!(p.report.area_mm2 <= cons.chiplet_area_limit_mm2);
        }
    }

    #[test]
    fn generative_grid_search_screens_and_selects() {
        use claire_model::zoo;
        use claire_ppa::{GridAxis, GridSpace};
        let grid = GridSpace {
            sa_size: GridAxis::new(8, 8, 8),
            n_sa: GridAxis::new(2, 2, 8),
            n_act: GridAxis::new(2, 2, 8),
            n_pool: GridAxis::new(2, 2, 8),
        };
        assert_eq!(grid.size(), 4096);
        let m = zoo::resnet18();
        let cons = Constraints::default();
        let engine = Engine::serial();
        let out = search_with_engine(
            &m,
            &grid,
            &cons,
            SearchPolicy::SuccessiveHalving {
                seed: 7,
                eta: 4,
                budget: 32,
            },
            &engine,
        );
        assert!(!out.front.is_empty(), "grid must admit feasible points");
        assert!(out.points.len() <= 32);
        let stats = engine.stats();
        assert!(stats.dse_pruned > 0, "grid corners exceed the area cap");
        assert!(stats.search_rungs > 0);
        // Same grid, same seed: bit-identical trajectory.
        let again = search_with_engine(
            &m,
            &grid,
            &cons,
            SearchPolicy::SuccessiveHalving {
                seed: 7,
                eta: 4,
                budget: 32,
            },
            &Engine::serial(),
        );
        assert_eq!(format!("{:?}", out.points), format!("{:?}", again.points));
    }

    #[test]
    fn lb_screen_never_changes_selections() {
        use crate::dse::{custom_config_searched, sweep_with_engine};
        use claire_model::zoo;
        use claire_ppa::DseSpace;
        let space = DseSpace::default();
        let cons = Constraints::default();
        for m in [zoo::resnet18(), zoo::mobilenet_v2()] {
            let screened_engine = Engine::serial();
            let screened = sweep_with_engine(&m, &space, &cons, &screened_engine);
            let oracle =
                sweep_with_engine(&m, &space, &cons, &Engine::serial().with_pruning(false));
            assert!(screened.len() <= oracle.len());
            for objective in DseObjective::ALL {
                let a = custom_config_searched(
                    &m,
                    &space,
                    &cons,
                    objective,
                    SearchPolicy::Exhaustive,
                    &Engine::serial(),
                )
                .unwrap();
                let b = custom_config_searched(
                    &m,
                    &space,
                    &cons,
                    objective,
                    SearchPolicy::Exhaustive,
                    &Engine::serial().with_pruning(false),
                )
                .unwrap();
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{objective:?}");
            }
        }
    }
}
