//! Step #TR3/#TT4: clustering the monolithic graph into chiplets with
//! Louvain community detection.

use crate::config::{Chiplet, Constraints, DesignConfig};
use crate::error::ClaireError;
use crate::parallel::Engine;
use claire_graph::{louvain_csr, spectral_cluster, CsrGraph, Partition, WeightedGraph};
use claire_model::{Model, OpClass};
use claire_ppa::unit_area_mm2;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which community-detection algorithm partitions module groups into
/// chiplets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusteringStrategy {
    /// The paper's choice: Louvain modularity maximisation at the
    /// given resolution.
    Louvain {
        /// Modularity resolution γ (1.0 = classic).
        resolution: f64,
    },
    /// Recursive spectral bisection into at most `k` parts (ablation
    /// alternative).
    Spectral {
        /// Maximum number of chiplets.
        k: usize,
    },
}

impl Default for ClusteringStrategy {
    fn default() -> Self {
        ClusteringStrategy::Louvain { resolution: 1.0 }
    }
}

/// Partitions `config`'s module groups into chiplets by running
/// Louvain on the universal communication graph of `workloads` under
/// the configuration's hardware parameters, then materialises each
/// community as a [`Chiplet`] named `L1`, `L2`, … (`name_prefix`
/// selects the letter).
///
/// If a community's silicon area exceeds the chiplet area limit, the
/// clustering re-runs at a higher Louvain resolution (more, smaller
/// communities) until every chiplet fits.
///
/// Module classes of the configuration that never appear in the
/// workloads' graphs (e.g. the always-provisioned tanh block of the
/// generic configuration) are attached to the community hosting their
/// natural companion (GELU for tanh) or the last chiplet.
///
/// # Errors
///
/// [`ClaireError::ChipletAreaUnsatisfiable`] when a single module
/// group is larger than the limit — no partition can fix that.
pub fn cluster_into_chiplets(
    config: &mut DesignConfig,
    workloads: &[Model],
    constraints: &Constraints,
    resolution: f64,
) -> Result<(), ClaireError> {
    cluster_with_strategy(
        config,
        workloads,
        constraints,
        ClusteringStrategy::Louvain { resolution },
    )
}

/// [`cluster_into_chiplets`] with the universal graph built through
/// the engine's memoized layer costs and each Louvain partition served
/// from the engine's canonical-graph memo tiers. The CSR kernel graph
/// is interned **once**; the resolution-escalation loop re-clusters
/// flat arrays instead of rebuilding maps, and each escalation step
/// (`γ, 1.5γ, …`) first consults the engine's certified warm-start
/// tier ([`Engine::louvain_partition_escalating`]) so a prior
/// clustering whose γ-interval covers the escalated resolution is
/// served without re-running the kernel. Bit-identical to
/// [`cluster_into_chiplets`].
///
/// # Errors
///
/// Same as [`cluster_into_chiplets`].
pub fn cluster_into_chiplets_with_engine(
    config: &mut DesignConfig,
    workloads: &[Model],
    constraints: &Constraints,
    resolution: f64,
    engine: &Engine,
) -> Result<(), ClaireError> {
    precheck_group_areas(config, constraints)?;
    let ug = engine.universal_csr(workloads, &config.hw);
    let mut gamma = resolution;
    cluster_attempts(config, constraints, &ug.graph, || {
        let p = engine.louvain_partition_escalating(&ug.csr, gamma);
        gamma *= 1.5;
        p
    })
}

/// [`cluster_into_chiplets`] under an explicit partitioning strategy.
///
/// # Errors
///
/// Same as [`cluster_into_chiplets`].
pub fn cluster_with_strategy(
    config: &mut DesignConfig,
    workloads: &[Model],
    constraints: &Constraints,
    strategy: ClusteringStrategy,
) -> Result<(), ClaireError> {
    precheck_group_areas(config, constraints)?;
    let ug = crate::graphs::universal_graph(workloads, &config.hw);
    match strategy {
        ClusteringStrategy::Louvain { resolution } => {
            let csr = CsrGraph::from_weighted(&ug);
            let mut gamma = resolution;
            cluster_attempts(config, constraints, &ug, || {
                let p = Arc::new(louvain_csr(&csr, gamma));
                gamma *= 1.5;
                p
            })
        }
        ClusteringStrategy::Spectral { k } => {
            let mut spectral_k = k.max(1);
            cluster_attempts(config, constraints, &ug, || {
                let p = Arc::new(spectral_cluster(&ug, spectral_k, 200));
                spectral_k += 1;
                p
            })
        }
    }
}

/// A lone module group bigger than the limit can never fit.
fn precheck_group_areas(
    config: &DesignConfig,
    constraints: &Constraints,
) -> Result<(), ClaireError> {
    for &class in &config.classes {
        let area = unit_area_mm2(class, &config.hw);
        if area > constraints.chiplet_area_limit_mm2 {
            return Err(ClaireError::ChipletAreaUnsatisfiable {
                group: class.label(),
                area_mm2: area,
                limit_mm2: constraints.chiplet_area_limit_mm2,
            });
        }
    }
    Ok(())
}

/// The shared escalation loop: ask `next_partition` for successively
/// finer partitions (it advances its own granularity each call) until
/// every materialised chiplet fits the area limit, then place.
fn cluster_attempts(
    config: &mut DesignConfig,
    constraints: &Constraints,
    ug: &WeightedGraph<OpClass>,
    mut next_partition: impl FnMut() -> Arc<Partition<OpClass>>,
) -> Result<(), ClaireError> {
    for _attempt in 0..12 {
        let partition = next_partition();
        let mut groups: Vec<BTreeSet<OpClass>> = partition
            .communities()
            .iter()
            .map(|c| c.iter().copied().collect())
            .collect();
        if groups.is_empty() {
            groups.push(BTreeSet::new());
        }

        // Attach configuration classes absent from the workload graphs.
        for &class in &config.classes {
            if groups.iter().any(|g| g.contains(&class)) {
                continue;
            }
            let companion = match class {
                OpClass::Activation(claire_model::ActivationKind::Tanh) => {
                    OpClass::Activation(claire_model::ActivationKind::Gelu)
                }
                other => other,
            };
            let target = groups
                .iter()
                .position(|g| g.contains(&companion))
                .unwrap_or(groups.len() - 1);
            groups[target].insert(class);
        }
        // Drop graph nodes that are not part of this configuration
        // (cannot happen in the normal flow; defensive).
        for g in &mut groups {
            g.retain(|c| config.classes.contains(c));
        }
        groups.retain(|g| !g.is_empty());

        let chiplets: Vec<Chiplet> = groups
            .iter()
            .enumerate()
            .map(|(i, g)| Chiplet::from_classes(format!("L{}", i + 1), g.clone(), &config.hw))
            .collect();

        if chiplets
            .iter()
            .all(|c| c.area_mm2 <= constraints.chiplet_area_limit_mm2)
        {
            config.chiplets = chiplets;
            // Place the chiplets on the interposer by their mutual
            // traffic (only meaningful beyond one chiplet).
            config.placement = if config.chiplets.len() > 1 {
                let traffic = crate::place::chiplet_traffic(config, ug);
                Some(crate::place::place(config.chiplets.len(), &traffic))
            } else {
                None
            };
            return Ok(());
        }
        // Area limit violated: the next `next_partition` call escalates
        // the granularity (higher γ / larger k).
    }

    // Resolution escalation failed; report the largest offender.
    // total_cmp orders any area values (NaN included) without
    // panicking; areas are finite in practice so the order matches
    // partial_cmp.
    match config
        .classes
        .iter()
        .max_by(|a, b| unit_area_mm2(**a, &config.hw).total_cmp(&unit_area_mm2(**b, &config.hw)))
    {
        Some(worst) => Err(ClaireError::ChipletAreaUnsatisfiable {
            group: worst.label(),
            area_mm2: unit_area_mm2(*worst, &config.hw),
            limit_mm2: constraints.chiplet_area_limit_mm2,
        }),
        None => Err(ClaireError::Internal {
            detail: "cluster_attempts on a configuration with no module classes".to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;
    use claire_ppa::HwParams;

    fn config_for(models: &[Model], name: &str) -> DesignConfig {
        let classes: BTreeSet<OpClass> = models
            .iter()
            .flat_map(|m| m.op_class_counts().into_keys())
            .collect();
        DesignConfig::monolithic(name, HwParams::new(32, 32, 16, 16), classes)
    }

    #[test]
    fn resnet_splits_compute_and_head() {
        // A CNN's feature extractor (conv/relu/pool) and its classifier
        // head communicate weakly: Louvain produces 2 chiplets.
        let models = [zoo::resnet18()];
        let mut cfg = config_for(&models, "C_Resnet18");
        cluster_into_chiplets(&mut cfg, &models, &Constraints::default(), 1.0).unwrap();
        assert_eq!(cfg.chiplet_count(), 2, "{:?}", cfg.chiplets);
    }

    #[test]
    fn transformer_is_one_chiplet() {
        let models = [zoo::bert_base()];
        let mut cfg = config_for(&models, "C_BERT");
        cluster_into_chiplets(&mut cfg, &models, &Constraints::default(), 1.0).unwrap();
        assert_eq!(cfg.chiplet_count(), 1, "{:?}", cfg.chiplets);
    }

    #[test]
    fn chiplets_partition_all_classes() {
        let models = [zoo::alexnet()];
        let mut cfg = config_for(&models, "C_Alexnet");
        cluster_into_chiplets(&mut cfg, &models, &Constraints::default(), 1.0).unwrap();
        let total: usize = cfg.chiplets.iter().map(|c| c.classes.len()).sum();
        assert_eq!(total, cfg.classes.len());
        for class in &cfg.classes {
            assert!(cfg.chiplet_of(*class).is_some(), "{class} unplaced");
        }
    }

    #[test]
    fn chiplet_names_are_sequential() {
        let models = [zoo::resnet50()];
        let mut cfg = config_for(&models, "C_Resnet50");
        cluster_into_chiplets(&mut cfg, &models, &Constraints::default(), 1.0).unwrap();
        for (i, c) in cfg.chiplets.iter().enumerate() {
            assert_eq!(c.name, format!("L{}", i + 1));
        }
    }

    #[test]
    fn every_chiplet_respects_area_limit() {
        let models = zoo::training_set();
        let mut cfg = config_for(&models, "C_g");
        let cons = Constraints::default();
        cluster_into_chiplets(&mut cfg, &models, &cons, 1.0).unwrap();
        for c in &cfg.chiplets {
            assert!(c.area_mm2 <= cons.chiplet_area_limit_mm2, "{:?}", c);
        }
    }

    #[test]
    fn provisioned_tanh_lands_next_to_gelu() {
        // The generic configuration provisions a tanh block even though
        // no training algorithm exercises it; it must co-locate with
        // GELU (same hardware family).
        let models = [zoo::vit_base()];
        let mut cfg = config_for(&models, "C");
        cfg.classes
            .insert(OpClass::Activation(claire_model::ActivationKind::Tanh));
        cluster_into_chiplets(&mut cfg, &models, &Constraints::default(), 1.0).unwrap();
        let tanh_chiplet = cfg
            .chiplet_of(OpClass::Activation(claire_model::ActivationKind::Tanh))
            .unwrap();
        let gelu_chiplet = cfg
            .chiplet_of(OpClass::Activation(claire_model::ActivationKind::Gelu))
            .unwrap();
        assert_eq!(tanh_chiplet, gelu_chiplet);
    }

    #[test]
    fn spectral_strategy_also_partitions() {
        let models = [zoo::resnet18()];
        let mut cfg = config_for(&models, "C_Resnet18");
        cluster_with_strategy(
            &mut cfg,
            &models,
            &Constraints::default(),
            ClusteringStrategy::Spectral { k: 2 },
        )
        .unwrap();
        assert_eq!(cfg.chiplet_count(), 2);
        cfg.validate().unwrap();
    }

    #[test]
    fn engine_clustering_is_bit_identical_and_memoized() {
        let models = [zoo::resnet18(), zoo::alexnet()];
        let cons = Constraints::default();
        let mut plain = config_for(&models, "C");
        cluster_into_chiplets(&mut plain, &models, &cons, 1.0).unwrap();

        let engine = Engine::new(2);
        let mut memo = config_for(&models, "C");
        cluster_into_chiplets_with_engine(&mut memo, &models, &cons, 1.0, &engine).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{memo:?}"));

        // Re-clustering the same workload graph hits a Louvain memo
        // tier — the exact tier's hash probe is consulted first, the
        // warm (certificate) tier backs it up for distinct γ.
        let mut again = config_for(&models, "C");
        cluster_into_chiplets_with_engine(&mut again, &models, &cons, 1.0, &engine).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{again:?}"));
        let stats = engine.stats();
        assert!(
            stats.louvain_hits + stats.louvain_warm_hits >= 1,
            "{stats:?}"
        );
        assert!(stats.louvain_entries >= 1);
    }

    #[test]
    fn oversized_group_is_unsatisfiable() {
        let models = [zoo::bert_base()];
        let mut cfg = config_for(&models, "C");
        let cons = Constraints {
            chiplet_area_limit_mm2: 5.0,
            ..Constraints::default()
        };
        let err = cluster_into_chiplets(&mut cfg, &models, &cons, 1.0).unwrap_err();
        assert!(matches!(err, ClaireError::ChipletAreaUnsatisfiable { .. }));
    }
}
