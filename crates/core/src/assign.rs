//! Subset partitioning (Algorithm 1, line 14) and Step #TT1 test-set
//! configuration assignment, both driven by weighted Jaccard
//! similarity over node-weight vectors.

use claire_graph::{
    agglomerate_matrix, agglomerate_merge, weighted_jaccard, weighted_jaccard_matrix,
};
use claire_model::Model;
use std::collections::BTreeMap;

/// How node work is scaled before the weighted Jaccard comparison.
///
/// Work across the 19 algorithms spans more than six decades (a
/// MobileNetV2 inference vs. a 2048-token Mixtral pass); `Log`
/// compresses each node weight to `log10(1 + w)` so that similarity
/// reflects both *which* units an algorithm exercises and the *order
/// of magnitude* of each, rather than being dominated by the single
/// largest node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScale {
    /// Raw work (MACs / element operations).
    Raw,
    /// `log10(1 + w)` compression (default).
    #[default]
    Log,
    /// Pure presence (every exercised node weighs 1): the unweighted
    /// Jaccard over node-type sets, for the assignment-metric ablation.
    Binary,
}

/// The model's node-weight vector under a scale.
pub fn scaled_vector(model: &Model, scale: WeightScale) -> BTreeMap<claire_model::OpClass, f64> {
    scale_weights(model.op_class_weights(), scale)
}

/// Applies a [`WeightScale`] to an already-extracted raw node-weight
/// vector, so callers holding the raw weights don't walk the model's
/// layers a second time.
pub fn scale_weights(
    v: BTreeMap<claire_model::OpClass, f64>,
    scale: WeightScale,
) -> BTreeMap<claire_model::OpClass, f64> {
    match scale {
        WeightScale::Raw => v,
        WeightScale::Log => v.into_iter().map(|(k, w)| (k, (1.0 + w).log10())).collect(),
        WeightScale::Binary => v
            .into_iter()
            .map(|(k, w)| (k, if w > 0.0 { 1.0 } else { 0.0 }))
            .collect(),
    }
}

/// Splits the training set into subsets `TR_k` by single-linkage
/// agglomeration over the weighted Jaccard similarity of the models'
/// work-weighted node vectors (Algorithm 1, line 14). Returns index
/// clusters, ordered by smallest member.
///
/// The similarity is both *type*- and *scale*-sensitive (Σmin/Σmax of
/// per-node work), so compact CNNs group together while the
/// billion-parameter transformers form their own subset and the
/// Conv1d-bearing GPT-2 stays separate — the structure of the paper's
/// Table III.
pub fn partition_training(models: &[Model], threshold: f64, scale: WeightScale) -> Vec<Vec<usize>> {
    let vectors: Vec<BTreeMap<_, _>> = models.iter().map(|m| scaled_vector(m, scale)).collect();
    agglomerate_matrix(&weighted_jaccard_matrix(&vectors), threshold)
}

/// [`partition_training`] that additionally returns each subset's
/// merged raw node-weight vector, maintained *incrementally* as
/// clusters are united instead of being re-summed per subset
/// afterwards. The pairwise similarity matrix is computed once over
/// the interned scaled vectors; the payloads merged are the raw
/// (unscaled) `op_class_weights` maps, since downstream assignment
/// scales the subset sum as a whole.
///
/// Clusters are identical to [`partition_training`]. The merged sums
/// accumulate in cluster-union order, which coincides with
/// ascending-member order except on rare chain-shaped merge sequences
/// (last-ulp differences at most).
pub fn partition_training_merged(
    models: &[Model],
    threshold: f64,
    scale: WeightScale,
) -> Vec<(Vec<usize>, BTreeMap<claire_model::OpClass, f64>)> {
    // One layer walk per model: the scaled similarity vectors are
    // derived from the raw weights instead of re-extracted.
    let raw: Vec<BTreeMap<_, f64>> = models.iter().map(|m| m.op_class_weights()).collect();
    let vectors: Vec<BTreeMap<_, _>> = raw
        .iter()
        .map(|v| scale_weights(v.clone(), scale))
        .collect();
    let matrix = weighted_jaccard_matrix(&vectors);
    agglomerate_merge(raw, &matrix, threshold, |into, from| {
        for (k, w) in from {
            *into.entry(k).or_insert(0.0) += w;
        }
    })
}

/// Step #TT1: picks the library configuration for a test algorithm —
/// "calculating the weighted Jaccard Similarity between the
/// algorithm's nodes and the nodes of the library-synthesized
/// configurations, \[selecting\] the configuration with the highest
/// similarity".
///
/// `library_vectors` are the summed node-weight vectors of each
/// library's training subset. Returns `(library index, similarity)`;
/// `None` for an empty library list.
pub fn assign_test(
    model: &Model,
    library_vectors: &[BTreeMap<claire_model::OpClass, f64>],
) -> Option<(usize, f64)> {
    let v = model.op_class_weights();
    library_vectors
        .iter()
        .enumerate()
        .map(|(i, lv)| (i, weighted_jaccard(&v, lv)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// The summed node-weight vector of a model subset (the "nodes of the
/// library-synthesized configuration" used during assignment).
pub fn subset_vector(models: &[&Model]) -> BTreeMap<claire_model::OpClass, f64> {
    let mut v = BTreeMap::new();
    for m in models {
        for (k, w) in m.op_class_weights() {
            *v.entry(k).or_insert(0.0) += w;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::zoo;

    #[test]
    fn cnns_group_together() {
        let models = [zoo::resnet18(), zoo::resnet50(), zoo::gpt2()];
        for scale in [WeightScale::Raw, WeightScale::Log] {
            let clusters = partition_training(&models, 0.2, scale);
            // The ResNets must share a cluster; GPT-2 (Conv1d) must not.
            let resnet_cluster = clusters.iter().find(|c| c.contains(&0)).unwrap();
            assert!(resnet_cluster.contains(&1), "{scale:?}");
            assert!(!resnet_cluster.contains(&2), "{scale:?}");
        }
    }

    #[test]
    fn merged_partition_matches_plain_and_sums_members() {
        let models = [zoo::resnet18(), zoo::resnet50(), zoo::gpt2()];
        for scale in [WeightScale::Raw, WeightScale::Log] {
            let plain = partition_training(&models, 0.2, scale);
            let merged = partition_training_merged(&models, 0.2, scale);
            let clusters: Vec<Vec<usize>> = merged.iter().map(|(c, _)| c.clone()).collect();
            assert_eq!(plain, clusters, "{scale:?}");
            for (cluster, vector) in &merged {
                let member_refs: Vec<&Model> = cluster.iter().map(|&i| &models[i]).collect();
                let resummed = subset_vector(&member_refs);
                assert_eq!(vector.len(), resummed.len());
                for (k, w) in &resummed {
                    assert!((vector[k] - w).abs() <= 1e-9 * w.abs().max(1.0), "{k}");
                }
            }
        }
    }

    #[test]
    fn threshold_one_gives_singletons() {
        let models = [zoo::resnet18(), zoo::resnet50()];
        let clusters = partition_training(&models, 0.999, WeightScale::Raw);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn binary_scale_is_presence_only() {
        let m = zoo::vgg16();
        let b = scaled_vector(&m, WeightScale::Binary);
        assert!(b.values().all(|&w| w == 1.0));
    }

    #[test]
    fn log_scale_compresses_magnitudes() {
        let m = zoo::vgg16();
        let raw = scaled_vector(&m, WeightScale::Raw);
        let log = scaled_vector(&m, WeightScale::Log);
        let max_raw = raw.values().cloned().fold(0.0, f64::max);
        let max_log = log.values().cloned().fold(0.0, f64::max);
        assert!(max_raw > 1e9);
        assert!(max_log < 15.0);
    }

    #[test]
    fn assignment_picks_most_similar_library() {
        let cnn_models = [zoo::resnet18(), zoo::resnet50()];
        let llm_models = [zoo::llama3_8b()];
        let libs = vec![
            subset_vector(&cnn_models.iter().collect::<Vec<_>>()),
            subset_vector(&llm_models.iter().collect::<Vec<_>>()),
        ];
        let (idx, sim) = assign_test(&zoo::alexnet(), &libs).unwrap();
        assert_eq!(idx, 0, "AlexNet belongs with the CNNs");
        assert!(sim > 0.0);
        let (idx, _) = assign_test(&zoo::bert_base(), &libs).unwrap();
        assert_eq!(idx, 1, "BERT belongs with the transformers");
    }

    #[test]
    fn empty_library_list_returns_none() {
        assert!(assign_test(&zoo::alexnet(), &[]).is_none());
    }

    #[test]
    fn subset_vector_sums_members() {
        let a = zoo::resnet18();
        let b = zoo::resnet50();
        let v = subset_vector(&[&a, &b]);
        let direct = a.op_class_weights();
        for (k, w) in &direct {
            assert!(v[k] >= *w);
        }
    }
}
