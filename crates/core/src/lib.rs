//! # claire-core — the CLAIRE analytical framework
//!
//! End-to-end implementation of the pipeline in Fig. 1 of
//! *CLAIRE: Composable Chiplet Libraries for AI Inference* (DATE 2025):
//!
//! 1. **Initial graph construction** (Step #TR1) — [`graphs`]: each
//!    algorithm becomes `G_ini(N, E, w_N, w_E)` over hardware-unit
//!    nodes.
//! 2. **Design space exploration** (Steps #TR2/#TT3, Algorithm 1) —
//!    [`dse`]: sweep the 81 hardware configurations, apply the
//!    constraints, select custom (`C_i`), generic (`C_g`) and
//!    library-synthesized (`C_k`) configurations.
//! 3. **Clustering into chiplets** (Steps #TR3/#TT4) — [`chiplet`]:
//!    Louvain community detection over communication volumes.
//! 4. **Test-set configuration assignment** (Step #TT1) — [`assign`]:
//!    arg-max weighted Jaccard similarity.
//! 5. **Metric evaluation** (Step #TT2) — [`metrics`] and
//!    [`evaluate`]: latency/energy/area/power density, algorithm
//!    coverage `C_layer`, chiplet utilization `U_chiplet`, and
//!    normalised NRE cost.
//!
//! The [`Claire`] façade drives the whole flow:
//!
//! ```
//! use claire_core::Claire;
//! use claire_model::zoo;
//!
//! # fn main() -> Result<(), claire_core::ClaireError> {
//! let claire = Claire::default();
//! // Train on two algorithms (the full 13-model run lives in the
//! // examples and benches).
//! let out = claire.train(&[zoo::resnet18(), zoo::bert_base()])?;
//! assert_eq!(out.customs.len(), 2);
//! assert!(!out.libraries.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod assign;
pub mod chiplet;
mod claire;
mod config;
pub mod dse;
mod error;
pub mod evaluate;
pub mod fault;
pub mod graphs;
pub mod io;
pub mod library;
pub mod metrics;
pub mod parallel;
pub mod place;
pub mod plan;
mod resident;
pub mod search;
mod snapshot;
pub mod telemetry;

pub use assign::WeightScale;
pub use chiplet::ClusteringStrategy;
pub use claire::{
    paper_table3_subsets, AlgoPpa, Claire, ClaireOptions, CustomResult, LibraryConfig,
    SubsetStrategy, TestOutput, TestReport, TrainOutput,
};
pub use config::{monolithic_area_mm2, Chiplet, Constraints, DesignConfig};
pub use dse::{Degradation, DseObjective, DsePoint, RelaxStep, RobustnessPolicy};
pub use error::ClaireError;
pub use evaluate::{
    edge_cost_sequence, edge_transfer, route_of, transfer_on_route, CostProvider, DirectCosts,
    EdgeRoute, EvalOptions, PpaReport, RouteTable, TransferCost,
};
pub use fault::{FaultClass, FaultPlan};
pub use io::{ConfigIoError, RunConfig};
pub use library::{ChipletLibrary, Deployment, LibraryEntry};
pub use parallel::{resolve_threads, Engine, EngineStats, UniversalCsr, WorkerPanic, THREADS_ENV};
pub use place::InterposerPlacement;
pub use plan::{plan_portfolio, PortfolioPlan, Product};
pub use resident::{
    CustomRequest, LifecycleEvent, LifecycleStage, ResidentEngine, ServeObserver, WhatIfReport,
};
pub use search::{search_with_engine, ParetoFront, SearchOutcome, SearchPolicy};
pub use snapshot::SNAPSHOT_VERSION;
pub use telemetry::{
    EventRing, QuantileDigest, QuantileSummary, RateSnapshot, RateWindows, Telemetry,
    TelemetryOptions,
};
