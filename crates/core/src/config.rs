//! Design configurations, chiplets, and the Input #4 constraints.

use claire_model::{ActivationKind, Model, OpClass};
use claire_noc::Network;
use claire_ppa::{unit_area_mm2, HwParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Input #4: the constraints that keep DSE results realistic for cloud
/// deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// `A_Chip_limit`: maximum area of one chiplet (and of the
    /// monolithic die considered during DSE), mm². The paper keeps
    /// configurations "within a realistic area range of 10–100 mm²"
    /// per ASIC-Clouds-style specifications.
    pub chiplet_area_limit_mm2: f64,
    /// `PD_limit`: maximum power density, W/mm², to manage chip
    /// temperature.
    pub power_density_limit_w_per_mm2: f64,
    /// `L_limit` slack: a configuration's latency may not exceed the
    /// custom design solution's latency by more than this fraction
    /// (the paper's "does not exceed 50 %" ⇒ `0.5`).
    pub latency_slack: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            chiplet_area_limit_mm2: 100.0,
            power_density_limit_w_per_mm2: 1.0,
            latency_slack: 0.5,
        }
    }
}

/// One chiplet: a named set of module groups produced by the Louvain
/// clustering step, with its silicon area (module groups + one NoC
/// router per group + the AIB NoP PHY).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chiplet {
    /// Library name, `L1`, `L2`, … in Table II style.
    pub name: String,
    /// The module groups (hardware-unit classes) on this chiplet.
    pub classes: BTreeSet<OpClass>,
    /// Total silicon area, mm².
    pub area_mm2: f64,
}

impl Chiplet {
    /// Builds a chiplet from its module groups under `hw`, adding one
    /// NoC router per group and one NoP PHY for the AIB interface.
    pub fn from_classes(
        name: impl Into<String>,
        classes: BTreeSet<OpClass>,
        hw: &HwParams,
    ) -> Self {
        let noc = Network::noc();
        let nop = Network::nop_aib2();
        let units: f64 = classes.iter().map(|&c| unit_area_mm2(c, hw)).sum();
        let routers = classes.len() as f64 * noc.router.area_mm2;
        Chiplet {
            name: name.into(),
            classes,
            area_mm2: units + routers + nop.router.area_mm2,
        }
    }

    /// The activation kinds present, in Table II order.
    pub fn activation_kinds(&self) -> Vec<ActivationKind> {
        self.classes
            .iter()
            .filter_map(|c| match c {
                OpClass::Activation(a) => Some(*a),
                _ => None,
            })
            .collect()
    }

    /// The pooling kinds present.
    pub fn pooling_kinds(&self) -> Vec<claire_model::PoolingKind> {
        self.classes
            .iter()
            .filter_map(|c| match c {
                OpClass::Pooling(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// Number of systolic-array module groups on this chiplet.
    pub fn systolic_groups(&self) -> usize {
        self.classes.iter().filter(|c| c.is_systolic()).count()
    }
}

/// Silicon area of a monolithic (unclustered) configuration holding
/// `classes` under `hw`: the module-group areas summed in class order
/// plus one NoC router per group. This is **the** monolithic area
/// formula — [`DesignConfig::area_mm2`] and the engine's memoized
/// per-op-class area tables both evaluate it with the identical
/// floating-point operation order, which is what lets the staged DSE
/// sweep prune on area without ever disagreeing with a full
/// evaluation by even one bit.
pub fn monolithic_area_mm2(classes: &BTreeSet<OpClass>, hw: &HwParams) -> f64 {
    let units: f64 = classes.iter().map(|&c| unit_area_mm2(c, hw)).sum();
    units + classes.len() as f64 * Network::noc().router.area_mm2
}

/// A design configuration: the DSE-selected hardware parameters, the
/// module groups it instantiates, and (after Step #TR3) its chiplet
/// partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Configuration name (`C_i` of an algorithm, `C_g`, or `C_k`).
    pub name: String,
    /// DSE-selected tunable hardware parameters.
    pub hw: HwParams,
    /// The module groups (hardware-unit classes) the configuration
    /// instantiates — one per distinct op class of its workloads.
    pub classes: BTreeSet<OpClass>,
    /// The chiplet partition (empty until clustering runs).
    pub chiplets: Vec<Chiplet>,
    /// Interposer placement of the chiplets (None until clustering
    /// runs or for single-chiplet designs); cross-chiplet transfers
    /// pay its Manhattan distance in AIB channel hops.
    #[serde(default)]
    pub placement: Option<crate::place::InterposerPlacement>,
}

impl DesignConfig {
    /// Creates a monolithic (not yet clustered) configuration.
    pub fn monolithic(name: impl Into<String>, hw: HwParams, classes: BTreeSet<OpClass>) -> Self {
        DesignConfig {
            name: name.into(),
            hw,
            classes,
            chiplets: Vec::new(),
            placement: None,
        }
    }

    /// AIB channel hops between the chiplets hosting two classes
    /// (1 when unplaced or co-resident on an unplaced design).
    pub fn chiplet_distance(&self, a: usize, b: usize) -> u32 {
        match &self.placement {
            Some(p) if a < p.len() && b < p.len() => p.distance(a, b).max(1),
            _ => 1,
        }
    }

    /// Total silicon area, mm²: the sum of chiplet areas when
    /// clustered, otherwise the monolithic module-group area plus
    /// per-group routers (see [`monolithic_area_mm2`]).
    pub fn area_mm2(&self) -> f64 {
        if self.chiplets.is_empty() {
            monolithic_area_mm2(&self.classes, &self.hw)
        } else {
            self.chiplets.iter().map(|c| c.area_mm2).sum()
        }
    }

    /// Whether `class` can execute on this configuration.
    ///
    /// `Tanh` layers are implementable by a GELU unit: the GELU block
    /// is built around the characterized tanh core (paper Input #2),
    /// which is how BERT reaches 100 % coverage on `C_3` even though
    /// Table II lists only RELU/GELU/SILU for library L3.
    pub fn supports(&self, class: OpClass) -> bool {
        if self.classes.contains(&class) {
            return true;
        }
        class == OpClass::Activation(ActivationKind::Tanh)
            && self
                .classes
                .contains(&OpClass::Activation(ActivationKind::Gelu))
    }

    /// The class that actually executes `class` (identity, or GELU for
    /// folded Tanh). `None` when unsupported.
    pub fn executing_class(&self, class: OpClass) -> Option<OpClass> {
        if self.classes.contains(&class) {
            Some(class)
        } else if self.supports(class) {
            Some(OpClass::Activation(ActivationKind::Gelu))
        } else {
            None
        }
    }

    /// True when every layer of `model` is implementable — algorithm
    /// coverage `C_layer(i, k) = 100 %`.
    pub fn covers(&self, model: &Model) -> bool {
        model.op_class_counts().keys().all(|&c| self.supports(c))
    }

    /// The first layer class of `model` this configuration cannot
    /// implement, if any.
    pub fn first_missing(&self, model: &Model) -> Option<OpClass> {
        model
            .op_class_counts()
            .keys()
            .copied()
            .find(|&c| !self.supports(c))
    }

    /// The chiplet index hosting `class`, after clustering.
    pub fn chiplet_of(&self, class: OpClass) -> Option<usize> {
        self.chiplets
            .iter()
            .position(|c| c.classes.contains(&class))
    }

    /// Number of chiplet types (the NRE driver).
    pub fn chiplet_count(&self) -> usize {
        self.chiplets.len()
    }

    /// Chiplet areas, mm² (for the NRE model).
    pub fn chiplet_areas(&self) -> Vec<f64> {
        self.chiplets.iter().map(|c| c.area_mm2).collect()
    }

    /// Checks the structural invariants of a (clustered) configuration:
    /// the chiplets partition exactly the configuration's classes, the
    /// placement (when present) covers every chiplet, and every area is
    /// finite and positive.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        for ch in &self.chiplets {
            if ch.classes.is_empty() {
                return Err(format!("chiplet {} has no module groups", ch.name));
            }
            if !(ch.area_mm2.is_finite() && ch.area_mm2 > 0.0) {
                return Err(format!(
                    "chiplet {} has invalid area {}",
                    ch.name, ch.area_mm2
                ));
            }
            for class in &ch.classes {
                if !self.classes.contains(class) {
                    return Err(format!(
                        "chiplet {} carries {class}, which the configuration does not instantiate",
                        ch.name
                    ));
                }
                if !seen.insert(*class) {
                    return Err(format!("{class} appears on two chiplets"));
                }
            }
        }
        if !self.chiplets.is_empty() && seen.len() != self.classes.len() {
            return Err("chiplets do not cover every module group".into());
        }
        if let Some(p) = &self.placement {
            if p.len() != self.chiplets.len() {
                return Err(format!(
                    "placement has {} slots for {} chiplets",
                    p.len(),
                    self.chiplets.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_model::PoolingKind;

    fn classes(list: &[OpClass]) -> BTreeSet<OpClass> {
        list.iter().copied().collect()
    }

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    #[test]
    fn chiplet_area_includes_routers_and_phy() {
        let c = Chiplet::from_classes(
            "L1",
            classes(&[OpClass::Conv2d, OpClass::Activation(ActivationKind::Relu)]),
            &hw(),
        );
        let units = unit_area_mm2(OpClass::Conv2d, &hw())
            + unit_area_mm2(OpClass::Activation(ActivationKind::Relu), &hw());
        assert!(c.area_mm2 > units);
        assert!(c.area_mm2 < units + 1.0);
    }

    #[test]
    fn tanh_folds_into_gelu() {
        let cfg = DesignConfig::monolithic(
            "C_3",
            hw(),
            classes(&[OpClass::Linear, OpClass::Activation(ActivationKind::Gelu)]),
        );
        assert!(cfg.supports(OpClass::Activation(ActivationKind::Tanh)));
        assert_eq!(
            cfg.executing_class(OpClass::Activation(ActivationKind::Tanh)),
            Some(OpClass::Activation(ActivationKind::Gelu))
        );
        // But not the other way around: ReLU does not emulate GELU.
        let relu_only = DesignConfig::monolithic(
            "r",
            hw(),
            classes(&[OpClass::Activation(ActivationKind::Relu)]),
        );
        assert!(!relu_only.supports(OpClass::Activation(ActivationKind::Gelu)));
    }

    #[test]
    fn covers_bert_with_gelu_config() {
        let cfg = DesignConfig::monolithic(
            "C_3",
            hw(),
            classes(&[
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Gelu),
                OpClass::Activation(ActivationKind::Silu),
            ]),
        );
        let bert = claire_model::zoo::bert_base();
        assert!(cfg.covers(&bert));
        assert_eq!(cfg.first_missing(&bert), None);
    }

    #[test]
    fn missing_class_reported() {
        let cfg = DesignConfig::monolithic("c", hw(), classes(&[OpClass::Linear]));
        let alexnet = claire_model::zoo::alexnet();
        assert!(!cfg.covers(&alexnet));
        assert_eq!(cfg.first_missing(&alexnet), Some(OpClass::Conv2d));
    }

    #[test]
    fn clustered_area_is_sum_of_chiplets() {
        let mut cfg =
            DesignConfig::monolithic("c", hw(), classes(&[OpClass::Conv2d, OpClass::Linear]));
        cfg.chiplets = vec![
            Chiplet::from_classes("L1", classes(&[OpClass::Conv2d]), &hw()),
            Chiplet::from_classes("L2", classes(&[OpClass::Linear]), &hw()),
        ];
        let sum: f64 = cfg.chiplet_areas().iter().sum();
        assert!((cfg.area_mm2() - sum).abs() < 1e-12);
        assert_eq!(cfg.chiplet_of(OpClass::Linear), Some(1));
        assert_eq!(cfg.chiplet_of(OpClass::Flatten), None);
    }

    #[test]
    fn table2_style_views() {
        let c = Chiplet::from_classes(
            "L1",
            classes(&[
                OpClass::Conv2d,
                OpClass::Activation(ActivationKind::Relu),
                OpClass::Activation(ActivationKind::Relu6),
                OpClass::Pooling(PoolingKind::MaxPool),
            ]),
            &hw(),
        );
        assert_eq!(
            c.activation_kinds(),
            vec![ActivationKind::Relu, ActivationKind::Relu6]
        );
        assert_eq!(c.pooling_kinds(), vec![PoolingKind::MaxPool]);
        assert_eq!(c.systolic_groups(), 1);
    }

    #[test]
    fn validate_accepts_well_formed_configs() {
        let mut cfg =
            DesignConfig::monolithic("c", hw(), classes(&[OpClass::Conv2d, OpClass::Linear]));
        assert!(cfg.validate().is_ok());
        cfg.chiplets = vec![
            Chiplet::from_classes("L1", classes(&[OpClass::Conv2d]), &hw()),
            Chiplet::from_classes("L2", classes(&[OpClass::Linear]), &hw()),
        ];
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicated_class() {
        let mut cfg =
            DesignConfig::monolithic("c", hw(), classes(&[OpClass::Conv2d, OpClass::Linear]));
        cfg.chiplets = vec![
            Chiplet::from_classes("L1", classes(&[OpClass::Conv2d, OpClass::Linear]), &hw()),
            Chiplet::from_classes("L2", classes(&[OpClass::Linear]), &hw()),
        ];
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("two chiplets"), "{err}");
    }

    #[test]
    fn validate_rejects_uncovered_class() {
        let mut cfg =
            DesignConfig::monolithic("c", hw(), classes(&[OpClass::Conv2d, OpClass::Linear]));
        cfg.chiplets = vec![Chiplet::from_classes(
            "L1",
            classes(&[OpClass::Conv2d]),
            &hw(),
        )];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn monolithic_area_helper_matches_config_area() {
        let cfg = DesignConfig::monolithic(
            "c",
            hw(),
            classes(&[
                OpClass::Conv2d,
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Relu),
            ]),
        );
        let direct = monolithic_area_mm2(&cfg.classes, &cfg.hw);
        assert_eq!(direct.to_bits(), cfg.area_mm2().to_bits());
    }

    #[test]
    fn default_constraints_match_paper() {
        let c = Constraints::default();
        assert_eq!(c.chiplet_area_limit_mm2, 100.0);
        assert_eq!(c.latency_slack, 0.5);
    }
}
