//! The parallel, memoized evaluation engine.
//!
//! Every heavy stage of the CLAIRE pipeline is a map over independent
//! (model × configuration) work items: the DSE sweep evaluates 81
//! hardware points per algorithm, the training phase evaluates every
//! algorithm on every candidate configuration, and the test phase
//! repeats the DSE per test algorithm. [`Engine`] runs those maps on a
//! scoped thread pool and memoizes the per-layer cost model behind a
//! sharded lock, while guaranteeing **bit-identical results at any
//! thread count**:
//!
//! * work items are claimed from an atomic cursor but results are
//!   reassembled by item index, so output order never depends on
//!   scheduling;
//! * each item's computation is a pure function of its inputs (no
//!   cross-item accumulation), so values cannot drift either;
//! * the memo cache stores exact [`LayerCost`] values — a hit returns
//!   precisely what a recomputation would.
//!
//! Thread count resolution: explicit [`DseSpace::threads`] knob, then
//! the `CLAIRE_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use crate::config::{monolithic_area_mm2, DesignConfig};
use crate::evaluate::{ComputeSum, CostProvider, RouteTable, TransferCost};
use crate::fault::FaultPlan;
use crate::telemetry::{self, ArgValue, Gauge, Metric, Telemetry, WorkerSample};
use claire_graph::{louvain_csr_certified, louvain_csr_counted, CsrGraph, Partition};
use claire_model::{LayerKind, OpClass};
use claire_ppa::{layer_cost, unit_area_mm2, DseSpace, HwParams, LayerBatch, LayerCost};
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Read-locks `lock`, recovering from poisoning. Every lock in this
/// module guards a pure memo cache: entries are exact functions of
/// their keys and are only ever *inserted*, so a writer that panicked
/// mid-update can at worst have left a complete entry or no entry —
/// both valid states — and the data behind a poisoned lock is safe to
/// keep serving.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `lock`, recovering from poisoning (see [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A contained panic from a parallel-map worker closure: the item
/// index and the panic payload's message (when it was a string).
/// Convertible into [`crate::ClaireError::WorkerPanic`] so fallible
/// sweeps surface contained panics as typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the work item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a `&str` or `String`.
    pub message: String,
}

impl WorkerPanic {
    fn new(index: usize, payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        WorkerPanic { index, message }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

impl From<WorkerPanic> for String {
    fn from(p: WorkerPanic) -> String {
        p.to_string()
    }
}

/// Number of independently locked cache shards; a small power of two
/// keeps contention negligible at realistic thread counts.
const CACHE_SHARDS: usize = 16;

/// Memo key: a layer's full shape plus the hardware design point.
/// Both are `Copy + Eq + Hash`, and together they determine
/// [`LayerCost`] exactly.
pub(crate) type CacheKey = (LayerKind, HwParams);

/// One cache shard. Keys carry a precomputed [`FxHasher`] hash that
/// doubles as the shard selector, so each lookup hashes exactly once
/// with a multiply-xor hasher instead of twice with SipHash — the
/// analytical cost model is cheap enough that hashing speed decides
/// whether the memo cache wins at all.
pub(crate) type Shard = HashMap<Prehashed, LayerCost, PrehashedState>;

/// Environment variable overriding the engine's thread count.
pub const THREADS_ENV: &str = "CLAIRE_THREADS";

/// Resolves the effective worker count: the explicit `knob` if given,
/// else `CLAIRE_THREADS`, else the machine's available parallelism.
/// Always at least 1.
pub fn resolve_threads(knob: Option<usize>) -> usize {
    knob.or_else(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
    .max(1)
}

/// A point-in-time snapshot of an [`Engine`]'s counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads the engine maps over.
    pub threads: usize,
    /// Whether the layer-cost memo cache is enabled.
    pub cache_enabled: bool,
    /// Layer-cost lookups served from the cache.
    pub cache_hits: u64,
    /// Layer-cost lookups that had to compute (and then stored).
    pub cache_misses: u64,
    /// Distinct (layer, hardware) keys currently cached.
    pub cache_entries: usize,
    /// Route-table lookups served from the topology cache.
    pub route_hits: u64,
    /// Route-table lookups that created a new (topology → table) entry.
    pub route_misses: u64,
    /// Distinct configuration topologies with cached route tables.
    pub route_topologies: usize,
    /// Whole-model compute sums served from the cache.
    pub sum_hits: u64,
    /// Whole-model compute sums computed (and then stored).
    pub sum_misses: u64,
    /// Distinct (model, hardware) compute sums currently cached.
    pub sum_entries: usize,
    /// Louvain partitions served from the canonical-graph cache.
    pub louvain_hits: u64,
    /// Louvain partitions clustered fresh (and then stored).
    pub louvain_misses: u64,
    /// Distinct (canonical graph, resolution) partitions cached.
    pub louvain_entries: usize,
    /// Universal graph + CSR builds served from the cache.
    pub graph_hits: u64,
    /// Universal graph + CSR builds constructed fresh (and stored).
    pub graph_misses: u64,
    /// Distinct (model set, hardware) universal graphs cached.
    pub graph_entries: usize,
    /// Monolithic-area computations served from the per-op-class area
    /// tables.
    pub area_hits: u64,
    /// Monolithic-area computations that built a new per-hardware
    /// area table.
    pub area_misses: u64,
    /// Distinct hardware points with cached area tables.
    pub area_entries: usize,
    /// Distinct layer structures interned (structural memo keys).
    pub struct_entries: usize,
    /// Distinct model instances mapped onto those structures; a gap
    /// over `struct_entries` is exactly the sharing instance-id keys
    /// would have missed.
    pub struct_instances: usize,
    /// DSE points skipped by the staged sweep's area screen.
    pub dse_pruned: u64,
    /// DSE points that survived the screen into full PPA evaluation.
    pub dse_evaluated: u64,
    /// Edge-cost sequences served from the communication memo tier.
    pub comm_hits: u64,
    /// Edge-cost sequences built fresh through bucketed pricing.
    pub comm_misses: u64,
    /// Distinct (model structure, topology) edge-cost sequences cached.
    pub comm_entries: usize,
    /// Louvain partitions served from a certified warm-start interval.
    pub louvain_warm_hits: u64,
    /// Warm-tier consultations that had to cluster fresh.
    pub louvain_warm_misses: u64,
    /// Distinct graphs with certified warm-start entries cached.
    pub louvain_warm_entries: usize,
    /// Multi-member universal graphs assembled from cached members.
    pub merged_graph_builds: u64,
    /// Evaluation items enumerated by the flat execution plan.
    pub plan_items: u64,
    /// Latency lower bounds served from the memo tier.
    pub lb_hits: u64,
    /// Latency lower bounds computed fresh (cycles-only kernel).
    pub lb_misses: u64,
    /// Distinct (model, hardware) lower bounds currently cached.
    pub lb_entries: usize,
    /// DSE points skipped by the latency lower-bound screen.
    pub dse_lb_pruned: u64,
    /// Successive-halving rungs executed by sampled searches.
    pub search_rungs: u64,
    /// Accumulated wall time per pipeline stage, in first-recorded
    /// order.
    pub stages: Vec<(String, Duration)>,
}

impl EngineStats {
    /// Layer-cost cache hit rate in `[0, 1]`; 0 when nothing was
    /// looked up.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.cache_hits, self.cache_misses)
    }

    /// Hit rate across every memo tier (layer costs, route tables,
    /// compute sums, Louvain partitions, universal graphs and area
    /// tables) in `[0, 1]`; 0 when nothing was looked up.
    pub fn overall_hit_rate(&self) -> f64 {
        ratio(
            self.cache_hits
                + self.route_hits
                + self.sum_hits
                + self.louvain_hits
                + self.graph_hits
                + self.area_hits,
            self.cache_misses
                + self.route_misses
                + self.sum_misses
                + self.louvain_misses
                + self.graph_misses
                + self.area_misses,
        )
    }

    /// Compute-sum tier hit rate in `[0, 1]`.
    pub fn sum_hit_rate(&self) -> f64 {
        ratio(self.sum_hits, self.sum_misses)
    }

    /// Area-table tier hit rate in `[0, 1]`.
    pub fn area_hit_rate(&self) -> f64 {
        ratio(self.area_hits, self.area_misses)
    }

    /// Communication edge-cost tier hit rate in `[0, 1]`.
    pub fn comm_hit_rate(&self) -> f64 {
        ratio(self.comm_hits, self.comm_misses)
    }

    /// Louvain warm-start tier hit rate in `[0, 1]`.
    pub fn louvain_warm_hit_rate(&self) -> f64 {
        ratio(self.louvain_warm_hits, self.louvain_warm_misses)
    }

    /// Fraction of DSE points the staged sweep pruned before full
    /// evaluation, in `[0, 1]`; 0 when no sweep ran.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.dse_pruned + self.dse_evaluated;
        if total == 0 {
            0.0
        } else {
            self.dse_pruned as f64 / total as f64
        }
    }

    /// Latency lower-bound tier hit rate in `[0, 1]`.
    pub fn lb_hit_rate(&self) -> f64 {
        ratio(self.lb_hits, self.lb_misses)
    }

    /// Fraction of area-screen survivors the latency lower-bound
    /// screen pruned before exact pricing, in `[0, 1]`; 0 when no
    /// screen ran.
    pub fn lb_pruned_fraction(&self) -> f64 {
        let total = self.dse_lb_pruned + self.dse_evaluated;
        if total == 0 {
            0.0
        } else {
            self.dse_lb_pruned as f64 / total as f64
        }
    }

    /// Total wall time recorded across stages.
    pub fn total_stage_time(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }
}

/// `hits / (hits + misses)`, or 0 with no lookups.
fn ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} thread(s), cache {}",
            self.threads,
            if self.cache_enabled { "on" } else { "off" }
        )?;
        writeln!(
            f,
            "  layer-cost cache: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.cache_entries
        )?;
        writeln!(
            f,
            "  route cache: {} hits / {} misses ({:.1} % hit rate, {} topologies)",
            self.route_hits,
            self.route_misses,
            100.0 * ratio(self.route_hits, self.route_misses),
            self.route_topologies
        )?;
        writeln!(
            f,
            "  compute-sum cache: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.sum_hits,
            self.sum_misses,
            100.0 * ratio(self.sum_hits, self.sum_misses),
            self.sum_entries
        )?;
        writeln!(
            f,
            "  louvain cache: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.louvain_hits,
            self.louvain_misses,
            100.0 * ratio(self.louvain_hits, self.louvain_misses),
            self.louvain_entries
        )?;
        writeln!(
            f,
            "  graph cache: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.graph_hits,
            self.graph_misses,
            100.0 * ratio(self.graph_hits, self.graph_misses),
            self.graph_entries
        )?;
        writeln!(
            f,
            "  area tables: {} hits / {} misses ({:.1} % hit rate, {} hw points)",
            self.area_hits,
            self.area_misses,
            100.0 * self.area_hit_rate(),
            self.area_entries
        )?;
        writeln!(
            f,
            "  comm sequences: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.comm_hits,
            self.comm_misses,
            100.0 * self.comm_hit_rate(),
            self.comm_entries
        )?;
        writeln!(
            f,
            "  louvain warm-start: {} hits / {} misses ({} entries); {} merged graph builds",
            self.louvain_warm_hits,
            self.louvain_warm_misses,
            self.louvain_warm_entries,
            self.merged_graph_builds
        )?;
        writeln!(
            f,
            "  latency lower bounds: {} hits / {} misses ({:.1} % hit rate, {} entries)",
            self.lb_hits,
            self.lb_misses,
            100.0 * self.lb_hit_rate(),
            self.lb_entries
        )?;
        writeln!(
            f,
            "  structural keys: {} structures over {} model instances",
            self.struct_entries, self.struct_instances
        )?;
        writeln!(
            f,
            "  dse screens: {} area-pruned / {} lb-pruned / {} evaluated \
             ({:.1} % area, {:.1} % lb); {} search rungs",
            self.dse_pruned,
            self.dse_lb_pruned,
            self.dse_evaluated,
            100.0 * self.pruned_fraction(),
            100.0 * self.lb_pruned_fraction(),
            self.search_rungs
        )?;
        writeln!(
            f,
            "  overall memo hit rate: {:.1} %",
            100.0 * self.overall_hit_rate()
        )?;
        for (stage, took) in &self.stages {
            writeln!(
                f,
                "  stage {stage:<10} {:>9.3} ms",
                took.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

/// One memo tier: an FxHash map behind a single reader–writer lock.
pub(crate) type MemoMap<K, V> = RwLock<HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>>;

/// The evaluation engine: a thread-count policy, a sharded layer-cost
/// memo cache, and stage/wall-time counters. Cheap to share by
/// reference across the whole pipeline; all interior state is
/// thread-safe.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    cache_enabled: bool,
    pruning_enabled: bool,
    faults: Option<Arc<FaultPlan>>,
    // Tier fields are `pub(crate)` so [`crate::snapshot`] can
    // serialize and restore them without widening the public API.
    pub(crate) shards: Vec<RwLock<Shard>>,
    pub(crate) routes: MemoMap<TopologyKey, Arc<RouteTable>>,
    pub(crate) sums: MemoMap<(u32, HwParams), ComputeSum>,
    pub(crate) louvains: MemoMap<Box<[u64]>, Arc<Partition<OpClass>>>,
    /// Warm-start tier: per canonical graph (resolution-free key), the
    /// certified γ-intervals of prior runs with their partitions.
    pub(crate) louvain_warm: MemoMap<Box<[u64]>, Vec<WarmEntry>>,
    /// Universal-graph tier, keyed by the member models' structural
    /// ids (in member order) plus the hardware point.
    pub(crate) graphs: MemoMap<(Box<[u64]>, HwParams), Arc<UniversalCsr>>,
    /// Communication tier: execution-order per-edge transfer costs,
    /// keyed by (model structural id, configuration topology).
    pub(crate) comms: MemoMap<(u32, TopologyKey), Arc<[TransferCost]>>,
    pub(crate) areas: MemoMap<HwParams, Arc<[f64; OpClass::COUNT]>>,
    /// Lower-bound tier: whole-model compute cycles (latency at
    /// infinite bandwidth), keyed like the compute-sum tier.
    pub(crate) lbs: MemoMap<(u32, HwParams), u64>,
    pub(crate) models: RwLock<ModelInterner>,
    /// The telemetry hub every counter, span and export reads from —
    /// the single source of truth behind [`EngineStats`].
    telemetry: Arc<Telemetry>,
}

/// The structural model interner behind the compute-sum tier's memo
/// keys. Every model maps to a dense **structural id**: models whose
/// layer sequences are element-wise identical share one id (and one
/// preprocessed [`LayerBatch`]), however they were constructed. The
/// content key is the complete `Box<[LayerKind]>` layer sequence — a
/// total encoding, not a hash — so two models share an id only when a
/// compute sum provably cannot distinguish them. A per-instance fast
/// path (keyed by [`claire_model::Model::instance_id`], shared by
/// clones) skips the content comparison after a model's first visit.
#[derive(Debug, Default)]
pub(crate) struct ModelInterner {
    pub(crate) by_instance: HashMap<u64, u32, std::hash::BuildHasherDefault<FxHasher>>,
    pub(crate) by_content: HashMap<Box<[LayerKind]>, u32, std::hash::BuildHasherDefault<FxHasher>>,
    pub(crate) batches: Vec<Arc<LayerBatch>>,
}

impl ModelInterner {
    /// Interns a layer-kind sequence directly (no model instance),
    /// returning its structural id — the snapshot loader's entry
    /// point. Identical id-assignment logic to [`Engine::structural`]:
    /// an existing content entry keeps its id, a new sequence gets the
    /// next dense id and a preprocessed batch.
    pub(crate) fn intern_content(&mut self, kinds: Box<[LayerKind]>) -> u32 {
        match self.by_content.get(&kinds) {
            Some(&sid) => sid,
            None => {
                let sid = self.batches.len() as u32;
                let batch = Arc::new(LayerBatch::from_kinds(kinds.iter()));
                self.batches.push(batch);
                self.by_content.insert(kinds, sid);
                sid
            }
        }
    }
}

/// One warm-start record: a certified open γ-interval and the
/// partition every resolution strictly inside it provably reproduces
/// (see [`claire_graph::GammaInterval`]). Entries for one graph may
/// overlap; any entry containing a resolution serves the identical
/// partition, so lookup order never affects results.
#[derive(Debug, Clone)]
pub(crate) struct WarmEntry {
    pub(crate) lo: f64,
    pub(crate) hi: f64,
    pub(crate) partition: Arc<Partition<OpClass>>,
}

/// A universal graph paired with its interned CSR form, as built and
/// memoized by [`Engine::universal_csr`].
#[derive(Debug, Clone)]
pub struct UniversalCsr {
    /// The merged universal graph `UG` of the model set.
    pub graph: claire_graph::WeightedGraph<OpClass>,
    /// The CSR interning of [`UniversalCsr::graph`].
    pub csr: CsrGraph<OpClass>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(resolve_threads(None))
    }
}

impl Engine {
    /// An engine with an explicit worker count (clamped to ≥ 1) and
    /// the memo cache enabled.
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
            cache_enabled: true,
            pruning_enabled: true,
            faults: None,
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            routes: RwLock::new(HashMap::default()),
            sums: RwLock::new(HashMap::default()),
            louvains: RwLock::new(HashMap::default()),
            louvain_warm: RwLock::new(HashMap::default()),
            graphs: RwLock::new(HashMap::default()),
            comms: RwLock::new(HashMap::default()),
            areas: RwLock::new(HashMap::default()),
            lbs: RwLock::new(HashMap::default()),
            models: RwLock::new(ModelInterner::default()),
            telemetry: Arc::new(Telemetry::new()),
        }
    }

    /// An engine sized by the [`DseSpace::threads`] knob /
    /// `CLAIRE_THREADS` / available parallelism.
    pub fn for_space(space: &DseSpace) -> Self {
        Engine::new(resolve_threads(space.threads))
    }

    /// A single-threaded engine (still memoized) — the serial
    /// reference the determinism tests compare against.
    pub fn serial() -> Self {
        Engine::new(1)
    }

    /// Disables or enables the memo cache (builder style).
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Disables or enables the staged DSE sweep's area screen (builder
    /// style; on by default). With pruning off, [`crate::dse`] sweeps
    /// exhaustively — the reference the equivalence tests and the
    /// profile bench compare the staged path against.
    pub fn with_pruning(mut self, enabled: bool) -> Self {
        self.pruning_enabled = enabled;
        self
    }

    /// Enables or disables trace-span recording (builder style; off
    /// by default). Counters and stage aggregates are always on;
    /// tracing adds the per-span event log behind `--trace-out`.
    pub fn with_tracing(self, enabled: bool) -> Self {
        self.telemetry.set_tracing(enabled);
        self
    }

    /// Attaches a fault-injection plan (builder style). Shards the
    /// plan selects for [`crate::fault::FaultClass::PoisonShard`] are
    /// poisoned immediately — a controlled panic inside each shard's
    /// write guard sets the lock's poison flag, exercising the
    /// poison-recovering accessors on every later lookup.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let plan = Arc::new(plan);
        // Bind before the first decision (shard poisoning below) so
        // every injection lands in the fault counters and the trace.
        plan.attach_telemetry(Arc::clone(&self.telemetry));
        for i in plan.poisoned_shards(self.shards.len()) {
            let shard = &self.shards[i];
            // Panicking while holding the write guard poisons the
            // RwLock; the unwind is contained here so construction
            // itself never propagates a panic.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _guard = shard.write().unwrap_or_else(PoisonError::into_inner);
                panic!("injected shard poison");
            }));
            debug_assert!(shard.is_poisoned());
        }
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The worker count this engine maps with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the staged DSE sweep may screen points on cheap area.
    pub fn pruning_enabled(&self) -> bool {
        self.pruning_enabled
    }

    /// Whether the memo tiers are enabled (snapshots are only
    /// meaningful — and only taken/loaded — when they are).
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// The engine's telemetry hub: counters, spans, histograms and
    /// the trace/metrics exporters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Copies the current cache sizes and thread count into the
    /// telemetry gauges (called before a metrics export so the
    /// snapshot carries them).
    fn sync_gauges(&self) {
        let t = &self.telemetry;
        t.set_gauge(Gauge::Threads, self.threads as u64);
        t.set_gauge(
            Gauge::LayerEntries,
            self.shards
                .iter()
                .map(|s| read_lock(s).len())
                .sum::<usize>() as u64,
        );
        t.set_gauge(Gauge::RouteEntries, read_lock(&self.routes).len() as u64);
        t.set_gauge(Gauge::SumEntries, read_lock(&self.sums).len() as u64);
        t.set_gauge(
            Gauge::LouvainEntries,
            read_lock(&self.louvains).len() as u64,
        );
        t.set_gauge(Gauge::GraphEntries, read_lock(&self.graphs).len() as u64);
        t.set_gauge(Gauge::AreaEntries, read_lock(&self.areas).len() as u64);
        t.set_gauge(Gauge::CommEntries, read_lock(&self.comms).len() as u64);
        t.set_gauge(
            Gauge::LouvainWarmEntries,
            read_lock(&self.louvain_warm).len() as u64,
        );
        t.set_gauge(Gauge::LbEntries, read_lock(&self.lbs).len() as u64);
        let interner = read_lock(&self.models);
        t.set_gauge(Gauge::StructEntries, interner.by_content.len() as u64);
        t.set_gauge(Gauge::StructInstances, interner.by_instance.len() as u64);
    }

    /// A cheap signature of the memo tiers' entry counts, for
    /// dirty-delta checks (e.g. skipping a warm-state checkpoint when
    /// nothing new was memoized). Tiers are insert-only, so equal
    /// signatures across two observations mean no tier grew between
    /// them; the per-tier counts are mixed positionally so growth in
    /// one tier cannot cancel growth in another.
    pub fn tier_signature(&self) -> u64 {
        let counts = [
            self.shards
                .iter()
                .map(|s| read_lock(s).len())
                .sum::<usize>(),
            read_lock(&self.routes).len(),
            read_lock(&self.sums).len(),
            read_lock(&self.louvains).len(),
            read_lock(&self.graphs).len(),
            read_lock(&self.areas).len(),
            read_lock(&self.comms).len(),
            read_lock(&self.louvain_warm).len(),
            read_lock(&self.lbs).len(),
            read_lock(&self.models).by_content.len(),
        ];
        let mut sig = 0xcbf2_9ce4_8422_2325_u64;
        for c in counts {
            sig = (sig ^ c as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        sig
    }

    /// Writes the Chrome Trace Event JSON export to `path` (loadable
    /// in Perfetto or `chrome://tracing`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(&self.telemetry.chrome_trace())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(path, format!("{json}\n"))
    }

    /// Writes the metrics snapshot (counters, gauges, histograms,
    /// stage aggregates, per-worker utilization) as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_metrics(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.sync_gauges();
        let json = serde_json::to_string_pretty(&self.telemetry.metrics_value())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(path, format!("{json}\n"))
    }

    /// Snapshots counters, cache sizes and stage timings — a
    /// read-only view over the telemetry layer plus the memo maps.
    pub fn stats(&self) -> EngineStats {
        let (struct_entries, struct_instances) = {
            let interner = read_lock(&self.models);
            (interner.by_content.len(), interner.by_instance.len())
        };
        let t = &self.telemetry;
        EngineStats {
            threads: self.threads,
            cache_enabled: self.cache_enabled,
            cache_hits: t.counter(Metric::LayerHit),
            cache_misses: t.counter(Metric::LayerMiss),
            cache_entries: self.shards.iter().map(|s| read_lock(s).len()).sum(),
            route_hits: t.counter(Metric::RouteHit),
            route_misses: t.counter(Metric::RouteMiss),
            route_topologies: read_lock(&self.routes).len(),
            sum_hits: t.counter(Metric::SumHit),
            sum_misses: t.counter(Metric::SumMiss),
            sum_entries: read_lock(&self.sums).len(),
            louvain_hits: t.counter(Metric::LouvainHit),
            louvain_misses: t.counter(Metric::LouvainMiss),
            louvain_entries: read_lock(&self.louvains).len(),
            graph_hits: t.counter(Metric::GraphHit),
            graph_misses: t.counter(Metric::GraphMiss),
            graph_entries: read_lock(&self.graphs).len(),
            area_hits: t.counter(Metric::AreaHit),
            area_misses: t.counter(Metric::AreaMiss),
            area_entries: read_lock(&self.areas).len(),
            struct_entries,
            struct_instances,
            dse_pruned: t.counter(Metric::DsePruned),
            dse_evaluated: t.counter(Metric::DseEvaluated),
            comm_hits: t.counter(Metric::CommHit),
            comm_misses: t.counter(Metric::CommMiss),
            comm_entries: read_lock(&self.comms).len(),
            louvain_warm_hits: t.counter(Metric::LouvainWarmHit),
            louvain_warm_misses: t.counter(Metric::LouvainWarmMiss),
            louvain_warm_entries: read_lock(&self.louvain_warm).len(),
            merged_graph_builds: t.counter(Metric::MergedGraphBuilds),
            plan_items: t.counter(Metric::PlanItems),
            lb_hits: t.counter(Metric::LbHit),
            lb_misses: t.counter(Metric::LbMiss),
            lb_entries: read_lock(&self.lbs).len(),
            dse_lb_pruned: t.counter(Metric::DseLbPruned),
            search_rungs: t.counter(Metric::SearchRungs),
            stages: t.stage_aggregates(),
        }
    }

    /// Memoized [`claire_ppa::layer_cost`]: exact, keyed by the full
    /// layer shape and hardware point. When a fault plan is attached,
    /// the computed cost passes through
    /// [`FaultPlan::corrupt_cost`] first; values that come out
    /// non-finite are **never inserted into the cache** — the
    /// finiteness guard at this boundary keeps corrupt entries from
    /// outliving the evaluation that detects them.
    pub fn layer_cost(&self, kind: &LayerKind, hw: &HwParams) -> LayerCost {
        if !self.cache_enabled {
            return self.maybe_corrupt_cost(kind, hw, layer_cost(kind, hw));
        }
        let key = Prehashed::new((*kind, *hw));
        let shard = &self.shards[key.shard()];
        if let Some(cached) = read_lock(shard).get(&key) {
            self.telemetry.count(Metric::LayerHit);
            return *cached;
        }
        let computed = self.maybe_corrupt_cost(kind, hw, layer_cost(kind, hw));
        self.telemetry.count(Metric::LayerMiss);
        if computed.energy_pj.is_finite() {
            write_lock(shard).insert(key, computed);
        }
        computed
    }

    /// Applies the fault plan's PPA corruption to a freshly computed
    /// cost. The injection site is the FxHash of the memo key, so the
    /// same (layer, hardware) pair is corrupted identically however
    /// and wherever it is recomputed.
    fn maybe_corrupt_cost(&self, kind: &LayerKind, hw: &HwParams, cost: LayerCost) -> LayerCost {
        match &self.faults {
            Some(plan) if plan.has_ppa_faults() => {
                let mut hasher = FxHasher::default();
                (*kind, *hw).hash(&mut hasher);
                plan.corrupt_cost(hasher.finish(), cost)
            }
            _ => cost,
        }
    }

    /// Memoized [`crate::evaluate::evaluate`]: full-model PPA with
    /// layer costs served from this engine's cache.
    ///
    /// # Errors
    ///
    /// Same as [`crate::evaluate::evaluate`].
    pub fn evaluate(
        &self,
        model: &claire_model::Model,
        config: &crate::config::DesignConfig,
    ) -> Result<crate::evaluate::PpaReport, crate::error::ClaireError> {
        self.evaluate_with(model, config, crate::evaluate::EvalOptions::default())
    }

    /// Memoized [`crate::evaluate::evaluate_with`].
    ///
    /// # Errors
    ///
    /// Same as [`crate::evaluate::evaluate`].
    pub fn evaluate_with(
        &self,
        model: &claire_model::Model,
        config: &crate::config::DesignConfig,
        opts: crate::evaluate::EvalOptions,
    ) -> Result<crate::evaluate::PpaReport, crate::error::ClaireError> {
        if let Some(plan) = &self.faults {
            if plan.drops_coverage(model.name(), &config.name) {
                return Err(crate::error::ClaireError::IncompleteCoverage {
                    algorithm: model.name().to_owned(),
                    config: config.name.clone(),
                    missing: "UNAVAILABLE (injected coverage drop)".to_owned(),
                });
            }
        }
        crate::evaluate::evaluate_with_costs(model, config, opts, self)
    }

    /// The shared [`RouteTable`] for `config`'s topology: one table
    /// per distinct (classes, chiplet partition, placement) across the
    /// engine's lifetime, so every evaluation of a topology after the
    /// first reuses its routes. Falls back to a fresh per-call table
    /// when the cache is disabled or the topology cannot be encoded
    /// exactly (see [`TopologyKey::of`]).
    pub fn route_table(&self, config: &DesignConfig) -> Arc<RouteTable> {
        // A plan with armed link faults is fixed for the engine's
        // lifetime, so fault-aware tables are as cacheable as plain
        // ones — the fresh table just has to carry the plan too.
        let fresh = || match &self.faults {
            Some(plan) if plan.has_link_faults() => RouteTable::with_link_faults(Arc::clone(plan)),
            _ => RouteTable::new(),
        };
        let key = if self.cache_enabled {
            TopologyKey::of(config)
        } else {
            None
        };
        let Some(key) = key else {
            return Arc::new(fresh());
        };
        if let Some(table) = read_lock(&self.routes).get(&key) {
            self.telemetry.count(Metric::RouteHit);
            return Arc::clone(table);
        }
        self.telemetry.count(Metric::RouteMiss);
        let built = {
            let mut span = self.telemetry.span("route.build", "memo");
            span.arg("chiplets", ArgValue::Int(config.chiplets.len() as u64));
            Arc::new(fresh())
        };
        Arc::clone(write_lock(&self.routes).entry(key).or_insert(built))
    }

    /// Memoized [`claire_graph::louvain_csr`] over a universal graph —
    /// the fourth memo tier. Keyed by the **complete canonical
    /// encoding** of the CSR graph (interned class sequence, adjacency
    /// arrays, bit-exact edge and self-loop weights) plus the
    /// resolution, so a hit provably returns the partition a fresh
    /// clustering would produce: the key is the entire input of the
    /// algorithm, not a lossy hash. Node weights are excluded — Louvain
    /// never reads them, so graphs differing only there share an entry.
    ///
    /// The chiplet-count escalation loop sweeps resolutions over the
    /// same graph, and subsets repeat whole universal graphs across
    /// training and test phases; both patterns hit this tier.
    pub fn louvain_partition(
        &self,
        csr: &CsrGraph<OpClass>,
        resolution: f64,
    ) -> Arc<Partition<OpClass>> {
        if !self.cache_enabled {
            return Arc::new(self.cluster_csr(csr, resolution));
        }
        let key = louvain_key(csr, resolution);
        if let Some(p) = read_lock(&self.louvains).get(&key) {
            self.telemetry.count(Metric::LouvainHit);
            return Arc::clone(p);
        }
        self.telemetry.count(Metric::LouvainMiss);
        let partition = Arc::new(self.cluster_csr(csr, resolution));
        Arc::clone(write_lock(&self.louvains).entry(key).or_insert(partition))
    }

    /// [`Engine::louvain_partition`] for resolution-escalation loops:
    /// consults the **exact tier** first (an O(1) hash probe — repeat
    /// requests at an already-resolved γ, including replays across
    /// processes from a warm-state snapshot, never re-scan
    /// certificates), then the **warm-start tier** — certified
    /// γ-intervals recorded by prior runs on the same canonical graph
    /// (see [`claire_graph::louvain_csr_certified`]). A warm hit
    /// returns a partition *provably* bit-identical to what a fresh
    /// clustering at `resolution` would produce (any γ strictly inside
    /// a certified interval reproduces the certified run's partition,
    /// including the γ the certificate was recorded at), so results
    /// never depend on cache state — and it is **published back into
    /// the exact tier** under the exact `(graph, γ)` key, so repeat-γ
    /// requests stop consulting the interval scan entirely. A miss on
    /// both tiers clusters with certification and records the new
    /// interval.
    ///
    /// The chiplet-count escalation loop re-clusters the same graph at
    /// `γ, 1.5γ, 2.25γ, …`; on strongly clustered communication graphs
    /// the certified interval typically spans several escalation
    /// steps, so the re-runs collapse into lookups.
    pub fn louvain_partition_escalating(
        &self,
        csr: &CsrGraph<OpClass>,
        resolution: f64,
    ) -> Arc<Partition<OpClass>> {
        if !self.cache_enabled {
            return Arc::new(self.cluster_csr(csr, resolution));
        }
        let exact_key = louvain_key(csr, resolution);
        if let Some(p) = read_lock(&self.louvains).get(&exact_key) {
            self.telemetry.count(Metric::LouvainHit);
            return Arc::clone(p);
        }
        let graph_key = louvain_graph_key(csr);
        if let Some(entries) = read_lock(&self.louvain_warm).get(&graph_key) {
            if let Some(e) = entries
                .iter()
                .find(|e| resolution > e.lo && resolution < e.hi)
            {
                self.telemetry.count(Metric::LouvainWarmHit);
                let p = Arc::clone(&e.partition);
                // Publish into the exact tier so repeat-γ requests (and
                // the non-escalating entry point) hit the hash probe.
                write_lock(&self.louvains)
                    .entry(exact_key)
                    .or_insert_with(|| Arc::clone(&p));
                return p;
            }
        }
        self.telemetry.count(Metric::LouvainWarmMiss);
        self.telemetry.count(Metric::LouvainMiss);
        let (partition, cert) = self.cluster_csr_certified(csr, resolution);
        let partition = Arc::new(partition);
        if !cert.is_empty() {
            let (lo, hi) = (cert.lo(), cert.hi());
            let mut warm = write_lock(&self.louvain_warm);
            let entries = warm.entry(graph_key).or_default();
            // Racing derivations of the same γ produce identical
            // certificates; keep one so the entry list (and hence a
            // snapshot of it) never depends on scheduling.
            if !entries
                .iter()
                .any(|e| e.lo.to_bits() == lo.to_bits() && e.hi.to_bits() == hi.to_bits())
            {
                entries.push(WarmEntry {
                    lo,
                    hi,
                    partition: Arc::clone(&partition),
                });
            }
        }
        Arc::clone(
            write_lock(&self.louvains)
                .entry(exact_key)
                .or_insert(partition),
        )
    }

    /// Runs the Louvain clustering kernel under a trace span, counting
    /// the local-move + aggregation rounds it took.
    fn cluster_csr(&self, csr: &CsrGraph<OpClass>, resolution: f64) -> Partition<OpClass> {
        let mut span = self.telemetry.span("louvain.cluster", "memo");
        span.arg("nodes", ArgValue::Int(csr.node_count() as u64));
        let (partition, passes) = louvain_csr_counted(csr, resolution);
        self.telemetry
            .count_by(Metric::LouvainPasses, passes as u64);
        span.arg("passes", ArgValue::Int(passes as u64));
        partition
    }

    /// [`Engine::cluster_csr`] through the certified kernel: the
    /// partition is bit-identical ([`louvain_csr_certified`]'s
    /// contract); the certificate feeds the warm-start tier.
    fn cluster_csr_certified(
        &self,
        csr: &CsrGraph<OpClass>,
        resolution: f64,
    ) -> (Partition<OpClass>, claire_graph::GammaInterval) {
        let mut span = self.telemetry.span("louvain.cluster", "memo");
        span.arg("nodes", ArgValue::Int(csr.node_count() as u64));
        let (partition, passes, cert) = louvain_csr_certified(csr, resolution);
        self.telemetry
            .count_by(Metric::LouvainPasses, passes as u64);
        span.arg("passes", ArgValue::Int(passes as u64));
        (partition, cert)
    }

    /// Memoized universal-graph construction (Step #TR1) with CSR
    /// interning — the fifth memo tier. Keyed by the member models'
    /// **structural ids** (see [`ModelInterner`]), in member order,
    /// plus the hardware point. The key is sound for the same reason
    /// the compute-sum and comm tiers' structural keys are: the graph's
    /// nodes aggregate per-class execution counts from the layer costs
    /// (pure functions of `(LayerKind, HwParams)`) and its edges come
    /// from `Model::edges`, a pure function of the layer-kind sequence
    /// the id interns — so models sharing an id produce bit-identical
    /// graphs. Structural keys (unlike the process-unique instance ids
    /// used previously) are also stable across processes, which lets a
    /// warm-state snapshot replay this tier. On a miss the build
    /// routes layer costs through the layer memo tier.
    ///
    /// The flow re-derives the same universal graphs over and over
    /// (custom-configuration clustering across the train and test
    /// phases, escalation retries, repeated table runs on a shared
    /// engine), and each build walks every layer of every member
    /// model — skipping it dominates the clustering stage's wall time.
    pub fn universal_csr(
        &self,
        models: &[claire_model::Model],
        hw: &HwParams,
    ) -> Arc<UniversalCsr> {
        if !self.cache_enabled {
            return Arc::new(self.build_universal_csr(models, hw));
        }
        let ids: Box<[u64]> = models
            .iter()
            .map(|m| u64::from(self.structural(m).0))
            .collect();
        let key = (ids, *hw);
        if let Some(g) = read_lock(&self.graphs).get(&key) {
            self.telemetry.count(Metric::GraphHit);
            return Arc::clone(g);
        }
        self.telemetry.count(Metric::GraphMiss);
        let built = if models.len() > 1 {
            Arc::new(self.merge_member_graphs(models, hw))
        } else {
            Arc::new(self.build_universal_csr(models, hw))
        };
        Arc::clone(write_lock(&self.graphs).entry(key).or_insert(built))
    }

    /// Multi-member miss path for [`Engine::universal_csr`]: fetch (or
    /// build and intern) each member's **single-model** graph through
    /// the same tier, then merge in member order. Because a merge
    /// re-adds every node and edge weight onto a fresh graph
    /// (`0.0 + w`, exact for the non-negative byte/count weights), the
    /// merged graph is bit-identical to the direct
    /// [`crate::graphs::universal_graph_with_costs`] build — but the
    /// member graphs now hit across *different* model subsets (customs
    /// → generic → library subsets share members), fixing the tier's
    /// zero cold-run hit rate under composite keys.
    fn merge_member_graphs(&self, models: &[claire_model::Model], hw: &HwParams) -> UniversalCsr {
        let mut span = self.telemetry.span("graph.merge", "memo");
        span.arg("models", ArgValue::Int(models.len() as u64));
        self.telemetry.count(Metric::MergedGraphBuilds);
        let mut graph = claire_graph::WeightedGraph::new();
        for m in models {
            let member = self.universal_csr(std::slice::from_ref(m), hw);
            graph.merge(&member.graph);
        }
        let csr = CsrGraph::from_weighted(&graph);
        UniversalCsr { graph, csr }
    }

    /// Builds a universal graph + CSR interning under a trace span.
    fn build_universal_csr(&self, models: &[claire_model::Model], hw: &HwParams) -> UniversalCsr {
        let mut span = self.telemetry.span("graph.build", "memo");
        span.arg("models", ArgValue::Int(models.len() as u64));
        let graph = crate::graphs::universal_graph_with_costs(models, hw, self);
        let csr = CsrGraph::from_weighted(&graph);
        UniversalCsr { graph, csr }
    }

    /// Model-light monolithic area of `classes` under `hw` — the sixth
    /// memo tier, shared by every model the staged DSE sweep screens.
    /// The per-hardware-point table stores `unit_area_mm2` for all
    /// [`OpClass::COUNT`] classes; the sum walks `classes` in the same
    /// `BTreeSet` order and adds the same per-group router term as
    /// [`monolithic_area_mm2`], so the memoized value is bit-identical
    /// to what [`DesignConfig::area_mm2`] computes for an unclustered
    /// configuration.
    pub fn monolithic_area(&self, classes: &BTreeSet<OpClass>, hw: &HwParams) -> f64 {
        if !self.cache_enabled {
            return monolithic_area_mm2(classes, hw);
        }
        let table = self.area_table(hw);
        let units: f64 = classes.iter().map(|&c| table[c.index()]).sum();
        units + classes.len() as f64 * claire_noc::Network::noc().router.area_mm2
    }

    /// The memoized per-op-class area table for `hw`.
    fn area_table(&self, hw: &HwParams) -> Arc<[f64; OpClass::COUNT]> {
        if let Some(t) = read_lock(&self.areas).get(hw) {
            self.telemetry.count(Metric::AreaHit);
            return Arc::clone(t);
        }
        self.telemetry.count(Metric::AreaMiss);
        let mut table = [0.0; OpClass::COUNT];
        for c in OpClass::all() {
            table[c.index()] = unit_area_mm2(c, hw);
        }
        Arc::clone(
            write_lock(&self.areas)
                .entry(*hw)
                .or_insert_with(|| Arc::new(table)),
        )
    }

    /// The structural id and preprocessed [`LayerBatch`] for `model`
    /// (see [`ModelInterner`]).
    fn structural(&self, model: &claire_model::Model) -> (u32, Arc<LayerBatch>) {
        let iid = model.instance_id();
        {
            let interner = read_lock(&self.models);
            if let Some(&sid) = interner.by_instance.get(&iid) {
                return (sid, Arc::clone(&interner.batches[sid as usize]));
            }
        }
        let kinds: Box<[LayerKind]> = model.layers().iter().map(|l| l.kind).collect();
        let mut interner = write_lock(&self.models);
        let sid = match interner.by_content.get(&kinds) {
            Some(&sid) => sid,
            None => {
                let sid = interner.batches.len() as u32;
                let batch = Arc::new(LayerBatch::from_kinds(kinds.iter()));
                interner.batches.push(batch);
                interner.by_content.insert(kinds, sid);
                sid
            }
        };
        interner.by_instance.insert(iid, sid);
        (sid, Arc::clone(&interner.batches[sid as usize]))
    }

    /// The interned preprocessed [`LayerBatch`] for `model` — lets the
    /// search run direct (non-memoized) batch kernels over huge spaces
    /// without re-preprocessing the model per point.
    pub(crate) fn model_batch(&self, model: &claire_model::Model) -> Arc<LayerBatch> {
        self.structural(model).1
    }

    /// Records `n` DSE points skipped by the staged sweep's area
    /// screen.
    pub(crate) fn note_dse_pruned(&self, n: u64) {
        self.telemetry.count_by(Metric::DsePruned, n);
    }

    /// Records `n` DSE points that reached full PPA evaluation.
    pub(crate) fn note_dse_evaluated(&self, n: u64) {
        self.telemetry.count_by(Metric::DseEvaluated, n);
    }

    /// Records `n` items enumerated into a flat execution plan.
    pub(crate) fn note_plan_items(&self, n: u64) {
        self.telemetry.count_by(Metric::PlanItems, n);
    }

    /// Records `n` DSE points skipped by the latency lower-bound
    /// screen.
    pub(crate) fn note_dse_lb_pruned(&self, n: u64) {
        self.telemetry.count_by(Metric::DseLbPruned, n);
    }

    /// Records one executed successive-halving rung.
    pub(crate) fn note_search_rung(&self) {
        self.telemetry.count(Metric::SearchRungs);
    }

    /// Memoized whole-model **compute-cycle lower bound**: the total
    /// compute cycles of `model` under `hw` from the cycles-only
    /// [`LayerBatch::compute_cycles_with`] kernel, keyed like the
    /// compute-sum tier (structural id + hardware point). The cycle
    /// count is bit-equal to [`CostProvider::compute_sum`]'s `cycles`
    /// but skips all of its floating-point energy work — the cheap
    /// low-fidelity pass the search's screens and rungs rank with.
    pub fn compute_cycles_lb(&self, model: &claire_model::Model, hw: &HwParams) -> u64 {
        if !self.cache_enabled {
            // `u64` addition is associative, so the per-layer walk
            // sums to the exact batched value.
            return model
                .layers()
                .iter()
                .map(|l| claire_ppa::layer_cycles(&l.kind, hw))
                .sum();
        }
        let (sid, batch) = self.structural(model);
        let key = (sid, *hw);
        if let Some(&c) = read_lock(&self.lbs).get(&key) {
            self.telemetry.count(Metric::LbHit);
            return c;
        }
        self.telemetry.count(Metric::LbMiss);
        let mut scratch = Vec::new();
        let cycles = batch.compute_cycles_with(hw, &mut scratch);
        *write_lock(&self.lbs).entry(key).or_insert(cycles)
    }

    /// [`Engine::compute_cycles_lb`] in seconds: `cycles / CLOCK_HZ` —
    /// the identical division [`crate::evaluate`] performs for the
    /// compute term of `latency_s`, whose remaining terms (per-edge
    /// transfer latencies) are all nonnegative. Hence
    /// `latency_lower_bound(m, hw) ≤ report.latency_s` holds
    /// *exactly*, not merely within rounding: it is latency at
    /// infinite interconnect bandwidth.
    pub fn latency_lower_bound(&self, model: &claire_model::Model, hw: &HwParams) -> f64 {
        self.compute_cycles_lb(model, hw) as f64 / claire_ppa::tech28::CLOCK_HZ
    }

    /// Whether the DSE latency lower-bound screen may run: pruning on
    /// and **no fault plan attached** — injected PPA corruptions move
    /// exact costs out from under the uncorrupted bound, which would
    /// break the screen's soundness argument.
    pub fn lb_screen_enabled(&self) -> bool {
        self.pruning_enabled && self.faults.is_none()
    }

    /// Runs `f` under a telemetry stage span (accumulated into the
    /// named stage aggregate, and emitted into the trace when tracing
    /// is enabled) and returns its result.
    pub fn time_stage<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.telemetry.stage_span(stage);
        f()
    }

    /// Deterministic parallel map: applies `f` to every item and
    /// returns results in item order, regardless of thread count or
    /// scheduling. Work is claimed from an atomic cursor (so long and
    /// short items balance), and each worker's `(index, result)` pairs
    /// are reassembled into input order afterwards.
    ///
    /// A panic in `f` is contained per item and re-raised for the
    /// **lowest-indexed** panicking item after every worker finishes —
    /// deterministic regardless of which worker hit it first.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for caught in self.par_map_catch(items, &f) {
            match caught {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// [`Engine::par_map`] over fallible work: returns all results in
    /// item order, or the error of the **lowest-indexed** failing item
    /// — the same error a serial left-to-right run would surface. A
    /// panic in `f` counts as that item failing with
    /// [`WorkerPanic`] (converted through the error type's `From`
    /// impl), so a panicking worker can never tear down the sweep.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send + From<WorkerPanic>,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let plan = self.faults.clone();
        let wrapped = |i: usize, t: &T| {
            if let Some(plan) = &plan {
                if plan.panics_worker(i) {
                    panic!("injected fault: worker panic on item {i}");
                }
            }
            f(i, t)
        };
        let mut out = Vec::with_capacity(items.len());
        for (i, caught) in self.par_map_catch(items, &wrapped).into_iter().enumerate() {
            match caught {
                Ok(Ok(r)) => out.push(r),
                Ok(Err(e)) => return Err(e),
                Err(payload) => return Err(E::from(WorkerPanic::new(i, payload.as_ref()))),
            }
        }
        Ok(out)
    }

    /// The shared map core: applies `f` to every item, catching each
    /// item's unwind individually, and returns per-item outcomes in
    /// item order. All items run to completion even when some panic.
    fn par_map_catch<T, R, F>(
        &self,
        items: &[T],
        f: &F,
    ) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        self.telemetry.count_by(Metric::ParItems, n as u64);
        let run_one = |i: usize| {
            let r = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
            if r.is_err() {
                self.telemetry.count(Metric::ParPanics);
                self.telemetry.instant(
                    "par.panic",
                    "item",
                    vec![("index", ArgValue::Int(i as u64))],
                );
            }
            r
        };
        // Nested `par_map` calls (a per-model sweep inside a per-model
        // stage) run serially on the worker that reached them: the outer
        // map already saturates the thread budget, and W x W transient
        // threads would only add scheduling overhead.
        if workers <= 1 || IN_WORKER.with(|w| w.get()) {
            // A *top-level* serial map still publishes a worker-0
            // sample (busy = wall: the only worker never waits), so
            // per-worker utilization and the stage imbalance ratio
            // stay defined on single-threaded runs. Nested maps don't:
            // their time already lands in the enclosing worker's
            // sample, and a second record would double-count it.
            let nested = IN_WORKER.with(|w| w.get());
            if nested || n == 0 {
                return (0..n).map(run_one).collect();
            }
            let wall_start = Instant::now();
            let out: Vec<_> = (0..n).map(run_one).collect();
            let wall = wall_start.elapsed();
            self.telemetry.record_worker(WorkerSample {
                stage: self.telemetry.current_stage(),
                worker: 0,
                busy: wall,
                wall,
                items: n as u64,
            });
            return out;
        }

        let tel = &self.telemetry;
        let stage = tel.current_stage();
        let cursor = AtomicUsize::new(0);
        // Workers start claiming only once every worker thread is up:
        // without the barrier the first-spawned worker drains a short
        // item set before the later spawns even begin, and the busy
        // imbalance the worker samples report measures thread-spawn
        // latency instead of load balance.
        let start = std::sync::Barrier::new(workers);
        let buckets: Vec<Vec<(usize, _)>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let run_one = &run_one;
            let stage = &stage;
            let start = &start;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        IN_WORKER.with(|x| x.set(true));
                        telemetry::set_current_tid(w as u32 + 1);
                        start.wait();
                        let wall_start = Instant::now();
                        let mut busy = Duration::ZERO;
                        let mut items_done = 0u64;
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t0 = Instant::now();
                            let r = {
                                let _span = tel.item_span(i, stage.as_deref());
                                run_one(i)
                            };
                            let took = t0.elapsed();
                            busy += took;
                            items_done += 1;
                            tel.record_item_duration(took);
                            local.push((i, r));
                        }
                        tel.record_worker(WorkerSample {
                            stage: stage.clone(),
                            worker: w,
                            busy,
                            wall: wall_start.elapsed(),
                            items: items_done,
                        });
                        tel.flush_thread_events();
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Unreachable — `run_one` contains every unwind —
                    // but a worker dying some other way must still
                    // not hang the caller.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut slots: Vec<Option<_>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in buckets.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
        let out: Vec<_> = slots.into_iter().flatten().collect();
        assert_eq!(out.len(), n, "every index claimed exactly once");
        out
    }
}

impl CostProvider for Engine {
    fn layer_cost(&self, kind: &LayerKind, hw: &HwParams) -> LayerCost {
        Engine::layer_cost(self, kind, hw)
    }

    fn routes(&self, config: &DesignConfig) -> Arc<RouteTable> {
        Engine::route_table(self, config)
    }

    /// Memoized whole-model compute totals, keyed by the model's
    /// **structural id** (see [`ModelInterner`]) and the hardware
    /// point. Sound because the structural id is derived from the
    /// complete layer sequence — models sharing an id are element-wise
    /// identical, so their sums are too; exact because a miss computes
    /// through the interned [`LayerBatch`], whose accumulation replays
    /// the per-layer reference walk's execution order bit-for-bit.
    fn compute_sum(&self, model: &claire_model::Model, hw: &HwParams) -> ComputeSum {
        // With PPA corruption armed, sums must route through
        // `Engine::layer_cost` layer by layer so each layer's
        // injection site is consulted; the batched kernel (which
        // bypasses per-layer hooks) only serves unfaulted engines.
        if let Some(plan) = &self.faults {
            if plan.has_ppa_faults() {
                let mut cycles: u64 = 0;
                let mut energy_pj = 0.0;
                for layer in model.layers() {
                    let c = self.layer_cost(&layer.kind, hw);
                    cycles += c.cycles;
                    energy_pj += c.energy_pj;
                }
                return ComputeSum { cycles, energy_pj };
            }
        }
        if !self.cache_enabled {
            return raw_compute_sum(model, hw);
        }
        let (sid, batch) = self.structural(model);
        let key = (sid, *hw);
        if let Some(cached) = read_lock(&self.sums).get(&key) {
            self.telemetry.count(Metric::SumHit);
            return *cached;
        }
        self.telemetry.count(Metric::SumMiss);
        let sum = {
            let mut span = self.telemetry.span("sum.batch", "memo");
            span.arg("layers", ArgValue::Int(batch.layer_count() as u64));
            span.arg("families", ArgValue::Int(batch.family_count() as u64));
            self.telemetry.count(Metric::BatchSums);
            batch.compute_sum(hw)
        };
        let computed = ComputeSum {
            cycles: sum.cycles,
            energy_pj: sum.energy_pj,
        };
        // Finiteness guard at the sum-aggregation boundary: a
        // non-finite aggregate is surfaced by the evaluation that
        // produced it but never memoized.
        if computed.energy_pj.is_finite() {
            write_lock(&self.sums).insert(key, computed);
        }
        computed
    }

    /// Memoized per-(model structure, topology) edge-cost sequences —
    /// the comm tier. Keyed by the model's structural id (sound:
    /// `Model::edges` is a pure function of the layer-kind sequence the
    /// id interns) and the exact [`TopologyKey`] encoding. A miss
    /// prices each distinct `(route, bytes)` bucket once and expands it
    /// into the edge-order sequence ([`edge_cost_sequence`]'s
    /// contract), so replay is bit-identical to the per-edge walk.
    /// Returns `None` — routing the evaluator to the legacy walk —
    /// when caching is off, faults are armed (injection sites must see
    /// every pricing call), the topology has no compact encoding, or
    /// the sequence build fails (the walk then surfaces the identical
    /// typed error).
    fn edge_costs(
        &self,
        model: &claire_model::Model,
        config: &DesignConfig,
    ) -> Option<Arc<[TransferCost]>> {
        if !self.cache_enabled || self.faults.is_some() {
            return None;
        }
        let topo = TopologyKey::of(config)?;
        let (sid, _) = self.structural(model);
        let key = (sid, topo);
        if let Some(seq) = read_lock(&self.comms).get(&key) {
            self.telemetry.count(Metric::CommHit);
            return Some(Arc::clone(seq));
        }
        let routes = self.route_table(config);
        let seq = crate::evaluate::edge_cost_sequence(model, config, &routes).ok()?;
        self.telemetry.count(Metric::CommMiss);
        let seq: Arc<[TransferCost]> = seq.into();
        Some(Arc::clone(
            write_lock(&self.comms).entry(key).or_insert(seq),
        ))
    }

    /// Monolithic configurations price their area through the memoized
    /// per-op-class tables (bit-identical to
    /// [`DesignConfig::area_mm2`]); clustered configurations fall back
    /// to the direct sum over chiplet areas.
    fn config_area(&self, config: &DesignConfig) -> f64 {
        if config.chiplets.is_empty() {
            self.monolithic_area(&config.classes, &config.hw)
        } else {
            config.area_mm2()
        }
    }
}

/// The reference per-layer summation, identical in value and order to
/// the [`CostProvider`] default implementation. The compute-sum miss
/// path calls the raw cost model directly: at ~10 ns per layer the
/// analytical kernel is cheaper than any locked lookup, so per-layer
/// memoization inside a whole-model miss can only lose time. The
/// per-layer cache still serves paths that consult layers one at a
/// time (weight-streaming evaluation and direct `layer_cost` calls).
fn raw_compute_sum(model: &claire_model::Model, hw: &HwParams) -> ComputeSum {
    let mut cycles: u64 = 0;
    let mut energy_pj = 0.0;
    for layer in model.layers() {
        let c = layer_cost(&layer.kind, hw);
        cycles += c.cycles;
        energy_pj += c.energy_pj;
    }
    ComputeSum { cycles, energy_pj }
}

/// An exact, compact encoding of everything [`crate::evaluate::route_of`]
/// reads from a configuration: the monolithic class set, the chiplet
/// partition (as per-chiplet class bitmasks in order), and the
/// interposer slots. Two configs with equal keys provably yield
/// identical routes for every class pair — the key is a complete
/// encoding, not a hash, so route-cache hits cannot collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct TopologyKey {
    /// Bitmask over [`OpClass::index`] of the configuration's classes.
    pub(crate) classes: u16,
    /// Per-chiplet class bitmasks, in chiplet order (0 = unused slot).
    pub(crate) chiplets: [u16; OpClass::COUNT],
    /// Interposer slot per chiplet; `(u8::MAX, u8::MAX)` when unplaced.
    pub(crate) slots: [(u8, u8); OpClass::COUNT],
    /// Number of chiplets (0 = monolithic).
    pub(crate) n_chiplets: u8,
}

impl TopologyKey {
    /// Encodes `config`, or `None` when it falls outside the compact
    /// representation (more chiplets than op classes, or slot
    /// coordinates ≥ 255 — neither occurs for configurations built by
    /// this crate, but hand-written ones must not be mis-cached).
    fn of(config: &DesignConfig) -> Option<TopologyKey> {
        fn mask(classes: &std::collections::BTreeSet<OpClass>) -> u16 {
            classes.iter().fold(0u16, |m, c| m | (1 << c.index()))
        }
        if config.chiplets.len() > OpClass::COUNT {
            return None;
        }
        let mut chiplets = [0u16; OpClass::COUNT];
        let mut slots = [(u8::MAX, u8::MAX); OpClass::COUNT];
        for (i, chiplet) in config.chiplets.iter().enumerate() {
            chiplets[i] = mask(&chiplet.classes);
            if let Some(p) = &config.placement {
                if i < p.len() {
                    let (x, y) = p.slot(i);
                    if x >= u8::MAX.into() || y >= u8::MAX.into() {
                        return None;
                    }
                    slots[i] = (x as u8, y as u8);
                }
            }
        }
        Some(TopologyKey {
            classes: mask(&config.classes),
            chiplets,
            slots,
            n_chiplets: config.chiplets.len() as u8,
        })
    }
}

/// The canonical Louvain memo key: every array [`claire_graph::louvain_csr`]
/// reads, flattened to `u64` words (floats by `to_bits`, so two graphs
/// share a key only when every weight is bit-identical), plus the
/// resolution. Degrees and `2m` are derived from these arrays and need
/// no words of their own.
fn louvain_key(csr: &CsrGraph<OpClass>, resolution: f64) -> Box<[u64]> {
    let mut key = louvain_graph_key_vec(csr);
    key.push(resolution.to_bits());
    key.into_boxed_slice()
}

/// The resolution-free prefix of [`louvain_key`]: the canonical graph
/// encoding alone, keying the warm-start tier (whose entries each carry
/// their own certified resolution interval).
fn louvain_graph_key(csr: &CsrGraph<OpClass>) -> Box<[u64]> {
    louvain_graph_key_vec(csr).into_boxed_slice()
}

fn louvain_graph_key_vec(csr: &CsrGraph<OpClass>) -> Vec<u64> {
    let n = csr.node_count();
    let e = csr.targets().len();
    let mut key = Vec::with_capacity(2 + n * 3 + e * 2 + 2);
    key.push(n as u64);
    key.extend(csr.keys().iter().map(|c| c.index() as u64));
    key.extend(csr.offsets().iter().map(|&o| u64::from(o)));
    key.extend(csr.targets().iter().map(|&t| u64::from(t)));
    key.extend(csr.weights().iter().map(|w| w.to_bits()));
    key.extend(csr.self_loops().iter().map(|w| w.to_bits()));
    key
}

thread_local! {
    /// True on threads spawned by [`Engine::par_map`]; forces nested
    /// maps serial. Worker threads are scope-local, so the flag never
    /// leaks to reused threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A cache key bundled with its hash, computed once per lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Prehashed {
    hash: u64,
    pub(crate) key: CacheKey,
}

impl Prehashed {
    pub(crate) fn new(key: CacheKey) -> Self {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        Prehashed {
            hash: hasher.finish(),
            key,
        }
    }

    /// Shard index from the hash's middle bits — disjoint from both
    /// the low bits (hashbrown's bucket index) and the top bits (its
    /// control tag), so sharding does not degrade bucket spread.
    /// Shard choice affects only lock distribution, never results.
    pub(crate) fn shard(&self) -> usize {
        ((self.hash >> 32) as usize) % CACHE_SHARDS
    }
}

impl Hash for Prehashed {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Build-hasher for [`Shard`] maps: keys already carry their hash, so
/// the map's hasher just passes the stored `u64` through.
#[derive(Debug, Clone, Default)]
pub(crate) struct PrehashedState;

impl BuildHasher for PrehashedState {
    type Hasher = PassThroughHasher;

    fn build_hasher(&self) -> PassThroughHasher {
        PassThroughHasher(0)
    }
}

/// Identity hasher over a single `write_u64`.
pub(crate) struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed keys hash via write_u64 only");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// Multiply-rotate-xor hasher in the style of rustc's FxHash: a few
/// cycles per word instead of SipHash's per-byte mixing. Deterministic
/// (no random state); hash quality only affects bucket spread, never
/// results.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 32] {
            let engine = Engine::new(threads);
            let got = engine.par_map(&items, |_, &x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn nested_par_map_is_serial_but_correct() {
        let engine = Engine::new(4);
        let outer: Vec<u32> = (0..8).collect();
        let got = engine.par_map(&outer, |_, &x| {
            let inner: Vec<u32> = (0..5).collect();
            engine.par_map(&inner, |_, &y| x * 10 + y)
        });
        for (x, row) in outer.iter().zip(&got) {
            let want: Vec<u32> = (0..5).map(|y| x * 10 + y).collect();
            assert_eq!(row, &want);
        }
    }

    #[test]
    fn warm_certificate_serves_distinct_gamma_and_publishes_exact() {
        let engine = Engine::new(1);
        let mut g = claire_graph::WeightedGraph::new();
        // Two dense pairs bridged weakly — enough structure for a
        // non-trivial γ-certificate around the query resolution.
        g.add_edge(OpClass::Conv2d, OpClass::Linear, 8.0);
        g.add_edge(OpClass::Conv1d, OpClass::Flatten, 8.0);
        g.add_edge(OpClass::Linear, OpClass::Conv1d, 1.0);
        let csr = CsrGraph::from_weighted(&g);

        let base = engine.louvain_partition_escalating(&csr, 1.0);
        let s = engine.stats();
        assert_eq!((s.louvain_warm_hits, s.louvain_hits), (0, 0), "{s:?}");

        // Read back the recorded certificate and pick a *distinct*
        // resolution strictly inside it.
        let (lo, hi) = {
            let warm = read_lock(&engine.louvain_warm);
            let entries = warm
                .get(&louvain_graph_key(&csr))
                .expect("derivation recorded a certificate");
            (entries[0].lo, entries[0].hi)
        };
        let gamma = if hi.is_finite() {
            (1.0 + hi) / 2.0
        } else if lo.is_finite() {
            1.0 + (1.0 - lo).abs() + 1.0
        } else {
            2.0
        };
        assert!(gamma > lo && gamma < hi && gamma != 1.0);

        let served = engine.louvain_partition_escalating(&csr, gamma);
        assert!(Arc::ptr_eq(&base, &served));
        assert_eq!(engine.stats().louvain_warm_hits, 1);

        // The warm hit published the resolved partition into the
        // exact tier: the repeat-γ request is now a hash probe, not a
        // certificate scan.
        let again = engine.louvain_partition_escalating(&csr, gamma);
        assert!(Arc::ptr_eq(&base, &again));
        let s = engine.stats();
        assert_eq!((s.louvain_warm_hits, s.louvain_hits), (1, 1), "{s:?}");
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let engine = Engine::new(8);
        assert_eq!(engine.par_map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(engine.par_map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let engine = Engine::new(8);
        let items: Vec<usize> = (0..64).collect();
        let err = engine
            .try_par_map(&items, |_, &x| {
                if x % 7 == 3 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(
            err, "bad 3",
            "serial semantics: first failure in item order"
        );
    }

    #[test]
    fn try_par_map_contains_panics_as_typed_errors() {
        for threads in [1, 2, 8] {
            let engine = Engine::new(threads);
            let items: Vec<usize> = (0..32).collect();
            let err: String = engine
                .try_par_map(&items, |_, &x| -> Result<usize, String> {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    Ok(x)
                })
                .unwrap_err();
            assert!(err.contains("item 5"), "threads {threads}: {err}");
            assert!(err.contains("boom at 5"), "threads {threads}: {err}");
        }
    }

    #[test]
    fn try_par_map_prefers_lowest_index_among_error_and_panic() {
        let engine = Engine::new(4);
        let items: Vec<usize> = (0..16).collect();
        // Item 2 errors, item 6 panics: the lower index wins.
        let err: String = engine
            .try_par_map(&items, |_, &x| {
                if x == 6 {
                    panic!("late panic");
                }
                if x == 2 {
                    Err("early error".to_owned())
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err, "early error");
    }

    #[test]
    fn par_map_reraises_lowest_index_panic_after_completion() {
        let engine = Engine::new(4);
        let items: Vec<usize> = (0..16).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            engine.par_map(&items, |_, &x| {
                if x == 3 || x == 11 {
                    panic!("p{x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert_eq!(msg, "p3", "lowest-indexed panic is the one re-raised");
    }

    #[test]
    fn poisoned_engine_locks_recover() {
        use claire_model::{Activation, ActivationKind};
        let plan = crate::fault::FaultPlan::new(9).with(crate::fault::FaultClass::PoisonShard, 1.0);
        let engine = Engine::new(2).with_faults(plan);
        assert!(engine.shards.iter().all(|s| s.is_poisoned()));
        let kind = LayerKind::Activation(Activation {
            kind: ActivationKind::Relu,
            elements: 64,
        });
        let hw = HwParams::new(16, 16, 8, 8);
        let first = engine.layer_cost(&kind, &hw);
        let second = engine.layer_cost(&kind, &hw);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1, "poisoned shard still serves hits");
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        use claire_model::{Activation, ActivationKind};
        let engine = Engine::new(2);
        let kind = LayerKind::Activation(Activation {
            kind: ActivationKind::Relu,
            elements: 1024,
        });
        let hw = HwParams::new(32, 32, 16, 16);
        let first = engine.layer_cost(&kind, &hw);
        let second = engine.layer_cost(&kind, &hw);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_stays_empty_and_exact() {
        use claire_model::Linear;
        let engine = Engine::new(1).with_cache(false);
        let kind = LayerKind::Linear(Linear {
            in_features: 256,
            out_features: 128,
            tokens: 4,
        });
        let hw = HwParams::new(16, 16, 8, 8);
        assert_eq!(engine.layer_cost(&kind, &hw), layer_cost(&kind, &hw));
        let stats = engine.stats();
        assert!(!stats.cache_enabled);
        assert_eq!(stats.cache_entries, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn stage_timer_accumulates_by_name() {
        let engine = Engine::serial();
        let v = engine.time_stage("demo", || 41) + engine.time_stage("demo", || 1);
        assert_eq!(v, 42);
        let stats = engine.stats();
        assert_eq!(stats.stages.len(), 1);
        assert_eq!(stats.stages[0].0, "demo");
        assert!(stats.total_stage_time() >= stats.stages[0].1);
        assert!(stats.to_string().contains("stage demo"));
    }

    #[test]
    fn thread_resolution_prefers_knob() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "clamped to >= 1");
        assert!(resolve_threads(None) >= 1);
    }
}
