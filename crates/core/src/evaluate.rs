//! PPA evaluation of an algorithm on a design configuration,
//! including NoC (intra-chiplet) and NoP (inter-chiplet)
//! communication — Step #TR3's "The PPA performance of the design
//! configurations is updated by applying NoP characteristics for
//! inter-chiplet communication and NoC characteristics for
//! intra-chiplet communication."

use crate::config::DesignConfig;
use crate::error::ClaireError;
use claire_model::{Model, OpClass};
use claire_noc::{Network, Torus2d};
use claire_ppa::{layer_cost, tech28};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

/// Energy-accounting options for [`evaluate_with`].
///
/// The paper's reported energy is dynamic-only (it notes that "power
/// gating for underutilized units was not applied" and that energy
/// still varied by only 0.2 % — i.e. idle-unit leakage is outside its
/// model). [`EvalOptions::default`] matches that setting; the
/// power-gating ablation bench turns leakage on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalOptions {
    /// Add static (leakage) energy `P_leak · area · latency`.
    pub include_leakage: bool,
    /// With leakage on: gate idle module groups so only groups the
    /// algorithm actually exercises (plus interconnect) leak.
    pub power_gating: bool,
    /// Off-chip weight-streaming model: each systolic layer's time
    /// becomes `max(compute, weight streaming)` (double-buffered) and
    /// its access energy is added. `None` (default) reproduces the
    /// paper's compute-only accounting.
    pub memory: Option<claire_ppa::MemoryModel>,
}

/// The performance metrics of Output #TR3/#TT3: latency, energy, area
/// and power density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpaReport {
    /// End-to-end inference latency, seconds (sequential layers:
    /// compute + communication).
    pub latency_s: f64,
    /// Total energy, joules (compute + NoC + NoP + any leakage).
    pub energy_j: f64,
    /// Configuration silicon area, mm².
    pub area_mm2: f64,
    /// Energy spent on inter-chiplet (NoP) transfers, joules.
    pub nop_energy_j: f64,
    /// Energy spent on intra-chiplet (NoC) transfers, joules.
    pub noc_energy_j: f64,
    /// Static (leakage) energy, joules — 0 under the paper's
    /// dynamic-only accounting.
    pub leakage_j: f64,
}

impl PpaReport {
    /// Average power, watts.
    pub fn power_w(&self) -> f64 {
        self.energy_j / self.latency_s
    }

    /// Power density, W/mm².
    pub fn power_density_w_per_mm2(&self) -> f64 {
        self.power_w() / self.area_mm2
    }
}

/// Cost of one inter-unit transfer on a configuration — shared between
/// the analytical evaluator and the discrete-event simulator so the
/// two can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferCost {
    /// Channel-serialisation cycles (payload / channel width; counted
    /// on both networks for a cross-chiplet transfer).
    pub ser_cycles: u64,
    /// Fixed per-transfer cycles (router hops, NoP PHY traversal).
    pub fixed_cycles: u64,
    /// Whether the transfer crosses a chiplet boundary (NoP).
    pub crosses_chiplet: bool,
    /// NoC energy, whole picojoules ×1000 (fixed-point to keep `Eq`).
    /// `pub(crate)` so [`crate::snapshot`] can serialize the comm tier.
    pub(crate) noc_mpj: u64,
    /// NoP energy, milli-picojoules.
    pub(crate) nop_mpj: u64,
}

impl TransferCost {
    /// Total transfer latency, seconds.
    pub fn latency_s(&self) -> f64 {
        (self.ser_cycles + self.fixed_cycles) as f64 / tech28::CLOCK_HZ
    }

    /// NoC energy, pJ.
    pub fn noc_pj(&self) -> f64 {
        self.noc_mpj as f64 / 1000.0
    }

    /// NoP energy, pJ.
    pub fn nop_pj(&self) -> f64 {
        self.nop_mpj as f64 / 1000.0
    }
}

/// The bytes-independent part of a transfer between two unit classes:
/// whether it crosses a chiplet boundary and the hop distance it pays
/// (NoC torus hops on a shared die, AIB channel hops across dies).
/// Determined entirely by the configuration's topology — classes,
/// chiplet partition, and interposer placement — never by the payload
/// or the hardware parameters, which is what makes routes memoizable
/// across every evaluation of a topology (see [`RouteTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRoute {
    /// Whether the transfer pays the NoP (crosses a chiplet boundary).
    pub crosses_chiplet: bool,
    /// NoC torus hops when on one die; AIB channel hops when crossing.
    pub hops: u32,
}

/// Computes the route between two **distinct** unit classes on
/// `config` — the expensive part of [`edge_transfer`] (die lookup,
/// torus fitting, position search).
pub fn route_of(
    config: &DesignConfig,
    from: claire_model::OpClass,
    to: claire_model::OpClass,
) -> EdgeRoute {
    // With no fault plan every class pair routes, so the fallback is
    // unreachable.
    route_of_avoiding(config, from, to, None).unwrap_or(EdgeRoute {
        crosses_chiplet: false,
        hops: 0,
    })
}

/// [`route_of`] under an optional fault plan whose failed torus links
/// must be routed around. Returns `None` when every surviving path is
/// severed (only possible with a plan). With `faults == None` this is
/// exactly [`route_of`]: same-die hop counts come from the intact
/// torus's XY distance.
pub(crate) fn route_of_avoiding(
    config: &DesignConfig,
    from: claire_model::OpClass,
    to: claire_model::OpClass,
    faults: Option<&crate::fault::FaultPlan>,
) -> Option<EdgeRoute> {
    let cross = match (config.chiplet_of(from), config.chiplet_of(to)) {
        (Some(x), Some(y)) if x != y => Some((x, y)),
        _ => None, // same chiplet or monolithic
    };
    match cross {
        // Cross-chiplet transfers ride dedicated AIB channels, not the
        // torus, so link faults never sever them.
        Some((x, y)) => Some(EdgeRoute {
            crosses_chiplet: true,
            hops: config.chiplet_distance(x, y),
        }),
        None => {
            // Same chiplet (or monolithic): NoC with hop distance on
            // the torus of the die hosting both units — the chiplet's
            // own torus once clustered, the whole configuration's
            // before.
            let classes: Vec<_> = match config.chiplet_of(from) {
                Some(c) => config.chiplets[c].classes.iter().copied().collect(),
                None => config.classes.iter().copied().collect(),
            };
            let position = |class| classes.binary_search(&class).unwrap_or(0) as u32;
            let torus = Torus2d::fitting(classes.len());
            let a = position(from) % torus.size();
            let b = position(to) % torus.size();
            let hops = match faults {
                Some(plan) if plan.has_link_faults() => {
                    let (hops, expanded) = torus.hops_avoiding_counted(a, b, &|u, v| {
                        plan.link_failed(torus.cols(), torus.rows(), u, v)
                    });
                    if let Some(t) = plan.telemetry() {
                        t.count(crate::telemetry::Metric::NocReroutes);
                        t.count_by(
                            crate::telemetry::Metric::NocRerouteVisited,
                            u64::from(expanded),
                        );
                    }
                    hops?
                }
                _ => torus.hops(a, b),
            };
            Some(EdgeRoute {
                crosses_chiplet: false,
                hops,
            })
        }
    }
}

/// Prices `bytes` over a precomputed [`EdgeRoute`] — the cheap part of
/// [`edge_transfer`].
pub fn transfer_on_route(route: EdgeRoute, bytes: u64) -> TransferCost {
    let noc = Network::noc();
    let nop = Network::nop_aib2();
    let ser = (bytes as f64 / noc.bytes_per_cycle()).ceil() as u64;
    if route.crosses_chiplet {
        // AIB channel hops per the interposer placement (adjacent dies
        // = 1) plus a local NoC hop on each side: two serialisations
        // and both networks' hop latencies.
        let d = route.hops;
        TransferCost {
            ser_cycles: 2 * ser,
            fixed_cycles: u64::from(nop.router.hop_cycles) * u64::from(d)
                + 2 * u64::from(noc.router.hop_cycles),
            crosses_chiplet: true,
            noc_mpj: (noc.energy_pj(bytes, 2) * 1000.0).round() as u64,
            nop_mpj: (nop.energy_pj(bytes, d) * 1000.0).round() as u64,
        }
    } else {
        TransferCost {
            ser_cycles: ser,
            fixed_cycles: u64::from(noc.router.hop_cycles) * u64::from(route.hops),
            crosses_chiplet: false,
            noc_mpj: (noc.energy_pj(bytes, route.hops) * 1000.0).round() as u64,
            nop_mpj: 0,
        }
    }
}

/// Computes the transfer cost of moving `bytes` from unit class `from`
/// to unit class `to` on `config` (Step #TR3's NoC-inside / NoP-across
/// rule). A transfer between identical classes is free.
pub fn edge_transfer(
    config: &DesignConfig,
    from: claire_model::OpClass,
    to: claire_model::OpClass,
    bytes: u64,
) -> TransferCost {
    if from == to {
        return TransferCost {
            ser_cycles: 0,
            fixed_cycles: 0,
            crosses_chiplet: false,
            noc_mpj: 0,
            nop_mpj: 0,
        };
    }
    transfer_on_route(route_of(config, from, to), bytes)
}

/// A lazily filled per-class-pair route matrix for one configuration
/// topology. Cells are [`OnceLock`]s, so a table shared across threads
/// (from the engine's topology cache) fills each pair at most once and
/// every later edge pays a single atomic load. A table may carry a
/// fault plan with failed torus links; its routes then detour around
/// the dead links (degraded hop counts) and a severed class pair
/// memoizes as unroutable.
#[derive(Debug, Default)]
pub struct RouteTable {
    cells: [[OnceLock<Option<EdgeRoute>>; OpClass::COUNT]; OpClass::COUNT],
    faults: Option<Arc<crate::fault::FaultPlan>>,
}

impl RouteTable {
    /// An empty table with no link faults.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// An empty table whose routes avoid the plan's failed links.
    pub fn with_link_faults(plan: Arc<crate::fault::FaultPlan>) -> Self {
        RouteTable {
            cells: Default::default(),
            faults: Some(plan),
        }
    }

    /// The route between two **distinct** classes, computing and
    /// memoizing it on first use. `config` must have the topology this
    /// table was created for.
    ///
    /// # Errors
    ///
    /// Returns [`ClaireError::NoRoute`] when failed links disconnect
    /// the pair (only possible on a table built with
    /// [`RouteTable::with_link_faults`]).
    pub fn route(
        &self,
        config: &DesignConfig,
        from: claire_model::OpClass,
        to: claire_model::OpClass,
    ) -> Result<EdgeRoute, ClaireError> {
        (*self.cells[from.index()][to.index()]
            .get_or_init(|| route_of_avoiding(config, from, to, self.faults.as_deref())))
        .ok_or_else(|| ClaireError::NoRoute {
            from: from.label(),
            to: to.label(),
        })
    }
}

/// A model's summed compute cost under one hardware point with the
/// paper-default (compute-only) accounting — a pure function of the
/// model's layer sequence and `hw`, independent of the configuration's
/// classes, chiplet partition, or placement. That independence is what
/// lets the engine reuse one sum across the custom sweep, the generic
/// `set_config`, and the library `set_config`s, which all evaluate the
/// same `(model, hw)` pairs on different configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeSum {
    /// Total compute cycles across all layers.
    pub cycles: u64,
    /// Total compute energy, pJ.
    pub energy_pj: f64,
}

/// The evaluator's hot computations, pluggable so the engine can
/// memoize them (see [`crate::parallel::Engine`]). Implementations
/// must behave as pure functions of their arguments; the defaults are
/// the reference implementations.
pub trait CostProvider: Sync {
    /// Per-layer compute cost under `hw`.
    fn layer_cost(
        &self,
        kind: &claire_model::LayerKind,
        hw: &claire_ppa::HwParams,
    ) -> claire_ppa::LayerCost {
        layer_cost(kind, hw)
    }

    /// Whole-model compute totals under `hw` (compute-only accounting;
    /// the weight-streaming path stays per-layer in the evaluator).
    fn compute_sum(&self, model: &Model, hw: &claire_ppa::HwParams) -> ComputeSum {
        let mut cycles: u64 = 0;
        let mut energy_pj = 0.0;
        for layer in model.layers() {
            let c = self.layer_cost(&layer.kind, hw);
            cycles += c.cycles;
            energy_pj += c.energy_pj;
        }
        ComputeSum { cycles, energy_pj }
    }

    /// The route table to consult for `config`'s edges. The default
    /// returns a fresh table per call (per-pair memoization within one
    /// evaluation only); the engine shares tables across evaluations
    /// of the same topology.
    fn routes(&self, config: &DesignConfig) -> Arc<RouteTable> {
        let _ = config;
        Arc::new(RouteTable::new())
    }

    /// Silicon area of `config`. The default computes it directly;
    /// the engine serves monolithic configurations from its memoized
    /// per-op-class area tables. Implementations must return a value
    /// bit-identical to [`DesignConfig::area_mm2`].
    fn config_area(&self, config: &DesignConfig) -> f64 {
        config.area_mm2()
    }

    /// The execution-order per-edge transfer-cost sequence for
    /// `(model, config)`, if the provider has one. `Some(seq)` makes
    /// the evaluator replay `seq` instead of walking `model.edges()`
    /// through [`RouteTable::route`]; the sequence must be exactly
    /// what [`edge_cost_sequence`] returns for the pair (same values,
    /// same order, same-class edges excluded), which makes the replay
    /// bit-identical to the walk. `None` (the default) keeps the
    /// direct walk — also the escape hatch when the sequence cannot
    /// be built (coverage/route errors must surface from the walk's
    /// own error path).
    fn edge_costs(&self, model: &Model, config: &DesignConfig) -> Option<Arc<[TransferCost]>> {
        let _ = (model, config);
        None
    }
}

/// The uncached reference [`CostProvider`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectCosts;

impl CostProvider for DirectCosts {}

/// Builds the execution-order sequence of per-edge [`TransferCost`]s
/// for `(model, config)` using aggregated `(route, bytes)` buckets:
/// each distinct bucket is priced through [`transfer_on_route`] once
/// and every later edge in the same bucket reuses the priced cost.
/// [`TransferCost`]'s fields are integer/fixed-point, so a bucket hit
/// returns a value bit-identical to repricing — replaying the
/// sequence in order is therefore bit-identical to the evaluator's
/// per-class-pair walk. Same-class edges are free and excluded, as in
/// the walk.
///
/// This is the miss path of the engine's per-`(model, topology)`
/// communication memo tier, and the reference the bucket-costing
/// property tests pin.
///
/// # Errors
///
/// Exactly the walk's errors: [`ClaireError::IncompleteCoverage`] for
/// a class `config` cannot execute, [`ClaireError::NoRoute`] when a
/// fault-carrying `routes` table has the pair severed.
pub fn edge_cost_sequence(
    model: &Model,
    config: &DesignConfig,
    routes: &RouteTable,
) -> Result<Vec<TransferCost>, ClaireError> {
    let executing = |c: OpClass| {
        config
            .executing_class(c)
            .ok_or_else(|| ClaireError::IncompleteCoverage {
                algorithm: model.name().to_owned(),
                config: config.name.clone(),
                missing: c.label(),
            })
    };
    let mut buckets: std::collections::HashMap<(EdgeRoute, u64), TransferCost> =
        std::collections::HashMap::new();
    let mut seq = Vec::new();
    for (a, b, bytes) in model.edges() {
        let (ea, eb) = (executing(a)?, executing(b)?);
        if ea == eb {
            continue; // same-class transfers are free
        }
        let route = routes.route(config, ea, eb)?;
        let t = *buckets
            .entry((route, bytes))
            .or_insert_with(|| transfer_on_route(route, bytes));
        seq.push(t);
    }
    Ok(seq)
}

/// Evaluates `model` on `config`.
///
/// Compute follows the analytical unit models under the
/// configuration's hardware parameters. Each inter-layer transfer
/// rides the NoC when producer and consumer units share a chiplet
/// (hop count from the chiplet's own 2-D torus placement) and one NoP
/// (AIB) channel hop plus local NoC hops when they do not. A
/// monolithic (unclustered) configuration uses NoC everywhere.
///
/// # Errors
///
/// Returns [`ClaireError::IncompleteCoverage`] when the configuration
/// cannot implement one of the model's layer classes — the paper
/// requires `C_layer = 100 %` before performance is reported.
pub fn evaluate(model: &Model, config: &DesignConfig) -> Result<PpaReport, ClaireError> {
    evaluate_with(model, config, EvalOptions::default())
}

/// [`evaluate`] with explicit energy-accounting options.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_with(
    model: &Model,
    config: &DesignConfig,
    opts: EvalOptions,
) -> Result<PpaReport, ClaireError> {
    evaluate_with_costs(model, config, opts, &DirectCosts)
}

/// [`evaluate_with`] under an explicit layer-cost provider — the hook
/// the parallel engine uses to route compute costs through its memo
/// cache (see [`crate::parallel::Engine`]). The provider must be a
/// pure function of `(layer, hw)`; [`claire_ppa::layer_cost`] is the
/// reference implementation.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_with_costs(
    model: &Model,
    config: &DesignConfig,
    opts: EvalOptions,
    costs: &dyn CostProvider,
) -> Result<PpaReport, ClaireError> {
    if let Some(missing) = config.first_missing(model) {
        return Err(ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: missing.label(),
        });
    }

    let noc = Network::noc();
    let nop = Network::nop_aib2();

    // --- Compute (optionally bounded by weight streaming).
    let ComputeSum { cycles, energy_pj } = match &opts.memory {
        None => costs.compute_sum(model, &config.hw),
        Some(mem) => {
            // Weight streaming couples each layer's time to the memory
            // model, so this path stays per-layer (and per-layer costs
            // still ride the provider's memo cache).
            let mut cycles: u64 = 0;
            let mut energy_pj = 0.0;
            for layer in model.layers() {
                let c = costs.layer_cost(&layer.kind, &config.hw);
                let bytes = claire_ppa::layer_weight_bytes(&layer.kind);
                cycles += c.cycles.max(mem.stream_cycles(bytes));
                energy_pj += c.energy_pj + mem.stream_energy_pj(bytes);
            }
            ComputeSum { cycles, energy_pj }
        }
    };
    let mut latency_s = cycles as f64 / tech28::CLOCK_HZ;

    // --- Communication. Per-chiplet torus placement: each chiplet's
    // module groups sit on the smallest torus that fits them, in class
    // order; a monolithic die places all groups on one torus. The
    // per-edge cost is shared with the discrete-event simulator via
    // [`edge_transfer`].
    let mut noc_pj = 0.0;
    let mut nop_pj = 0.0;
    if let Some(seq) = costs.edge_costs(model, config) {
        // Memoized sequence replay: same costs, same order, same fold
        // as the walk below — bit-identical by construction (see
        // [`edge_cost_sequence`]).
        for t in seq.iter() {
            latency_s += t.latency_s();
            noc_pj += t.noc_pj();
            nop_pj += t.nop_pj();
        }
    } else {
        let routes = costs.routes(config);
        // Coverage was prechecked above; a class that still fails to
        // resolve indicates the check and the executor disagree —
        // surfaced as the same typed error rather than a panic.
        let executing = |c: OpClass| {
            config
                .executing_class(c)
                .ok_or_else(|| ClaireError::IncompleteCoverage {
                    algorithm: model.name().to_owned(),
                    config: config.name.clone(),
                    missing: c.label(),
                })
        };
        for (a, b, bytes) in model.edges() {
            let (ea, eb) = (executing(a)?, executing(b)?);
            if ea == eb {
                continue; // same-class transfers are free
            }
            let t = transfer_on_route(routes.route(config, ea, eb)?, bytes);
            latency_s += t.latency_s();
            noc_pj += t.noc_pj();
            nop_pj += t.nop_pj();
        }
    }

    let area = costs.config_area(config);
    let leakage_j = if opts.include_leakage {
        let leaking_area = if opts.power_gating {
            // Only module groups the algorithm exercises leak, plus
            // one router per live group and the NoP PHYs.
            let used: std::collections::BTreeSet<_> = model
                .op_class_counts()
                .keys()
                .filter_map(|&c| config.executing_class(c))
                .collect();
            let units: f64 = used
                .iter()
                .map(|&c| claire_ppa::unit_area_mm2(c, &config.hw))
                .sum();
            units
                + used.len() as f64 * noc.router.area_mm2
                + config.chiplets.len().max(1) as f64 * nop.router.area_mm2
        } else {
            area
        };
        tech28::LEAKAGE_W_PER_MM2 * leaking_area * latency_s
    } else {
        0.0
    };

    let report = PpaReport {
        latency_s,
        energy_j: (energy_pj + noc_pj + nop_pj) * 1e-12 + leakage_j,
        area_mm2: area,
        nop_energy_j: nop_pj * 1e-12,
        noc_energy_j: noc_pj * 1e-12,
        leakage_j,
    };
    // Finiteness gate: corrupt unit-PPA data or a degenerate
    // configuration must surface as a typed error here, never as a
    // NaN/Inf that silently poisons downstream sums and comparisons.
    // Derived metrics are included so a zero latency or area (which
    // would make power or density non-finite) is caught too.
    let checks: [(&'static str, f64); 5] = [
        ("latency", report.latency_s),
        ("energy", report.energy_j),
        ("area", report.area_mm2),
        ("power", report.power_w()),
        ("power_density", report.power_density_w_per_mm2()),
    ];
    for (metric, value) in checks {
        if !value.is_finite() {
            return Err(ClaireError::NonFiniteMetric {
                algorithm: model.name().to_owned(),
                config: config.name.clone(),
                metric,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Chiplet;
    use claire_model::{zoo, ActivationKind, OpClass};
    use claire_ppa::HwParams;
    use std::collections::BTreeSet;

    fn hw() -> HwParams {
        HwParams::new(32, 32, 16, 16)
    }

    fn config_for(model: &claire_model::Model) -> DesignConfig {
        let classes: BTreeSet<OpClass> = model.op_class_counts().keys().copied().collect();
        DesignConfig::monolithic(format!("C_{}", model.name()), hw(), classes)
    }

    #[test]
    fn alexnet_ppa_is_sane() {
        let m = zoo::alexnet();
        let r = evaluate(&m, &config_for(&m)).unwrap();
        // 0.7 GMACs on ~33 TMAC/s with overheads: sub-millisecond.
        assert!(r.latency_s > 1e-6 && r.latency_s < 1e-2, "{}", r.latency_s);
        // >= MAC energy alone.
        assert!(r.energy_j >= m.macs() as f64 * 0.8e-12);
        assert!(r.area_mm2 > 10.0 && r.area_mm2 < 100.0, "{}", r.area_mm2);
    }

    #[test]
    fn power_density_below_cloud_limit() {
        let m = zoo::resnet50();
        let r = evaluate(&m, &config_for(&m)).unwrap();
        assert!(
            r.power_density_w_per_mm2() < 1.0,
            "{}",
            r.power_density_w_per_mm2()
        );
    }

    #[test]
    fn uncovered_model_is_an_error() {
        let m = zoo::alexnet();
        let cfg =
            DesignConfig::monolithic("linear-only", hw(), [OpClass::Linear].into_iter().collect());
        let err = evaluate(&m, &cfg).unwrap_err();
        assert!(matches!(err, ClaireError::IncompleteCoverage { .. }));
    }

    #[test]
    fn split_config_pays_nop_energy() {
        let m = zoo::alexnet();
        let mono = config_for(&m);
        let mut split = mono.clone();
        // Put the linear head on its own chiplet.
        let head: BTreeSet<OpClass> = [OpClass::Linear].into_iter().collect();
        let body: BTreeSet<OpClass> = split
            .classes
            .iter()
            .copied()
            .filter(|c| *c != OpClass::Linear)
            .collect();
        split.chiplets = vec![
            Chiplet::from_classes("L1", body, &hw()),
            Chiplet::from_classes("L2", head, &hw()),
        ];
        let r_mono = evaluate(&m, &mono).unwrap();
        let r_split = evaluate(&m, &split).unwrap();
        assert_eq!(r_mono.nop_energy_j, 0.0);
        assert!(r_split.nop_energy_j > 0.0);
        assert!(r_split.energy_j > r_mono.energy_j);
    }

    #[test]
    fn energy_difference_between_configs_is_small() {
        // The paper observes ~0.2 % energy variation across
        // configurations (no power gating, identical compute):
        // communication is the only difference.
        let m = zoo::bert_base();
        let own = config_for(&m);
        let mut wider = own.clone();
        wider
            .classes
            .insert(OpClass::Activation(ActivationKind::Silu));
        wider.classes.insert(OpClass::Conv2d);
        let r1 = evaluate(&m, &own).unwrap();
        let r2 = evaluate(&m, &wider).unwrap();
        let rel = (r2.energy_j - r1.energy_j).abs() / r1.energy_j;
        assert!(rel < 0.02, "{rel}");
    }

    #[test]
    fn same_class_transfer_is_free() {
        // LINEAR -> LINEAR stays inside the systolic group: no NoC hop.
        let m = zoo::graphormer();
        let cfg = config_for(&m);
        let r = evaluate(&m, &cfg).unwrap();
        assert!(r.noc_energy_j < r.energy_j * 0.5);
    }

    #[test]
    fn leakage_disabled_by_default() {
        let m = zoo::alexnet();
        let r = evaluate(&m, &config_for(&m)).unwrap();
        assert_eq!(r.leakage_j, 0.0);
    }

    #[test]
    fn leakage_scales_with_area_and_latency() {
        let m = zoo::alexnet();
        let cfg = config_for(&m);
        let opts = EvalOptions {
            include_leakage: true,
            ..EvalOptions::default()
        };
        let r = evaluate_with(&m, &cfg, opts).unwrap();
        let expected = claire_ppa::tech28::LEAKAGE_W_PER_MM2 * r.area_mm2 * r.latency_s;
        assert!((r.leakage_j - expected).abs() < 1e-12);
        assert!(r.energy_j > evaluate(&m, &cfg).unwrap().energy_j);
    }

    #[test]
    fn power_gating_reduces_leakage_on_oversized_configs() {
        // BERT on a generic-like config: gating idles the unused
        // conv/pool groups.
        let m = zoo::bert_base();
        let mut classes: BTreeSet<OpClass> = m.op_class_counts().keys().copied().collect();
        classes.extend([
            OpClass::Conv2d,
            OpClass::Conv1d,
            OpClass::Pooling(claire_model::PoolingKind::MaxPool),
        ]);
        let cfg = DesignConfig::monolithic("wide", hw(), classes);
        let ungated = evaluate_with(
            &m,
            &cfg,
            EvalOptions {
                include_leakage: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let gated = evaluate_with(
            &m,
            &cfg,
            EvalOptions {
                include_leakage: true,
                power_gating: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert!(gated.leakage_j < 0.5 * ungated.leakage_j);
    }

    fn split_alexnet() -> (claire_model::Model, DesignConfig) {
        let m = zoo::alexnet();
        let mut split = config_for(&m);
        let head: BTreeSet<OpClass> = [OpClass::Linear].into_iter().collect();
        let body: BTreeSet<OpClass> = split
            .classes
            .iter()
            .copied()
            .filter(|c| *c != OpClass::Linear)
            .collect();
        split.chiplets = vec![
            Chiplet::from_classes("L1", body, &hw()),
            Chiplet::from_classes("L2", head, &hw()),
        ];
        (m, split)
    }

    #[test]
    fn edge_cost_sequence_matches_per_edge_walk() {
        let (m, split) = split_alexnet();
        for cfg in [config_for(&m), split] {
            let seq = edge_cost_sequence(&m, &cfg, &RouteTable::new()).unwrap();
            let mut walk = Vec::new();
            for (a, b, bytes) in m.edges() {
                let ea = cfg.executing_class(a).unwrap();
                let eb = cfg.executing_class(b).unwrap();
                if ea == eb {
                    continue;
                }
                walk.push(transfer_on_route(route_of(&cfg, ea, eb), bytes));
            }
            assert_eq!(seq, walk, "bucketed sequence diverged on {}", cfg.name);
            assert!(!seq.is_empty(), "alexnet has cross-class edges");
        }
    }

    struct SeqCosts(Arc<[TransferCost]>);

    impl CostProvider for SeqCosts {
        fn edge_costs(&self, _m: &Model, _c: &DesignConfig) -> Option<Arc<[TransferCost]>> {
            Some(self.0.clone())
        }
    }

    #[test]
    fn evaluator_sequence_replay_is_bit_identical() {
        let (m, split) = split_alexnet();
        for cfg in [config_for(&m), split] {
            let seq: Arc<[TransferCost]> = edge_cost_sequence(&m, &cfg, &RouteTable::new())
                .unwrap()
                .into();
            let direct = evaluate(&m, &cfg).unwrap();
            let replay =
                evaluate_with_costs(&m, &cfg, EvalOptions::default(), &SeqCosts(seq)).unwrap();
            assert_eq!(
                format!("{direct:?}"),
                format!("{replay:?}"),
                "replay diverged on {}",
                cfg.name
            );
        }
    }

    #[test]
    fn edge_cost_sequence_surfaces_coverage_error() {
        let m = zoo::alexnet();
        let cfg =
            DesignConfig::monolithic("linear-only", hw(), [OpClass::Linear].into_iter().collect());
        let err = edge_cost_sequence(&m, &cfg, &RouteTable::new()).unwrap_err();
        assert!(matches!(err, ClaireError::IncompleteCoverage { .. }));
    }

    #[test]
    fn tanh_executes_on_gelu_unit() {
        let m = zoo::bert_base();
        let mut classes: BTreeSet<OpClass> = m.op_class_counts().keys().copied().collect();
        classes.remove(&OpClass::Activation(ActivationKind::Tanh));
        let cfg = DesignConfig::monolithic("C_3", hw(), classes);
        assert!(evaluate(&m, &cfg).is_ok());
    }
}
