//! Persistent warm state: versioned snapshots of the engine's memo tiers.
//!
//! Every memo tier the [`Engine`](crate::Engine) builds during a run is
//! keyed canonically — by layer content, hardware parameters, complete
//! topology encodings, or bit-exact graph encodings — never by process
//! addresses or hash-iteration order (the one instance-keyed map,
//! `ModelInterner::by_instance`, is deliberately *not* persisted). That
//! is what makes cross-process reuse sound: an entry looked up from a
//! snapshot is indistinguishable from one the loading process would
//! have computed itself, so a flow started from a snapshot is
//! bit-identical to the cold flow.
//!
//! # File format
//!
//! A fixed binary header followed by a canonical JSON payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic `CLAIRSNP`
//!      8     2  byte-order mark 0xFEFF, little-endian (`FF FE`)
//!     10     4  format version (u32 LE, currently 1)
//!     14     8  payload length in bytes (u64 LE)
//!     22     8  FNV-1a-64 checksum of the payload (u64 LE)
//!     30     …  JSON payload
//! ```
//!
//! The payload is self-describing JSON (schema in [`Payload`]) with
//! every float stored as its IEEE-754 bit pattern (`f64::to_bits`), so
//! a round trip is bit-exact and never passes through decimal
//! formatting. All sections are canonically ordered and structural ids
//! are renumbered into content order before writing, which makes
//! snapshots **byte-identical across thread counts** and across
//! processes that computed the same entries in different orders.
//!
//! # Versioning and invalidation
//!
//! Any reader-visible change to the payload schema or to the meaning
//! of a cached value (a cost-model change, a new key field) must bump
//! [`SNAPSHOT_VERSION`]. A reader rejects unknown versions — along
//! with short files, bad magic, foreign byte order, checksum
//! mismatches, and payloads that fail validation — with a typed
//! [`ClaireError::SnapshotInvalid`], and the caller degrades to a cold
//! start. A snapshot is an accelerator, never an input: no failure
//! mode may panic or alter results.

use crate::error::ClaireError;
use crate::evaluate::{ComputeSum, RouteTable, TransferCost};
use crate::parallel::{
    read_lock, write_lock, Engine, Prehashed, TopologyKey, UniversalCsr, WarmEntry,
};
use claire_graph::{CsrGraph, Partition, WeightedGraph};
use claire_model::{LayerKind, OpClass};
use claire_ppa::{HwParams, LayerCost};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Snapshot file magic.
const MAGIC: [u8; 8] = *b"CLAIRSNP";

/// Byte-order mark: written little-endian, so the file starts a
/// foreign-endianness (or byte-swapped) header check cheaply.
const BOM: u16 = 0xFEFF;

/// Current snapshot format version. Bump on any schema or
/// cached-value-semantics change; readers reject other versions.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header length in bytes: magic + BOM + version + length + checksum.
const HEADER_LEN: usize = 8 + 2 + 4 + 8 + 8;

/// FNV-1a 64-bit checksum — dependency-free and byte-order independent.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn invalid(detail: impl Into<String>) -> ClaireError {
    ClaireError::SnapshotInvalid {
        detail: detail.into(),
    }
}

// --- payload schema -------------------------------------------------------

/// One `layer_cost` tier entry: the memoized per-layer PPA numbers for
/// a (layer, hardware) pair.
#[derive(Serialize, Deserialize)]
struct CostEntry {
    kind: LayerKind,
    hw: HwParams,
    cycles: u64,
    /// `f64::to_bits` of the energy in pJ.
    energy_pj: u64,
    executions: u64,
}

/// One `area` tier entry: per-class unit areas for a hardware point.
#[derive(Serialize, Deserialize)]
struct AreaEntry {
    hw: HwParams,
    /// `f64::to_bits` per [`OpClass::index`]; length [`OpClass::COUNT`].
    areas_mm2: Vec<u64>,
}

/// One `compute_sum` tier entry, keyed by snapshot structural id.
#[derive(Serialize, Deserialize)]
struct SumEntry {
    sid: u32,
    hw: HwParams,
    cycles: u64,
    energy_pj: u64,
}

/// One `lb` tier entry: the latency lower bound for (structure, hw).
#[derive(Serialize, Deserialize)]
struct LbEntry {
    sid: u32,
    hw: HwParams,
    cycles: u64,
}

/// A [`TopologyKey`] in portable form (fixed arrays become vectors —
/// the vendored serde deserializes only into growable containers).
#[derive(Serialize, Deserialize, PartialEq, Eq, PartialOrd, Ord)]
struct TopoRecord {
    classes: u16,
    chiplets: Vec<u16>,
    slots: Vec<(u8, u8)>,
    n_chiplets: u8,
}

impl TopoRecord {
    fn of(key: &TopologyKey) -> TopoRecord {
        TopoRecord {
            classes: key.classes,
            chiplets: key.chiplets.to_vec(),
            slots: key.slots.to_vec(),
            n_chiplets: key.n_chiplets,
        }
    }

    fn into_key(self) -> Result<TopologyKey, ClaireError> {
        let chiplets: [u16; OpClass::COUNT] = self
            .chiplets
            .try_into()
            .map_err(|_| invalid("topology key with wrong chiplet-mask count"))?;
        let slots: [(u8, u8); OpClass::COUNT] = self
            .slots
            .try_into()
            .map_err(|_| invalid("topology key with wrong slot count"))?;
        Ok(TopologyKey {
            classes: self.classes,
            chiplets,
            slots,
            n_chiplets: self.n_chiplets,
        })
    }
}

/// One `comm` tier entry: the per-edge transfer costs of a model
/// structure on a topology.
#[derive(Serialize, Deserialize)]
struct CommEntry {
    sid: u32,
    topo: TopoRecord,
    /// `(ser_cycles, fixed_cycles, crosses_chiplet, noc_mpj, nop_mpj)`
    /// per model edge — all fixed-point integers, so exact by nature.
    costs: Vec<(u64, u64, bool, u64, u64)>,
}

/// One exact-tier Louvain entry: canonical graph+γ key words and the
/// partition's communities.
#[derive(Serialize, Deserialize)]
struct LouvainEntry {
    key: Vec<u64>,
    communities: Vec<Vec<OpClass>>,
}

/// One warm-tier Louvain record: a certified γ-interval (bounds as
/// `f64::to_bits`) and the partition it reproduces.
#[derive(Serialize, Deserialize)]
struct WarmRecord {
    lo: u64,
    hi: u64,
    communities: Vec<Vec<OpClass>>,
}

/// All warm-tier records for one graph key.
#[derive(Serialize, Deserialize)]
struct WarmGroup {
    key: Vec<u64>,
    entries: Vec<WarmRecord>,
}

/// One universal-graph tier entry: the merged graph of a model set
/// (weights as `f64::to_bits`); the CSR form is re-interned on load.
#[derive(Serialize, Deserialize)]
struct GraphEntry {
    sids: Vec<u32>,
    hw: HwParams,
    nodes: Vec<(OpClass, u64)>,
    edges: Vec<(OpClass, OpClass, u64)>,
}

/// The snapshot payload: every memo tier whose keys are canonical.
/// `structures[i]` is the layer sequence of snapshot structural id
/// `i`; structures are sorted by their JSON encoding, and every other
/// section is sorted by its key, so equal tier *contents* produce
/// equal *bytes* regardless of insertion order.
#[derive(Serialize, Deserialize)]
struct Payload {
    structures: Vec<Vec<LayerKind>>,
    layer_costs: Vec<CostEntry>,
    areas: Vec<AreaEntry>,
    sums: Vec<SumEntry>,
    lbs: Vec<LbEntry>,
    /// Route tables are lazily-filled `OnceLock` grids; persisting the
    /// keys alone preserves the "which topologies exist" working set
    /// while letting routes refill deterministically on first use.
    routes: Vec<TopoRecord>,
    comms: Vec<CommEntry>,
    louvains: Vec<LouvainEntry>,
    louvain_warm: Vec<WarmGroup>,
    graphs: Vec<GraphEntry>,
}

// --- encoding -------------------------------------------------------------

/// A canonical encoding of a layer sequence — the sort key that fixes
/// structure order. `LayerKind` is not `Ord`, but its derived `Debug`
/// is deterministic and injective (the enum is `Eq`, so all-integer),
/// which is all a canonical order needs.
fn kinds_sort_key(kinds: &[LayerKind]) -> String {
    format!("{kinds:?}")
}

fn encode_partition(p: &Partition<OpClass>) -> Vec<Vec<OpClass>> {
    p.communities().to_vec()
}

/// Validates and rebuilds a partition. [`Partition::from_communities`]
/// panics on malformed input, so a corrupt snapshot must be caught
/// here — before any engine state is touched.
fn decode_partition(communities: Vec<Vec<OpClass>>) -> Result<Partition<OpClass>, ClaireError> {
    let mut seen = std::collections::BTreeSet::new();
    for c in &communities {
        if c.is_empty() {
            return Err(invalid("partition with an empty community"));
        }
        for n in c {
            if !seen.insert(*n) {
                return Err(invalid("partition with a node in two communities"));
            }
        }
    }
    Ok(Partition::from_communities(communities))
}

fn decode_finite(bits: u64, what: &str) -> Result<f64, ClaireError> {
    let v = f64::from_bits(bits);
    if !v.is_finite() {
        return Err(invalid(format!("non-finite {what} in snapshot")));
    }
    Ok(v)
}

/// Serializes the engine's memo tiers into snapshot bytes (header +
/// canonical JSON payload). Pure read: takes every tier lock briefly,
/// never mutates.
///
/// # Errors
///
/// [`ClaireError::Internal`] if the payload fails to serialize — the
/// schema contains only integers, booleans, and enums, so this cannot
/// occur for any reachable engine state.
pub(crate) fn encode(engine: &Engine) -> Result<Vec<u8>, ClaireError> {
    // Canonical structural ids: sort interned structures by content
    // encoding, then renumber. `old_to_new[old_sid] = snapshot_sid`.
    let (structures, old_to_new) = {
        let models = read_lock(&engine.models);
        let mut entries: Vec<(String, &[LayerKind], u32)> = models
            .by_content
            .iter()
            .map(|(kinds, &sid)| (kinds_sort_key(kinds), kinds.as_ref(), sid))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut old_to_new = vec![u32::MAX; models.batches.len()];
        let structures: Vec<Vec<LayerKind>> = entries
            .iter()
            .enumerate()
            .map(|(new, (_, kinds, old))| {
                old_to_new[*old as usize] = new as u32;
                kinds.to_vec()
            })
            .collect();
        (structures, old_to_new)
    };
    let renum = |old: u32| old_to_new[old as usize];

    let mut layer_costs: Vec<CostEntry> = engine
        .shards
        .iter()
        .flat_map(|shard| {
            read_lock(shard)
                .iter()
                .map(|(k, c)| CostEntry {
                    kind: k.key.0,
                    hw: k.key.1,
                    cycles: c.cycles,
                    energy_pj: c.energy_pj.to_bits(),
                    executions: c.executions,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    layer_costs.sort_by(|a, b| {
        kinds_sort_key(std::slice::from_ref(&a.kind))
            .cmp(&kinds_sort_key(std::slice::from_ref(&b.kind)))
            .then(a.hw.cmp(&b.hw))
    });

    let mut areas: Vec<AreaEntry> = read_lock(&engine.areas)
        .iter()
        .map(|(hw, table)| AreaEntry {
            hw: *hw,
            areas_mm2: table.iter().map(|a| a.to_bits()).collect(),
        })
        .collect();
    areas.sort_by_key(|e| e.hw);

    let mut sums: Vec<SumEntry> = read_lock(&engine.sums)
        .iter()
        .map(|(&(sid, hw), s)| SumEntry {
            sid: renum(sid),
            hw,
            cycles: s.cycles,
            energy_pj: s.energy_pj.to_bits(),
        })
        .collect();
    sums.sort_by_key(|e| (e.sid, e.hw));

    let mut lbs: Vec<LbEntry> = read_lock(&engine.lbs)
        .iter()
        .map(|(&(sid, hw), &cycles)| LbEntry {
            sid: renum(sid),
            hw,
            cycles,
        })
        .collect();
    lbs.sort_by_key(|e| (e.sid, e.hw));

    let mut routes: Vec<TopoRecord> = read_lock(&engine.routes)
        .keys()
        .map(TopoRecord::of)
        .collect();
    routes.sort();

    let mut comms: Vec<CommEntry> = read_lock(&engine.comms)
        .iter()
        .map(|((sid, topo), costs)| CommEntry {
            sid: renum(*sid),
            topo: TopoRecord::of(topo),
            costs: costs
                .iter()
                .map(|t| {
                    (
                        t.ser_cycles,
                        t.fixed_cycles,
                        t.crosses_chiplet,
                        t.noc_mpj,
                        t.nop_mpj,
                    )
                })
                .collect(),
        })
        .collect();
    comms.sort_by(|a, b| (a.sid, &a.topo).cmp(&(b.sid, &b.topo)));

    let mut louvains: Vec<LouvainEntry> = read_lock(&engine.louvains)
        .iter()
        .map(|(key, p)| LouvainEntry {
            key: key.to_vec(),
            communities: encode_partition(p),
        })
        .collect();
    louvains.sort_by(|a, b| a.key.cmp(&b.key));

    let mut louvain_warm: Vec<WarmGroup> = read_lock(&engine.louvain_warm)
        .iter()
        .map(|(key, entries)| {
            let mut recs: Vec<WarmRecord> = entries
                .iter()
                .map(|e| WarmRecord {
                    lo: e.lo.to_bits(),
                    hi: e.hi.to_bits(),
                    communities: encode_partition(&e.partition),
                })
                .collect();
            recs.sort_by_key(|r| (r.lo, r.hi));
            WarmGroup {
                key: key.to_vec(),
                entries: recs,
            }
        })
        .collect();
    louvain_warm.sort_by(|a, b| a.key.cmp(&b.key));

    let mut graphs: Vec<GraphEntry> = read_lock(&engine.graphs)
        .iter()
        .map(|((sids, hw), ug)| GraphEntry {
            // Graph-tier keys hold structural ids widened to u64; map
            // them through the same renumbering as every other tier.
            sids: sids.iter().map(|&s| renum(s as u32)).collect(),
            hw: *hw,
            nodes: ug.graph.nodes().map(|(n, w)| (*n, w.to_bits())).collect(),
            edges: ug
                .graph
                .edges()
                .map(|(a, b, w)| (*a, *b, w.to_bits()))
                .collect(),
        })
        .collect();
    graphs.sort_by(|a, b| (&a.sids, a.hw).cmp(&(&b.sids, b.hw)));

    let payload = Payload {
        structures,
        layer_costs,
        areas,
        sums,
        lbs,
        routes,
        comms,
        louvains,
        louvain_warm,
        graphs,
    };
    let json = serde_json::to_string(&payload).map_err(|e| ClaireError::Internal {
        detail: format!("snapshot payload failed to serialize: {e}"),
    })?;
    let body = json.into_bytes();

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BOM.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

// --- decoding -------------------------------------------------------------

/// A staged exact-tier Louvain entry: the γ-free canonical CSR key
/// and the memoized partition.
type StagedLouvain = (Box<[u64]>, Arc<Partition<OpClass>>);

/// Everything a snapshot contributes, fully parsed and validated but
/// not yet applied — so a corrupt file can be rejected without having
/// touched any engine state.
#[derive(Debug)]
struct Staged {
    structures: Vec<Box<[LayerKind]>>,
    layer_costs: Vec<(LayerKind, HwParams, LayerCost)>,
    areas: Vec<(HwParams, Arc<[f64; OpClass::COUNT]>)>,
    sums: Vec<(u32, HwParams, ComputeSum)>,
    lbs: Vec<(u32, HwParams, u64)>,
    routes: Vec<TopologyKey>,
    comms: Vec<(u32, TopologyKey, Arc<[TransferCost]>)>,
    louvains: Vec<StagedLouvain>,
    louvain_warm: Vec<(Box<[u64]>, Vec<WarmEntry>)>,
    graphs: Vec<(Vec<u32>, HwParams, Arc<UniversalCsr>)>,
}

/// Parses and validates snapshot bytes into staged tier contents.
fn decode(bytes: &[u8]) -> Result<Staged, ClaireError> {
    if bytes.len() < HEADER_LEN {
        return Err(invalid(format!(
            "file too short for header ({} < {HEADER_LEN} bytes)",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(invalid("bad magic (not a CLAIRE snapshot)"));
    }
    let bom = u16::from_le_bytes([bytes[8], bytes[9]]);
    if bom != BOM {
        return Err(if bom == BOM.swap_bytes() {
            invalid("foreign-endianness header (byte-swapped BOM)")
        } else {
            invalid(format!("corrupt byte-order mark 0x{bom:04X}"))
        });
    }
    let version = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    if version != SNAPSHOT_VERSION {
        return Err(invalid(format!(
            "version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let le_u64 = |at: usize| {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(w)
    };
    let len = le_u64(14);
    let body = &bytes[HEADER_LEN..];
    if len != body.len() as u64 {
        return Err(invalid(format!(
            "truncated payload ({} of {len} bytes)",
            body.len()
        )));
    }
    let checksum = le_u64(22);
    if fnv1a(body) != checksum {
        return Err(invalid("payload checksum mismatch"));
    }
    let payload: Payload =
        serde_json::from_slice(body).map_err(|e| invalid(format!("payload parse failed: {e}")))?;

    let n = payload.structures.len() as u32;
    let check_sid = |sid: u32| {
        if sid < n {
            Ok(sid)
        } else {
            Err(invalid(format!("structural id {sid} out of range (< {n})")))
        }
    };

    let structures: Vec<Box<[LayerKind]>> = payload
        .structures
        .into_iter()
        .map(|kinds| kinds.into_boxed_slice())
        .collect();

    let layer_costs = payload
        .layer_costs
        .into_iter()
        .map(|e| {
            Ok((
                e.kind,
                e.hw,
                LayerCost {
                    cycles: e.cycles,
                    energy_pj: decode_finite(e.energy_pj, "layer-cost energy")?,
                    executions: e.executions,
                },
            ))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let areas = payload
        .areas
        .into_iter()
        .map(|e| {
            if e.areas_mm2.len() != OpClass::COUNT {
                return Err(invalid(format!(
                    "area table with {} classes (expected {})",
                    e.areas_mm2.len(),
                    OpClass::COUNT
                )));
            }
            let mut table = [0.0f64; OpClass::COUNT];
            for (slot, bits) in table.iter_mut().zip(e.areas_mm2) {
                *slot = decode_finite(bits, "unit area")?;
            }
            Ok((e.hw, Arc::new(table)))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let sums = payload
        .sums
        .into_iter()
        .map(|e| {
            Ok((
                check_sid(e.sid)?,
                e.hw,
                ComputeSum {
                    cycles: e.cycles,
                    energy_pj: decode_finite(e.energy_pj, "compute-sum energy")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let lbs = payload
        .lbs
        .into_iter()
        .map(|e| Ok((check_sid(e.sid)?, e.hw, e.cycles)))
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let routes = payload
        .routes
        .into_iter()
        .map(TopoRecord::into_key)
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let comms = payload
        .comms
        .into_iter()
        .map(|e| {
            let costs: Arc<[TransferCost]> = e
                .costs
                .into_iter()
                .map(
                    |(ser_cycles, fixed_cycles, crosses_chiplet, noc_mpj, nop_mpj)| TransferCost {
                        ser_cycles,
                        fixed_cycles,
                        crosses_chiplet,
                        noc_mpj,
                        nop_mpj,
                    },
                )
                .collect();
            Ok((check_sid(e.sid)?, e.topo.into_key()?, costs))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let louvains = payload
        .louvains
        .into_iter()
        .map(|e| {
            Ok((
                e.key.into_boxed_slice(),
                Arc::new(decode_partition(e.communities)?),
            ))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let louvain_warm = payload
        .louvain_warm
        .into_iter()
        .map(|g| {
            let entries = g
                .entries
                .into_iter()
                .map(|r| {
                    Ok(WarmEntry {
                        lo: f64::from_bits(r.lo),
                        hi: f64::from_bits(r.hi),
                        partition: Arc::new(decode_partition(r.communities)?),
                    })
                })
                .collect::<Result<Vec<_>, ClaireError>>()?;
            Ok((g.key.into_boxed_slice(), entries))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    let graphs = payload
        .graphs
        .into_iter()
        .map(|e| {
            let sids = e
                .sids
                .iter()
                .map(|&s| check_sid(s))
                .collect::<Result<Vec<_>, ClaireError>>()?;
            let graph = WeightedGraph::from_parts(
                e.nodes
                    .into_iter()
                    .map(|(n, bits)| (n, f64::from_bits(bits))),
                e.edges
                    .into_iter()
                    .map(|(a, b, bits)| (a, b, f64::from_bits(bits))),
            );
            let csr = CsrGraph::from_weighted(&graph);
            Ok((sids, e.hw, Arc::new(UniversalCsr { graph, csr })))
        })
        .collect::<Result<Vec<_>, ClaireError>>()?;

    Ok(Staged {
        structures,
        layer_costs,
        areas,
        sums,
        lbs,
        routes,
        comms,
        louvains,
        louvain_warm,
        graphs,
    })
}

/// Merges staged snapshot contents into the engine's tiers. Existing
/// live entries always win (`or_insert`): a tier entry is an exact
/// function of its key, so on a genuine collision both sides are
/// equal and keeping the resident one is free.
fn apply(engine: &Engine, staged: Staged) {
    // Intern the snapshot's structures; `sid_map[snapshot_sid]` is the
    // live structural id in this process.
    let sid_map: Vec<u32> = {
        let mut models = write_lock(&engine.models);
        staged
            .structures
            .into_iter()
            .map(|kinds| models.intern_content(kinds))
            .collect()
    };
    let live = |sid: u32| sid_map[sid as usize];

    for (kind, hw, cost) in staged.layer_costs {
        let key = Prehashed::new((kind, hw));
        let mut shard = write_lock(&engine.shards[key.shard()]);
        shard.entry(key).or_insert(cost);
    }
    {
        let mut areas = write_lock(&engine.areas);
        for (hw, table) in staged.areas {
            areas.entry(hw).or_insert(table);
        }
    }
    {
        let mut sums = write_lock(&engine.sums);
        for (sid, hw, sum) in staged.sums {
            sums.entry((live(sid), hw)).or_insert(sum);
        }
    }
    {
        let mut lbs = write_lock(&engine.lbs);
        for (sid, hw, cycles) in staged.lbs {
            lbs.entry((live(sid), hw)).or_insert(cycles);
        }
    }
    {
        // Fresh fault-free tables: route cells refill deterministically
        // on first use, and snapshots never load into faulted engines.
        let mut routes = write_lock(&engine.routes);
        for key in staged.routes {
            routes
                .entry(key)
                .or_insert_with(|| Arc::new(RouteTable::new()));
        }
    }
    {
        let mut comms = write_lock(&engine.comms);
        for (sid, topo, costs) in staged.comms {
            comms.entry((live(sid), topo)).or_insert(costs);
        }
    }
    {
        let mut louvains = write_lock(&engine.louvains);
        for (key, partition) in staged.louvains {
            louvains.entry(key).or_insert(partition);
        }
    }
    {
        let mut warm = write_lock(&engine.louvain_warm);
        for (key, entries) in staged.louvain_warm {
            let slot = warm.entry(key).or_default();
            for e in entries {
                let dup = slot
                    .iter()
                    .any(|s| s.lo.to_bits() == e.lo.to_bits() && s.hi.to_bits() == e.hi.to_bits());
                if !dup {
                    slot.push(e);
                }
            }
        }
    }
    {
        let mut graphs = write_lock(&engine.graphs);
        for (sids, hw, ug) in staged.graphs {
            let key: Box<[u64]> = sids.iter().map(|&s| u64::from(live(s))).collect();
            graphs.entry((key, hw)).or_insert(ug);
        }
    }
}

impl Engine {
    /// Writes the engine's memo tiers to `path` as a versioned
    /// snapshot, atomically (write to a sibling temp file, then
    /// rename). Returns `false` — without writing — when the engine
    /// cannot produce a reusable snapshot: cache disabled (nothing to
    /// save) or a fault plan armed (faulted routes and evaluations
    /// must not leak into healthy runs).
    ///
    /// # Errors
    ///
    /// [`ClaireError::SnapshotInvalid`] when the file cannot be
    /// written.
    pub fn save_snapshot(&self, path: &Path) -> Result<bool, ClaireError> {
        if !self.cache_enabled() || self.faults().is_some() {
            return Ok(false);
        }
        let _span = self.telemetry().span("snapshot.save", "persist");
        let bytes = encode(self)?;
        // The temp name is unique per (process, write): two writers
        // sharing one cache dir each rename a *complete* file into
        // place, so the loser can at worst overwrite the winner with
        // another valid snapshot — never a torn interleaving.
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(|e| invalid(format!("write failed: {e}")))?;
        Ok(true)
    }

    /// Loads a snapshot from `path` into the engine's memo tiers.
    /// Returns `false` — without reading — when the file does not
    /// exist (a first run is not an error) or when the engine is not
    /// eligible (cache disabled, fault plan armed). Existing live
    /// entries are never overwritten.
    ///
    /// # Errors
    ///
    /// [`ClaireError::SnapshotInvalid`] on any unreadable or invalid
    /// snapshot — short/truncated file, bad magic, foreign byte
    /// order, unknown version, checksum mismatch, malformed payload.
    /// The engine is untouched in every error case: validation
    /// completes before any tier is written, so the caller simply
    /// continues cold.
    pub fn load_snapshot(&self, path: &Path) -> Result<bool, ClaireError> {
        if !self.cache_enabled() || self.faults().is_some() {
            return Ok(false);
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(invalid(format!("read failed: {e}"))),
        };
        let _span = self.telemetry().span("snapshot.load", "persist");
        let staged = decode(&bytes)?;
        apply(self, staged);
        Ok(true)
    }

    /// The snapshot encoding of the current tiers, for byte-identity
    /// checks without touching the filesystem.
    ///
    /// # Errors
    ///
    /// [`ClaireError::Internal`] — see [`save_snapshot`](Engine::save_snapshot);
    /// unreachable for any engine state this crate constructs.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, ClaireError> {
        encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn empty_engine_round_trips() {
        let engine = Engine::new(1);
        let bytes = encode(&engine).expect("encode");
        let staged = decode(&bytes).expect("fresh snapshot decodes");
        assert!(staged.structures.is_empty());
        let again = Engine::new(1);
        apply(&again, staged);
        assert_eq!(encode(&again).expect("encode"), bytes);
    }

    #[test]
    fn header_corruptions_are_typed() {
        let engine = Engine::new(1);
        let bytes = encode(&engine).expect("encode");

        // Truncated below the header.
        let err = decode(&bytes[..10]).unwrap_err();
        assert!(matches!(err, ClaireError::SnapshotInvalid { .. }));

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_err());

        // Byte-swapped BOM reads as foreign endianness.
        let mut swapped = bytes.clone();
        swapped.swap(8, 9);
        let err = decode(&swapped).unwrap_err();
        assert!(err.to_string().contains("endian"), "{err}");

        // Future version.
        let mut vers = bytes.clone();
        vers[10] = 0xFE;
        let err = decode(&vers).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Payload corruption trips the checksum.
        let mut flip = bytes.clone();
        let last = flip.len() - 1;
        flip[last] ^= 0x01;
        let err = decode(&flip).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }
}
