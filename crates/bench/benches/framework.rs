//! Criterion benchmarks of the framework itself. The paper reports a
//! "total convergence time of eight minutes" for the training phase
//! over 81 DSE configurations; these benches time the equivalent
//! stages of this implementation.

use claire_core::{dse, Claire, Constraints};
use claire_graph::louvain;
use claire_model::{parse, zoo};
use claire_ppa::DseSpace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_training_phase(c: &mut Criterion) {
    let models = zoo::training_set();
    let claire = Claire::new(claire_bench::paper_options());
    c.bench_function("train_phase_13_models_81_configs", |b| {
        b.iter(|| black_box(claire.train(black_box(&models)).expect("train")))
    });
}

fn bench_full_flow(c: &mut Criterion) {
    c.bench_function("full_flow_train_plus_test", |b| {
        b.iter(|| black_box(claire_bench::run_paper_flow()))
    });
}

fn bench_custom_dse(c: &mut Criterion) {
    let space = DseSpace::default();
    let cons = Constraints::default();
    let vgg = zoo::vgg16();
    let mixtral = zoo::mixtral_8x7b();
    c.bench_function("dse_custom_vgg16", |b| {
        b.iter(|| black_box(dse::custom_config(black_box(&vgg), &space, &cons).expect("dse")))
    });
    c.bench_function("dse_custom_mixtral", |b| {
        b.iter(|| black_box(dse::custom_config(black_box(&mixtral), &space, &cons).expect("dse")))
    });
}

fn bench_louvain(c: &mut Criterion) {
    let models = zoo::training_set();
    let hw = claire_ppa::HwParams::new(32, 32, 16, 16);
    let ug = claire_core::graphs::universal_graph(&models, &hw);
    c.bench_function("louvain_generic_universal_graph", |b| {
        b.iter(|| black_box(louvain(black_box(&ug), 1.0)))
    });
}

fn bench_parser(c: &mut Criterion) {
    let text = parse::to_torch_print(&zoo::resnet50());
    c.bench_function("parse_resnet50_printout", |b| {
        b.iter(|| {
            black_box(
                parse::parse_model("Resnet50", black_box(&text), parse::ParseOptions::default())
                    .expect("parse"),
            )
        })
    });
}

fn bench_graph_construction(c: &mut Criterion) {
    let models = zoo::training_set();
    let hw = claire_ppa::HwParams::new(32, 32, 16, 16);
    c.bench_function("universal_graph_training_set", |b| {
        b.iter(|| {
            black_box(claire_core::graphs::universal_graph(
                black_box(&models),
                &hw,
            ))
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    use claire_sim::{simulate, simulate_batch, Mode};
    let claire = Claire::new(claire_bench::paper_options());
    let m = zoo::resnet50();
    let custom = claire.custom_for(&m).expect("feasible");
    c.bench_function("simulate_strict_resnet50", |b| {
        b.iter(|| black_box(simulate(&m, &custom.config, Mode::Strict).expect("sim")))
    });
    c.bench_function("simulate_batch32_resnet50", |b| {
        b.iter(|| black_box(simulate_batch(&m, &custom.config, 32).expect("sim")))
    });
}

fn bench_synthetic_scaling(c: &mut Criterion) {
    use claire_model::synth::random_suite;
    let claire = Claire::new(claire_bench::paper_options());
    let mut group = c.benchmark_group("train_scaling_synthetic");
    for n in [4_usize, 8, 16, 32] {
        let models = random_suite(99, n);
        group.bench_function(format!("{n}_models"), |b| {
            b.iter(|| black_box(claire.train(black_box(&models)).expect("train")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training_phase,
    bench_full_flow,
    bench_custom_dse,
    bench_louvain,
    bench_parser,
    bench_graph_construction,
    bench_simulator,
    bench_synthetic_scaling
);
criterion_main!(benches);
