//! # claire-bench — experiment harnesses for every CLAIRE table and
//! figure
//!
//! One binary per paper artefact regenerates the corresponding table
//! or figure from a full framework run:
//!
//! | target | artefact |
//! |---|---|
//! | `table1` | Table I — training-set algorithms and parameter counts |
//! | `table2` | Table II — chiplet libraries of the `C_k` configurations |
//! | `table3` | Table III — subset partition and test assignment |
//! | `table4` | Table IV — training-phase NRE costs |
//! | `table5` | Table V — chiplet utilization on `C_g` vs `C_k` |
//! | `table6` | Table VI — test-phase NRE costs |
//! | `figure2` | Fig. 2 — edge-combination histogram |
//! | `figure3` | Fig. 3 — `C_1` graphs before/after clustering (DOT) |
//! | `figure4` | Fig. 4 — area/latency/energy on `C_g`/`C_i`/`C_k` |
//! | `ablate_clustering` | clustering-strategy ablation |
//! | `ablate_threshold` | Jaccard-threshold sweep |
//! | `ablate_cost` | monolithic vs chiplet recurring cost (area wall) |
//!
//! Criterion benches (`cargo bench`) time the framework itself — the
//! paper reports an eight-minute end-to-end convergence; this
//! implementation converges in well under a second.

use claire_core::{
    paper_table3_subsets, Claire, ClaireOptions, Engine, SubsetStrategy, TestOutput, TrainOutput,
};
use claire_model::{zoo, Model};

pub mod tables;

/// Options pinned to the paper's published Table III partition so
/// that downstream tables are reproduced conditional on it (see
/// EXPERIMENTS.md for why the partition itself is under-determined).
pub fn paper_options() -> ClaireOptions {
    ClaireOptions {
        subsets: SubsetStrategy::Fixed(paper_table3_subsets()),
        ..ClaireOptions::default()
    }
}

/// A complete framework run: training + test phases on the paper's
/// 13 + 6 algorithms.
pub struct PaperRun {
    /// The 13 training algorithms (Table I order).
    pub training: Vec<Model>,
    /// The 6 test algorithms.
    pub tests: Vec<Model>,
    /// Training-phase outputs.
    pub train: TrainOutput,
    /// Test-phase outputs.
    pub test: TestOutput,
}

/// Executes the full paper flow with [`paper_options`].
///
/// # Panics
///
/// Panics when the framework cannot derive a feasible configuration —
/// with the default constraints and model zoo this does not happen
/// (the integration tests pin that).
pub fn run_paper_flow() -> PaperRun {
    run_flow(paper_options())
}

/// Executes the full flow with caller-supplied options.
///
/// # Panics
///
/// Panics when training or testing fails (see [`run_paper_flow`]).
pub fn run_flow(opts: ClaireOptions) -> PaperRun {
    let engine = Engine::for_space(&opts.space);
    run_flow_with_engine(opts, &engine)
}

/// [`run_flow`] on an explicit evaluation [`Engine`], so callers can
/// control threads/caching and read the engine's counters afterwards.
///
/// # Panics
///
/// Panics when training or testing fails (see [`run_paper_flow`]).
pub fn run_flow_with_engine(opts: ClaireOptions, engine: &Engine) -> PaperRun {
    let claire = Claire::new(opts);
    let training = zoo::training_set();
    let tests = zoo::test_set();
    let train = claire
        .train_with_engine(&training, engine)
        .expect("training phase");
    let test = claire
        .evaluate_test_with_engine(&train, &tests, engine)
        .expect("test phase");
    PaperRun {
        training,
        tests,
        train,
        test,
    }
}

/// Renders rows as an aligned text table with a header.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    let line = |cells: Vec<String>, widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(
        header.iter().map(|s| (*s).to_owned()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            "t",
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        assert!(t.contains("== t =="));
        assert!(t.contains("longer  z"));
        // header padded to widest cell
        assert!(t.contains("a       bbbb"));
    }

    #[test]
    fn paper_options_pin_subsets() {
        match paper_options().subsets {
            SubsetStrategy::Fixed(groups) => assert_eq!(groups.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }
}
