//! Regenerates Table V: chiplet utilization of the test algorithms on
//! the generic configuration vs their assigned library configuration.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::table5_rows(&run);
    print!(
        "{}",
        render_table(
            "Table V: chiplet utilization, generic vs library-synthesized",
            &["Test Algorithm", "U(i,g)", "Config", "U(i,k)", "Improvement"],
            &rows,
        )
    );
    println!();
    println!("Paper reference: BERT 0.188->0.75, Graphormer 0.125->0.5,");
    println!("ViT 0.188->0.75, AST 0.125->0.5, DETR 0.25->0.4, Alexnet 0.31->0.5");
    println!("(improvements 1.6x-4x).");
}
