//! Regenerates Table V: chiplet utilization of the test algorithms on
//! the generic configuration vs their assigned library configuration.

use claire_bench::{run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    print!("{}", tables::table5_rendered(&run));
    println!();
    println!("Paper reference: BERT 0.188->0.75, Graphormer 0.125->0.5,");
    println!("ViT 0.188->0.75, AST 0.125->0.5, DETR 0.25->0.4, Alexnet 0.31->0.5");
    println!("(improvements 1.6x-4x).");
}
