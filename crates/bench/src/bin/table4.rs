//! Regenerates Table IV: training-phase NRE costs of the
//! library-synthesized configurations vs cumulative custom costs.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::table4_rows(&run);
    print!(
        "{}",
        render_table(
            "Table IV: training-phase NRE (normalised to C_g)",
            &["Config", "Training Subset", "NRE_cstm", "NRE_k", "Benefit"],
            &rows,
        )
    );
    println!();
    println!("Paper reference: C_1 2.998 vs 0.5 (5.99x); C_3 0.999 vs 0.25 (3.99x).");
}
