//! Ablation: prefill vs single-token decode under the weight-streaming
//! memory model. Prefill amortises every streamed weight over 2048
//! positions; decode re-streams the full model per generated token, so
//! its latency is pure memory bandwidth — the regime the paper's
//! compute-only model cannot represent.

use claire_bench::render_table;
use claire_core::evaluate::{evaluate_with, EvalOptions};
use claire_core::{Claire, ClaireOptions};
use claire_model::zoo;
use claire_ppa::MemoryModel;

fn main() {
    let claire = Claire::new(ClaireOptions::default());
    let cases = [
        (zoo::gpt2(), zoo::gpt2_decode()),
        (zoo::llama3_8b(), zoo::llama3_8b_decode()),
        (zoo::mixtral_8x7b(), zoo::mixtral_8x7b_decode()),
    ];
    let mut rows = Vec::new();
    for (prefill, decode) in cases {
        for (m, phase) in [(&prefill, "prefill"), (&decode, "decode 1")] {
            let custom = claire.custom_for(m).expect("feasible");
            let lat = |mem: Option<MemoryModel>| {
                evaluate_with(
                    m,
                    &custom.config,
                    EvalOptions {
                        memory: mem,
                        ..EvalOptions::default()
                    },
                )
                .expect("covered")
                .latency_s
                    * 1e3
            };
            let compute = lat(None);
            let hbm = lat(Some(MemoryModel::hbm2e()));
            rows.push(vec![
                m.name().to_owned(),
                phase.to_owned(),
                format!("{compute:.2}"),
                format!("{hbm:.2}"),
                format!("{:.1}x", hbm / compute),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: prefill vs decode under weight streaming (HBM2E)",
            &[
                "Algorithm",
                "Phase",
                "Compute-only (ms)",
                "With HBM2E (ms)",
                "Memory penalty"
            ],
            &rows,
        )
    );
    println!();
    println!("Decode is memory-bound even on HBM2E: one token's MACs cannot");
    println!("hide 8-47 GB of weight traffic. The chiplet-library conclusions");
    println!("(NRE, utilization) are unaffected - they depend on module");
    println!("composition, not on which side of the roofline the workload sits.");
}
