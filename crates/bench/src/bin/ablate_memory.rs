//! Ablation: the memory wall the paper's compute-only latency model
//! hides. With weight streaming bounded by DDR4 or HBM2E bandwidth,
//! the billion-parameter LLMs flip from compute-bound to
//! memory-bound; the CNN-scale algorithms barely move.

use claire_bench::{paper_options, render_table};
use claire_core::evaluate::{evaluate_with, EvalOptions};
use claire_core::Claire;
use claire_model::zoo;
use claire_ppa::MemoryModel;

fn main() {
    let claire = Claire::new(paper_options());
    let models = zoo::training_set();
    let out = claire.train(&models).expect("training");

    let mut rows = Vec::new();
    for (i, m) in models.iter().enumerate() {
        let cfg = &out.customs[i].config;
        let base = out.customs[i].report.latency_s;
        let lat = |mem: MemoryModel| {
            evaluate_with(
                m,
                cfg,
                EvalOptions {
                    memory: Some(mem),
                    ..EvalOptions::default()
                },
            )
            .expect("covered")
            .latency_s
        };
        let ddr = lat(MemoryModel::ddr4_3200());
        let hbm = lat(MemoryModel::hbm2e());
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.2}", m.param_count() as f64 / 1e6),
            format!("{:.3}", base * 1e3),
            format!("{:.3}", ddr * 1e3),
            format!("{:.2}x", ddr / base),
            format!("{:.3}", hbm * 1e3),
            format!("{:.2}x", hbm / base),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: weight-streaming memory wall (custom configs)",
            &[
                "Algorithm",
                "Params (M)",
                "Compute-only (ms)",
                "DDR4 (ms)",
                "",
                "HBM2E (ms)",
                "",
            ],
            &rows,
        )
    );
    println!();
    println!("At the 2048-token prefill shapes modelled here, compute still");
    println!("covers most of the streaming (1.0x-2.5x inflation on DDR4, none");
    println!("on HBM2E); the VGG/Swin-style dense weight stacks hurt most. A");
    println!("single-token decode pass would flip the LLMs fully memory-bound");
    println!("(Llama-3-8B: ~0.3 s to stream 8 GB over one DDR4 channel).");
}
