//! Regenerates Fig. 3: the C_1 universal graph before and after
//! clustering, in Graphviz DOT format (pipe into `dot -Tpng`).

use claire_bench::run_paper_flow;
use claire_core::graphs::universal_graph;
use claire_graph::louvain;

fn main() {
    let run = run_paper_flow();
    let c1 = &run.train.libraries[0];
    let members: Vec<_> = c1
        .members
        .iter()
        .map(|&i| run.training[i].clone())
        .collect();
    let ug = universal_graph(&members, &c1.config.hw);

    println!("// (a) monolithic chip before clustering");
    print!("{}", ug.to_dot("C1_before", None));

    let partition = louvain(&ug, 1.0);
    println!("// (b) chiplet-based system after Louvain clustering");
    let community = |n: &claire_model::OpClass| partition.community_of(n).unwrap_or(0);
    print!("{}", ug.to_dot("C1_after", Some(&community)));

    eprintln!(
        "chiplets: {:?}",
        partition
            .communities()
            .iter()
            .map(|c| c.iter().map(|x| x.label()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
}
