//! Ablation: interposer placement quality.
//!
//! When a design fragments into many chiplets (the per-group extreme
//! of the clustering ablation), where each die sits on the 2.5-D
//! interposer decides how many AIB hops every transfer pays. This
//! bench compares the optimiser's placement against a pessimal
//! (reversed) one on the per-module-group variant of each training
//! configuration.

use claire_bench::{paper_options, render_table};
use claire_core::evaluate::evaluate;
use claire_core::place::{chiplet_traffic, place, InterposerPlacement};
use claire_core::{Chiplet, Claire};
use claire_model::zoo;
use std::collections::BTreeSet;

fn per_group(config: &claire_core::DesignConfig) -> claire_core::DesignConfig {
    let mut cfg = config.clone();
    cfg.chiplets = cfg
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let set: BTreeSet<_> = [*c].into_iter().collect();
            Chiplet::from_classes(format!("L{}", i + 1), set, &cfg.hw)
        })
        .collect();
    cfg
}

fn main() {
    let claire = Claire::new(paper_options());
    let models = zoo::training_set();
    let out = claire.train(&models).expect("training");

    let mut rows = Vec::new();
    for lib in &out.libraries {
        let members: Vec<_> = lib.members.iter().map(|&i| models[i].clone()).collect();
        let mut cfg = per_group(&lib.config);
        let n = cfg.chiplets.len();
        if n < 3 {
            continue; // placement is trivial below three dies
        }
        let ug = claire_core::graphs::universal_graph(&members, &cfg.hw);
        let traffic = chiplet_traffic(&cfg, &ug);

        let optimised = place(n, &traffic);
        // Pessimal: heaviest communicators forced to opposite corners
        // by reversing the optimised assignment.
        let mut reversed_slots: Vec<(u32, u32)> = (0..n).map(|i| optimised.slot(i)).collect();
        reversed_slots.reverse();
        let pessimal =
            InterposerPlacement::from_slots(reversed_slots, (n as f64).sqrt().ceil() as u32);

        let mut nop_energy = |p: InterposerPlacement| {
            cfg.placement = Some(p);
            members
                .iter()
                .map(|m| evaluate(m, &cfg).expect("covered").nop_energy_j)
                .sum::<f64>()
                * 1e3
        };
        let e_opt = nop_energy(optimised.clone());
        let e_bad = nop_energy(pessimal);
        rows.push(vec![
            lib.config.name.clone(),
            n.to_string(),
            format!("{:.1}", optimised.wirelength(&traffic) / 1e6),
            format!("{:.3}", e_opt),
            format!("{:.3}", e_bad),
            format!("{:.2}x", e_bad / e_opt.max(1e-12)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: interposer placement (per-module-group partitions)",
            &[
                "Config",
                "#Dies",
                "Wirelen (MB-hops)",
                "NoP opt (mJ)",
                "NoP pessimal (mJ)",
                "Penalty",
            ],
            &rows,
        )
    );
    println!();
    println!("Greedy + swap placement keeps hot producer/consumer dies");
    println!("adjacent; a pessimal arrangement multiplies NoP energy by the");
    println!("extra AIB hops every transfer must cross.");
}
