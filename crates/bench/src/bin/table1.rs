//! Regenerates Table I: the training-set algorithms, their types and
//! parameter counts.

use claire_bench::{render_table, tables};

fn main() {
    let rows = tables::table1_rows();
    print!(
        "{}",
        render_table(
            "Table I: AI algorithms selected in the training set",
            &["Algorithm", "Type", "# Params", "Source"],
            &rows,
        )
    );
    println!();
    println!("Paper reference: 11.7M, 138M, 7.98M, 3.5M, 14.21M, 25.5M, 46.7B,");
    println!("                 137M, 8.03B, 342M, 304M, 29M, 1.54B");
}
