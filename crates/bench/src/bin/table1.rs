//! Regenerates Table I: the training-set algorithms, their types and
//! parameter counts.

use claire_bench::tables;

fn main() {
    print!("{}", tables::table1_rendered());
    println!();
    println!("Paper reference: 11.7M, 138M, 7.98M, 3.5M, 14.21M, 25.5M, 46.7B,");
    println!("                 137M, 8.03B, 342M, 304M, 29M, 1.54B");
}
