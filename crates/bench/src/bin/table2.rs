//! Regenerates Table II: the chiplet libraries inside the
//! library-synthesized configurations.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::table2_rows(&run);
    print!(
        "{}",
        render_table(
            "Table II: design specifications of the chiplet libraries (C_k)",
            &[
                "Chiplet Library",
                "SA Size",
                "#SA",
                "Activation Types",
                "#Act",
                "Pooling Types",
                "#Pool",
                "FLATTEN",
                "PERMUTE",
            ],
            &rows,
        )
    );
    println!();
    println!("Paper reference: 7 libraries, all 32x32 arrays, 32 or 64 per");
    println!("chiplet, 16 activation / 16 pooling units; FLATTEN/PERMUTE on L2/L5.");
}
