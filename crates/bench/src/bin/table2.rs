//! Regenerates Table II: the chiplet libraries inside the
//! library-synthesized configurations.

use claire_bench::{run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    print!("{}", tables::table2_rendered(&run));
    println!();
    println!("Paper reference: 7 libraries, all 32x32 arrays, 32 or 64 per");
    println!("chiplet, 16 activation / 16 pooling units; FLATTEN/PERMUTE on L2/L5.");
}
