//! Ablation: leakage energy with and without power gating.
//!
//! The paper keeps energy dynamic-only and notes that "power gating
//! for underutilized units was not applied, \[so\] the energy
//! consumption varied by only 0.2% across the configurations". This
//! bench adds 28-nm leakage to show what that choice hides: without
//! gating, the generic configuration's idle silicon burns extra
//! energy for every algorithm; gating restores near-custom energy.

use claire_bench::{paper_options, render_table, run_paper_flow};
use claire_core::evaluate::{evaluate_with, EvalOptions};
use claire_model::zoo;

fn main() {
    let _ = paper_options();
    let run = run_paper_flow();
    let dynamic_only = EvalOptions::default();
    let leaky = EvalOptions {
        include_leakage: true,
        ..EvalOptions::default()
    };
    let gated = EvalOptions {
        include_leakage: true,
        power_gating: true,
        ..EvalOptions::default()
    };

    let mut rows = Vec::new();
    for (i, m) in zoo::training_set().iter().enumerate() {
        let lib = run.train.library_of(i).expect("assigned");
        let custom_cfg = &run.train.customs[i].config;
        let generic_cfg = &run.train.generic;
        let lib_cfg = &run.train.libraries[lib].config;

        let e = |cfg, opts| evaluate_with(m, cfg, opts).expect("covered").energy_j;
        let e_custom = e(custom_cfg, dynamic_only);
        let overhead = |cfg, opts| format!("{:+.1}%", 100.0 * (e(cfg, opts) / e_custom - 1.0));
        rows.push(vec![
            m.name().to_owned(),
            overhead(generic_cfg, dynamic_only),
            overhead(generic_cfg, leaky),
            overhead(generic_cfg, gated),
            overhead(lib_cfg, leaky),
            overhead(lib_cfg, gated),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: energy overhead vs dynamic-only custom design",
            &[
                "Algorithm",
                "C_g dyn",
                "C_g leak",
                "C_g gated",
                "C_k leak",
                "C_k gated",
            ],
            &rows,
        )
    );
    println!();
    println!("Dynamic-only (paper setting): configurations within a fraction of");
    println!("a percent. With leakage, the generic configuration pays for its");
    println!("idle area; power gating recovers most of it - and the library");
    println!("configurations need far less gating because they carry less");
    println!("unused silicon (the utilization argument in energy form).");
}
