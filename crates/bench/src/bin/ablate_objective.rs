//! Ablation: the DSE selection objective. The paper minimises area
//! ("the configuration with the lowest area that satisfies the
//! performance constraints"); this bench shows what min-latency and
//! min-EDP selection would have chosen instead, per training
//! algorithm.

use claire_bench::render_table;
use claire_core::dse::{custom_config_with, DseObjective};
use claire_core::Constraints;
use claire_model::zoo;
use claire_ppa::DseSpace;

fn main() {
    let space = DseSpace::default();
    let cons = Constraints::default();
    let mut rows = Vec::new();
    for m in zoo::training_set() {
        let mut cells = vec![m.name().to_owned()];
        for obj in [
            DseObjective::MinArea,
            DseObjective::MinLatency,
            DseObjective::MinEnergyDelayProduct,
        ] {
            match custom_config_with(&m, &space, &cons, obj) {
                Ok((cfg, r)) => cells.push(format!(
                    "{} | {:.0}mm2 {:.2}ms",
                    cfg.hw,
                    r.area_mm2,
                    r.latency_s * 1e3
                )),
                Err(e) => cells.push(format!("err: {e}")),
            }
        }
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            "Ablation: DSE objective (selected point | area | latency)",
            &["Algorithm", "MinArea (paper)", "MinLatency", "MinEDP"],
            &rows,
        )
    );
    println!();
    println!("Min-area (the paper's objective) consistently selects the most");
    println!("compact point inside the 1.5x latency envelope; min-latency");
    println!("spends up to ~4x the silicon for <=1.5x speedup.");
}
