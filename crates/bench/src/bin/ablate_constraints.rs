//! Sensitivity study: how robust are the headline conclusions to the
//! Input #4 constraint values? Sweeps the latency slack and the
//! chiplet area limit and reports the subset count, total library NRE
//! and aggregate benefit under the paper-pinned partition.

use claire_bench::{paper_options, render_table};
use claire_core::{Claire, Constraints};

fn main() {
    let mut rows = Vec::new();
    for latency_slack in [0.1, 0.25, 0.5, 1.0] {
        for area in [50.0, 100.0, 200.0] {
            let mut opts = paper_options();
            opts.constraints = Constraints {
                chiplet_area_limit_mm2: area,
                latency_slack,
                ..Constraints::default()
            };
            let claire = Claire::new(opts);
            match claire.train(&claire_model::zoo::training_set()) {
                Ok(out) => {
                    let lib_nre: f64 = out.libraries.iter().map(|l| l.nre_normalized).sum();
                    let custom_nre: f64 =
                        out.libraries.iter().map(|l| l.cumulative_custom_nre).sum();
                    rows.push(vec![
                        format!("{latency_slack:.2}"),
                        format!("{area:.0}"),
                        out.generic.chiplet_count().to_string(),
                        format!("{lib_nre:.3}"),
                        format!("{:.2}x", custom_nre / lib_nre),
                    ]);
                }
                Err(e) => rows.push(vec![
                    format!("{latency_slack:.2}"),
                    format!("{area:.0}"),
                    format!("infeasible: {e}"),
                    String::new(),
                    String::new(),
                ]),
            }
        }
    }
    print!(
        "{}",
        render_table(
            "Sensitivity: latency slack x chiplet area limit (paper subsets)",
            &[
                "Slack",
                "Area limit",
                "C_g chiplets",
                "Sum NRE_k",
                "Benefit"
            ],
            &rows,
        )
    );
    println!();
    println!("Two findings: (1) below ~1.5x latency slack no single generic");
    println!("configuration can serve all 13 algorithms at once - the");
    println!("custom-vs-generic tension that motivates library synthesis in the");
    println!("first place; (2) wherever the flow is feasible, the aggregate NRE");
    println!("benefit sits stably around 2.5x-2.7x, because it is driven by");
    println!("chiplet-type counts, which the constraints barely move.");
}
