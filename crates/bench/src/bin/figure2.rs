//! Regenerates Fig. 2: the top-12 edge combinations (layer
//! connections) across the training set, as a text histogram.

use claire_bench::tables;

fn main() {
    let rows = tables::figure2_rows(12);
    let max: u32 = rows
        .iter()
        .map(|r| r[1].parse::<u32>().expect("count"))
        .max()
        .unwrap_or(1);
    println!("== Fig. 2: edge-combination occurrences (training set) ==");
    for r in &rows {
        let count: u32 = r[1].parse().expect("count");
        let bar = "#".repeat(((count as f64 / max as f64) * 50.0).ceil() as usize);
        println!("{:>24} {:>6}  {}", r[0], count, bar);
    }
    println!();
    println!("Paper reference: LINEAR-LINEAR dominates (Q/K/V in transformers),");
    println!("CONV2D-RELU next (CNNs).");
}
