//! Regenerates Table III: library-synthesized configurations and
//! their training/test algorithm subsets.

use claire_bench::{run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    print!("{}", tables::table3_rendered(&run));
    println!();
    println!("Paper reference: C_1 <- DETR, Alexnet; C_3 <- BERT, Graphormer,");
    println!("ViT, AST; C_2/C_4/C_5 receive no test algorithm.");
}
