//! Regenerates Table III: library-synthesized configurations and
//! their training/test algorithm subsets.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::table3_rows(&run);
    print!(
        "{}",
        render_table(
            "Table III: configurations and their algorithm subsets",
            &["Config", "Training Subset (TR_k)", "Test Subset (TT_k)"],
            &rows,
        )
    );
    println!();
    println!("Paper reference: C_1 <- DETR, Alexnet; C_3 <- BERT, Graphormer,");
    println!("ViT, AST; C_2/C_4/C_5 receive no test algorithm.");
}
