//! Monte-Carlo robustness of the headline NRE benefits to cost-model
//! calibration error. Every NreModel coefficient is substituted from
//! public figures (DESIGN.md); this bench perturbs each coefficient
//! independently by up to ±50% (log-uniform, seeded) 2000 times and
//! reports the quantiles of the C_1 and C_3 training benefits.

use claire_bench::{paper_options, render_table};
use claire_core::metrics::normalized_nre;
use claire_core::Claire;
use claire_cost::NreModel;
use claire_model::zoo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn perturb(base: &NreModel, rng: &mut StdRng) -> NreModel {
    let mut f = || (rng.gen_range(-1.0_f64..1.0) * 0.5_f64.ln()).exp(); // log-uniform in [0.5, 2]
    NreModel {
        mask_set: base.mask_set * f(),
        design_per_mm2: base.design_per_mm2 * f(),
        verification_per_mm2: base.verification_per_mm2 * f(),
        ip_licensing: base.ip_licensing * f(),
        integration_per_chiplet: base.integration_per_chiplet * f(),
        package_base: base.package_base * f(),
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let claire = Claire::new(paper_options());
    let out = claire.train(&zoo::training_set()).expect("training");
    let base = NreModel::tsmc28();
    let mut rng = StdRng::seed_from_u64(0x00C1_A12E);

    let mut rows = Vec::new();
    for lib_idx in [0_usize, 2] {
        let lib = &out.libraries[lib_idx];
        let mut benefits: Vec<f64> = (0..2000)
            .map(|_| {
                let m = perturb(&base, &mut rng);
                let lib_nre = normalized_nre(&m, &lib.config, &out.generic);
                let custom: f64 = lib
                    .members
                    .iter()
                    .map(|&i| normalized_nre(&m, &out.customs[i].config, &out.generic))
                    .sum();
                custom / lib_nre
            })
            .collect();
        benefits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        rows.push(vec![
            lib.config.name.clone(),
            format!("{:.2}x", lib.cumulative_custom_nre / lib.nre_normalized),
            format!("{:.2}x", quantile(&benefits, 0.05)),
            format!("{:.2}x", quantile(&benefits, 0.50)),
            format!("{:.2}x", quantile(&benefits, 0.95)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Monte-Carlo NRE-calibration robustness (2000 draws, +/-2x per coefficient)",
            &["Config", "Nominal", "p5", "p50", "p95"],
            &rows,
        )
    );
    println!();
    println!("Even with every cost coefficient independently off by up to 2x,");
    println!("the benefit distribution stays far above break-even: the result");
    println!("is structural (chiplet-type counts), not a calibration artefact.");
}
