//! Ablation: Louvain clustering vs single-chiplet vs one-chiplet-per-
//! module-group partitioning — quantifies the NoP energy overhead the
//! clustering step is designed to minimise, plus the NRE consequence.

use claire_bench::{paper_options, render_table};
use claire_core::{Chiplet, Claire, DesignConfig};
use claire_cost::NreModel;
use claire_graph::spectral_bisect;
use claire_model::zoo;
use std::collections::BTreeSet;

fn variant(base: &DesignConfig, mode: &str, members: &[claire_model::Model]) -> DesignConfig {
    let mut cfg = base.clone();
    match mode {
        "louvain" => {}
        "spectral" => {
            let ug = claire_core::graphs::universal_graph(members, &cfg.hw);
            let partition = spectral_bisect(&ug, 200);
            cfg.chiplets = partition
                .communities()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let set: BTreeSet<_> = c.iter().copied().collect();
                    Chiplet::from_classes(format!("L{}", i + 1), set, &cfg.hw)
                })
                .collect();
            // Attach configuration classes absent from the graph.
            for class in cfg.classes.clone() {
                if cfg.chiplet_of(class).is_none() {
                    let last = cfg.chiplets.len() - 1;
                    cfg.chiplets[last].classes.insert(class);
                }
            }
        }
        "single" => {
            cfg.chiplets = vec![Chiplet::from_classes("L1", cfg.classes.clone(), &cfg.hw)];
        }
        "per-group" => {
            cfg.chiplets = cfg
                .classes
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let set: BTreeSet<_> = [*c].into_iter().collect();
                    Chiplet::from_classes(format!("L{}", i + 1), set, &cfg.hw)
                })
                .collect();
        }
        other => panic!("unknown mode {other}"),
    }
    cfg
}

fn main() {
    let claire = Claire::new(paper_options());
    let models = zoo::training_set();
    let out = claire.train(&models).expect("training");
    let nre = NreModel::tsmc28();
    let generic_nre = nre.system_nre(&out.generic.chiplet_areas());

    let mut rows = Vec::new();
    for lib in &out.libraries {
        let members: Vec<_> = lib.members.iter().map(|&i| models[i].clone()).collect();
        for mode in ["louvain", "spectral", "single", "per-group"] {
            let cfg = variant(&lib.config, mode, &members);
            let mut nop = 0.0;
            let mut energy = 0.0;
            for m in &members {
                let r = claire_core::evaluate::evaluate(m, &cfg).expect("covered");
                nop += r.nop_energy_j;
                energy += r.energy_j;
            }
            rows.push(vec![
                lib.config.name.clone(),
                mode.to_owned(),
                cfg.chiplet_count().to_string(),
                format!("{:.3}", nre.system_nre(&cfg.chiplet_areas()) / generic_nre),
                format!("{:.3}", 1e3 * nop),
                format!("{:.2}%", 100.0 * nop / energy),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: chiplet partitioning strategy",
            &[
                "Config",
                "Strategy",
                "#Chiplets",
                "NRE (norm.)",
                "NoP energy (mJ)",
                "NoP share"
            ],
            &rows,
        )
    );
    println!();
    println!("Louvain sits between the extremes: near-monolithic NoP energy at");
    println!("a fraction of the per-group NRE/integration cost. Spectral");
    println!("bisection forces two chiplets even where one suffices, paying");
    println!("NoP energy without an NRE return.");
}
