//! Regenerates Table VI: test-phase NRE costs of the
//! library-synthesized configurations vs cumulative custom costs.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::table6_rows(&run);
    print!(
        "{}",
        render_table(
            "Table VI: test-phase NRE (normalised to C_g)",
            &["Config", "Test Subset", "NRE_cstm", "NRE_k", "Benefit"],
            &rows,
        )
    );
    println!();
    println!("Paper reference: C_1 0.999 vs 0.5 (1.99x); C_3 0.999 vs 0.25 (3.99x).");
}
