//! Regenerates Table VI: test-phase NRE costs of the
//! library-synthesized configurations vs cumulative custom costs.

use claire_bench::{run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    print!("{}", tables::table6_rendered(&run));
    println!();
    println!("Paper reference: C_1 0.999 vs 0.5 (1.99x); C_3 0.999 vs 0.25 (3.99x).");
}
