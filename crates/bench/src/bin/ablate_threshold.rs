//! Ablation: sweep the weighted-Jaccard subset threshold and report
//! how many libraries emerge and the aggregate NRE benefit — the
//! custom-vs-generic trade the paper's library synthesis navigates.

use claire_bench::render_table;
use claire_core::{Claire, ClaireOptions, SubsetStrategy, WeightScale};
use claire_model::zoo;

fn main() {
    let models = zoo::training_set();
    let mut rows = Vec::new();
    for threshold in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let opts = ClaireOptions {
            subsets: SubsetStrategy::WeightedJaccard {
                threshold,
                scale: WeightScale::Log,
            },
            ..ClaireOptions::default()
        };
        let claire = Claire::new(opts);
        let out = match claire.train(&models) {
            Ok(o) => o,
            Err(e) => {
                rows.push(vec![
                    format!("{threshold:.2}"),
                    format!("error: {e}"),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let total_lib: f64 = out.libraries.iter().map(|l| l.nre_normalized).sum();
        let total_custom: f64 = out.libraries.iter().map(|l| l.cumulative_custom_nre).sum();
        rows.push(vec![
            format!("{threshold:.2}"),
            out.libraries.len().to_string(),
            format!("{total_lib:.3}"),
            format!("{:.2}x", total_custom / total_lib),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: Jaccard threshold -> #subsets and NRE benefit",
            &["Threshold", "#Libraries", "Sum NRE_k", "Benefit vs custom"],
            &rows,
        )
    );
    println!();
    println!("Low thresholds collapse toward one generic-like library (cheap NRE,");
    println!("poor utilization); high thresholds approach per-algorithm customs.");
}
