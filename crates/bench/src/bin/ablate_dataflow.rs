//! Ablation: weight-stationary (the paper's choice) vs
//! output-stationary systolic dataflow, per workload family.
//!
//! The paper fixes weight-stationary "due to its advantage in data
//! reuse" (Eyeriss-style reasoning). This bench quantifies the
//! latency consequence of that design decision per algorithm on the
//! 32x32x32 design point.

use claire_bench::render_table;
use claire_model::{zoo, LayerKind};
use claire_ppa::{Dataflow, HwParams, SystolicArrayModel};

fn systolic_cycles(model: &claire_model::Model, df: Dataflow) -> u64 {
    let sa = SystolicArrayModel::with_dataflow(HwParams::new(32, 32, 16, 16), df);
    model
        .layers()
        .iter()
        .map(|l| match &l.kind {
            LayerKind::Conv2d(c) => sa.conv2d(c).cycles,
            LayerKind::Conv1d(c) => sa.conv1d(c).cycles,
            LayerKind::Linear(lin) => sa.linear(lin).cycles,
            _ => 0,
        })
        .sum()
}

fn main() {
    let mut rows = Vec::new();
    for m in zoo::training_set() {
        let ws = systolic_cycles(&m, Dataflow::WeightStationary);
        let os = systolic_cycles(&m, Dataflow::OutputStationary);
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.3}", ws as f64 / 1e6),
            format!("{:.3}", os as f64 / 1e6),
            format!("{:.2}x", os as f64 / ws as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: systolic dataflow (compute cycles, 32x32 SA x32)",
            &["Algorithm", "WS Mcycles", "OS Mcycles", "OS/WS"],
            &rows,
        )
    );
    println!();
    println!("Weight-stationary wins where output positions outnumber the");
    println!("reduction depth (CNN feature maps, long sequences); output-");
    println!("stationary catches up on deep, narrow matmuls. The paper's");
    println!("fixed WS choice is the right default for this workload mix.");
}
