//! Ablation: the "area wall" — recurring (per-unit) cost of one
//! monolithic die vs equal-area chiplet splits under rising defect
//! density, using the yield model the paper's cited cost framework
//! provides.

use claire_bench::render_table;
use claire_cost::RecurringModel;

fn main() {
    let mut rows = Vec::new();
    for d0 in [0.0005, 0.001, 0.002, 0.003] {
        let model = RecurringModel {
            defect_density_per_mm2: d0,
            ..RecurringModel::tsmc28()
        };
        for total in [200.0, 400.0, 600.0] {
            let mono = model.system_unit_cost(&[total]);
            let halves = model.system_unit_cost(&[total / 2.0, total / 2.0]);
            let quads = model.system_unit_cost(&[total / 4.0; 4]);
            rows.push(vec![
                format!("{:.4}", d0),
                format!("{total:.0}"),
                format!("${mono:.2}"),
                format!("${halves:.2}"),
                format!("${quads:.2}"),
                format!("{:.2}x", mono / quads),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: monolithic vs chiplet recurring cost (area wall)",
            &[
                "D0 (/mm^2)",
                "Total mm^2",
                "1 die",
                "2 dies",
                "4 dies",
                "Mono/Quad"
            ],
            &rows,
        )
    );
    println!();
    println!("Rising defect density and die size push monolithic cost past the");
    println!("chiplet splits - the motivation for 2.5D integration in Sec. I.");
}
