//! Workload profiler: the computing-profile analysis of Sec. IV
//! generalised to every built-in algorithm — MACs, parameters,
//! activation traffic, arithmetic intensity, layer inventory and the
//! dominant layer connection.

use claire_bench::render_table;
use claire_model::zoo;

fn main() {
    let mut models = zoo::training_set();
    models.extend(zoo::test_set());
    let mut rows = Vec::new();
    for m in &models {
        let combos = m.edge_combination_counts();
        let dominant = combos
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|((a, b), _)| format!("{a}-{b}"))
            .unwrap_or_default();
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.2}", m.macs() as f64 / 1e9),
            format!("{:.1}", m.param_count() as f64 / 1e6),
            format!("{:.1}", m.activation_bytes() as f64 / 1e6),
            format!("{:.1}", m.arithmetic_intensity()),
            m.op_class_counts().len().to_string(),
            dominant,
        ]);
    }
    print!(
        "{}",
        render_table(
            "Workload profiles (Sec. IV computing-profile analysis, all models)",
            &[
                "Algorithm",
                "GMACs",
                "MParams",
                "Act MB",
                "MACs/B",
                "#Classes",
                "Dominant edge",
            ],
            &rows,
        )
    );
    println!();
    println!("PEANUT-RCNN tops the class-diversity column (the paper's");
    println!("observation about the generic configuration's area); the LLMs'");
    println!("arithmetic intensity collapses toward their token count.");
}
