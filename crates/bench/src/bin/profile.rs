//! Workload profiler: the computing-profile analysis of Sec. IV
//! generalised to every built-in algorithm — MACs, parameters,
//! activation traffic, arithmetic intensity, layer inventory and the
//! dominant layer connection — plus an evaluation-engine profile
//! comparing the serial, uncached reference against the parallel,
//! memoized engine on the full 19-model train + test flow, and a
//! clustering + partitioning stage profile comparing the map-based
//! kernels against the CSR kernels with the memoized Louvain tier.
//!
//! Besides the human-readable tables, the run writes
//! `BENCH_profile.json` (per-stage wall times, memo-tier hit rates,
//! thread count, stage speedups, staged-DSE pruning statistics) for
//! machine consumption — CI uploads it as an artifact.
//!
//! Pass `--dense` (or `--dense=N`) to sweep the staged-DSE comparison
//! over [`DseSpace::dense`]'s `N⁴`-point stress space (default
//! `N = 10`, i.e. 10,000 points) instead of the paper's 81; in dense
//! mode the run asserts the staged sweep is at least 2x faster than
//! the exhaustive reference while selecting bit-identical
//! configurations.
//!
//! Pass `--huge` to additionally stress the generative search path:
//! a seeded successive-halving run over [`GridSpace::huge`]'s 2²⁰
//! (~10⁶) hardware points, never materialized as a vector, priced
//! exactly only at the surviving rung. The run reports the wall time
//! in the `search.huge` JSON object; combined with `--dense`, it
//! asserts the 2²⁰-point sampled search finishes within the dense
//! exhaustive sweep's wall time.

use claire_bench::{paper_options, render_table, run_flow_with_engine};
use claire_core::assign::{partition_training_merged, scaled_vector, WeightScale};
use claire_core::dse::{custom_config_with_engine, set_config_with_engine, DseObjective};
use claire_core::evaluate::EvalOptions;
use claire_core::graphs::universal_graph;
use claire_core::telemetry::Metric;
use claire_core::{
    search_with_engine, Claire, Constraints, DesignConfig, Engine, EngineStats, LifecycleEvent,
    LifecycleStage, QuantileDigest, SearchPolicy, ServeObserver, Telemetry,
};
use claire_graph::{agglomerate_by, louvain_reference, weighted_jaccard};
use claire_model::{zoo, Model};
use claire_ppa::{DesignSpace, DseSpace, GridSpace, HwParams, MemoryModel};
use serde::{Number, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn main() {
    let mut models = zoo::training_set();
    models.extend(zoo::test_set());
    let mut rows = Vec::new();
    for m in &models {
        let combos = m.edge_combination_counts();
        let dominant = combos
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|((a, b), _)| format!("{a}-{b}"))
            .unwrap_or_default();
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.2}", m.macs() as f64 / 1e9),
            format!("{:.1}", m.param_count() as f64 / 1e6),
            format!("{:.1}", m.activation_bytes() as f64 / 1e6),
            format!("{:.1}", m.arithmetic_intensity()),
            m.op_class_counts().len().to_string(),
            dominant,
        ]);
    }
    print!(
        "{}",
        render_table(
            "Workload profiles (Sec. IV computing-profile analysis, all models)",
            &[
                "Algorithm",
                "GMACs",
                "MParams",
                "Act MB",
                "MACs/B",
                "#Classes",
                "Dominant edge",
            ],
            &rows,
        )
    );
    println!();
    println!("PEANUT-RCNN tops the class-diversity column (the paper's");
    println!("observation about the generic configuration's area); the LLMs'");
    println!("arithmetic intensity collapses toward their token count.");

    // Evaluation-engine profile: the full 19-model paper flow (13
    // training + 6 test algorithms), serial/uncached vs the default
    // parallel, memoized engine. Results are bit-identical; only the
    // wall time and the cache counters differ.
    println!();
    let serial = Engine::serial().with_cache(false);
    let t0 = Instant::now();
    run_flow_with_engine(paper_options(), &serial);
    let serial_time = t0.elapsed();

    let parallel = Engine::for_space(&paper_options().space);
    let t1 = Instant::now();
    run_flow_with_engine(paper_options(), &parallel);
    let parallel_time = t1.elapsed();

    println!("== Evaluation-engine profile (19-model train + test flow) ==");
    println!(
        "serial reference (1 thread, cache off): {:>9.3} ms",
        serial_time.as_secs_f64() * 1e3
    );
    println!(
        "parallel engine:                        {:>9.3} ms  ({:.2}x speedup)",
        parallel_time.as_secs_f64() * 1e3,
        serial_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
    print!("{}", parallel.stats());

    // Warm reflow: `run_flow_with_engine` reconstructs the zoo from
    // scratch, so every model arrives with a fresh instance id but an
    // unchanged layer structure. Under the old instance-id memo keys a
    // rerun re-missed every compute sum; the structural keys serve
    // them all from cache, which is exactly what this section pins.
    let flow_stats = parallel.stats();
    // Hook counts of the cold flow alone, snapshotted before the warm
    // reflow doubles them — the telemetry overhead model below divides
    // by the cold flow's wall time, so its numerator must count the
    // same flow.
    // Batch-added metrics land in one `count_by` atomic op per call
    // site (a screen noting its whole pruned count, a par_map noting
    // its item total), not one op per counted event — their values
    // overstate the executed hooks by orders of magnitude, so the
    // op-count model excludes them. The batch ops themselves are
    // bounded by the screen/map call counts, which the span total
    // already covers.
    const BATCHED: &[Metric] = &[
        Metric::DsePruned,
        Metric::DseEvaluated,
        Metric::DseLbPruned,
        Metric::PlanItems,
        Metric::ParItems,
        Metric::LouvainPasses,
        Metric::NocRerouteVisited,
    ];
    let cold_counter_hooks: u64 = Metric::ALL
        .iter()
        .filter(|m| !BATCHED.contains(m))
        .map(|&m| parallel.telemetry().counter(m))
        .sum();
    let cold_span_hooks: u64 = parallel
        .telemetry()
        .stage_aggregates_detailed()
        .iter()
        .map(|a| a.count)
        .sum();
    let t_reflow = Instant::now();
    run_flow_with_engine(paper_options(), &parallel);
    let reflow_time = t_reflow.elapsed();
    let reflow_stats = parallel.stats();
    println!();
    println!("== Warm reflow (fresh model instances, same engine) ==");
    println!(
        "cold flow: {:>9.3} ms  (compute-sum hit rate {:.1} %)",
        parallel_time.as_secs_f64() * 1e3,
        100.0 * flow_stats.sum_hit_rate()
    );
    println!(
        "warm flow: {:>9.3} ms  (cumulative compute-sum hit rate {:.1} %)",
        reflow_time.as_secs_f64() * 1e3,
        100.0 * reflow_stats.sum_hit_rate()
    );
    println!(
        "structural keys: {} structures over {} instances",
        reflow_stats.struct_entries, reflow_stats.struct_instances
    );
    assert!(
        reflow_stats.sum_hit_rate() > flow_stats.sum_hit_rate(),
        "reflow did not raise the compute-sum hit rate: {:.3} -> {:.3}",
        flow_stats.sum_hit_rate(),
        reflow_stats.sum_hit_rate()
    );
    // PR 2 recorded 38.7 % under instance-id keys; structural keys
    // must beat it.
    assert!(
        reflow_stats.sum_hit_rate() > 0.387,
        "cumulative compute-sum hit rate {:.3} does not beat the 38.7 % \
         instance-id-keyed baseline",
        reflow_stats.sum_hit_rate()
    );
    assert!(
        reflow_stats.struct_instances > reflow_stats.struct_entries,
        "reflow should map several instances onto each structure"
    );

    // Warm-state persistence: the serialized memo tiers must be a
    // pure accelerant across process restarts. Save the cold engine's
    // tiers, restore them into a fresh engine (a new "process"), and
    // rerun the identical flow — the warm restart must be
    // bit-identical, faster, and the snapshot bytes canonical
    // (independent of thread count). The `persist` object in
    // BENCH_profile.json carries the CI perf-smoke gate
    // (`warm_restart_speedup > 1.0`).
    let snap_dir = std::env::temp_dir().join(format!("claire-profile-snap-{}", std::process::id()));
    std::fs::create_dir_all(&snap_dir).expect("create snapshot scratch dir");
    let snap_path = snap_dir.join("claire.snapshot");

    // The model instances are shared by both runs: instance ids are
    // process-global cosmetic metadata (the memo keys are structural),
    // and sharing them lets the bit-identity check compare whole
    // outputs instead of a field subset.
    let persist_claire = Claire::new(paper_options());
    let persist_training = zoo::training_set();
    let persist_tests = zoo::test_set();
    let persist_flow = |engine: &Engine| {
        let train = persist_claire
            .train_with_engine(&persist_training, engine)
            .expect("training phase");
        let test = persist_claire
            .evaluate_test_with_engine(&train, &persist_tests, engine)
            .expect("test phase");
        format!("{train:?}\n{test:?}")
    };

    let persist_cold = Engine::for_space(&paper_options().space);
    let t_cold = Instant::now();
    let cold_rendered = persist_flow(&persist_cold);
    let persist_cold_time = t_cold.elapsed();

    let t_save = Instant::now();
    assert!(
        persist_cold
            .save_snapshot(&snap_path)
            .expect("save snapshot"),
        "cold engine had nothing to snapshot"
    );
    let save_time = t_save.elapsed();
    let snapshot_len = std::fs::metadata(&snap_path).expect("snapshot stat").len();

    let persist_warm = Engine::for_space(&paper_options().space);
    let t_load = Instant::now();
    assert!(
        persist_warm
            .load_snapshot(&snap_path)
            .expect("load snapshot"),
        "snapshot restored nothing"
    );
    let load_time = t_load.elapsed();
    let t_warm = Instant::now();
    let warm_rendered = persist_flow(&persist_warm);
    let persist_warm_time = t_warm.elapsed();

    let persist_identical = warm_rendered == cold_rendered;
    assert!(
        persist_identical,
        "flow restarted from a snapshot diverged from the cold flow"
    );
    let warm_restart_speedup = persist_cold_time.as_secs_f64() / persist_warm_time.as_secs_f64();

    // Canonical encoding: the same flow at 1, 2 and 8 threads reaches
    // byte-identical snapshots.
    let mut thread_snaps = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(threads);
        run_flow_with_engine(paper_options(), &engine);
        thread_snaps.push(engine.snapshot_bytes().expect("encode snapshot"));
    }
    let byte_identical_across_threads = thread_snaps.windows(2).all(|w| w[0] == w[1]);
    assert!(
        byte_identical_across_threads,
        "snapshot bytes diverged across thread counts"
    );
    std::fs::remove_dir_all(&snap_dir).ok();

    println!();
    println!("== Warm-state persistence (snapshot restart) ==");
    println!(
        "cold flow {:>9.3} ms, saved {snapshot_len} snapshot bytes in {:.3} ms",
        persist_cold_time.as_secs_f64() * 1e3,
        save_time.as_secs_f64() * 1e3
    );
    println!(
        "loaded in {:.3} ms, warm flow {:>9.3} ms  ({warm_restart_speedup:.2}x warm-restart speedup)",
        load_time.as_secs_f64() * 1e3,
        persist_warm_time.as_secs_f64() * 1e3
    );
    println!(
        "bit-identical outputs: {persist_identical}; \
         snapshot bytes identical at 1/2/8 threads: {byte_identical_across_threads}"
    );
    assert!(
        warm_restart_speedup > 1.0,
        "warm restart ({:.3} ms) not faster than the cold flow ({:.3} ms)",
        persist_warm_time.as_secs_f64() * 1e3,
        persist_cold_time.as_secs_f64() * 1e3
    );

    // Staged, constraint-pruned DSE vs the exhaustive reference: the
    // customs+generic selection pass over all 19 algorithms, on two
    // equally configured engines differing only in `with_pruning`.
    let dense_axis = std::env::args().skip(1).find_map(|a| {
        if a == "--dense" {
            Some(10)
        } else {
            a.strip_prefix("--dense=").and_then(|v| v.parse().ok())
        }
    });
    let dse_space = dense_axis.map_or_else(DseSpace::default, DseSpace::dense);
    let cons = Constraints::default();
    let exhaustive_engine = Engine::for_space(&dse_space).with_pruning(false);
    let (exhaustive_sel, exhaustive_time) =
        dse_selection_pass(&dse_space, &cons, &exhaustive_engine);
    let staged_engine = Engine::for_space(&dse_space);
    let (staged_sel, staged_time) = dse_selection_pass(&dse_space, &cons, &staged_engine);
    let selections_identical = staged_sel == exhaustive_sel;
    assert!(
        selections_identical,
        "staged DSE selected different configurations than the exhaustive sweep"
    );
    let dse_speedup = exhaustive_time.as_secs_f64() / staged_time.as_secs_f64();
    let dse_stats = staged_engine.stats();
    println!();
    println!(
        "== Staged DSE sweep (customs + generic, {} points{}) ==",
        dse_space.len(),
        if dense_axis.is_some() { ", dense" } else { "" }
    );
    println!(
        "exhaustive reference: {:>9.3} ms",
        exhaustive_time.as_secs_f64() * 1e3
    );
    println!(
        "staged + pruned:      {:>9.3} ms  ({dse_speedup:.2}x speedup, {:.1} % pruned)",
        staged_time.as_secs_f64() * 1e3,
        100.0 * dse_stats.pruned_fraction()
    );
    println!("selections bit-identical: {selections_identical}");
    if dense_axis.is_some() {
        assert!(
            dse_speedup >= 2.0,
            "dense-mode staged DSE speedup {dse_speedup:.2}x below the required 2x"
        );
    }

    // Search-at-scale profile: the latency lower-bound screen, the
    // successive-halving policy's exhaustive degeneracy and seeded
    // reproducibility, and (with --huge) a generative 2^20-point
    // sampled search.
    let lb_screen_total = dse_stats.dse_pruned + dse_stats.dse_lb_pruned + dse_stats.dse_evaluated;
    let lb_pruned_fraction = if lb_screen_total == 0 {
        0.0
    } else {
        dse_stats.dse_lb_pruned as f64 / lb_screen_total as f64
    };
    if dense_axis.is_some() {
        assert!(
            dse_stats.dse_lb_pruned > 0,
            "dense-mode latency lower-bound screen pruned nothing"
        );
    }

    // Budget >= |space| makes successive halving exactly exhaustive:
    // no rung ever fires, the point lists are bit-identical. Checked
    // on the paper's 81-point space for every built-in algorithm.
    let paper_space = DseSpace::default();
    let degen_engine = Engine::for_space(&paper_space);
    let degen_policy = SearchPolicy::SuccessiveHalving {
        seed: 7,
        eta: 2,
        budget: paper_space.len(),
    };
    let sh_degenerate_identical = models.iter().all(|m| {
        let sh = search_with_engine(m, &paper_space, &cons, degen_policy, &degen_engine);
        let ex = search_with_engine(
            m,
            &paper_space,
            &cons,
            SearchPolicy::Exhaustive,
            &degen_engine,
        );
        !sh.sampled && format!("{:?}", sh.points) == format!("{:?}", ex.points)
    });
    assert!(
        sh_degenerate_identical,
        "full-budget successive halving diverged from the exhaustive oracle"
    );

    // A genuinely sampled run on the comparison space: seeded, so two
    // runs walk identical trajectories.
    let sh_policy = SearchPolicy::SuccessiveHalving {
        seed: 42,
        eta: 2,
        budget: 16,
    };
    let t_sh = Instant::now();
    let sh_first = search_with_engine(&models[0], &dse_space, &cons, sh_policy, &staged_engine);
    let sh_time = t_sh.elapsed();
    let sh_second = search_with_engine(&models[0], &dse_space, &cons, sh_policy, &staged_engine);
    let sh_reproducible = format!("{:?}", sh_first.points) == format!("{:?}", sh_second.points);
    assert!(
        sh_reproducible,
        "seeded successive halving is not reproducible"
    );
    let search_stats = staged_engine.stats();
    println!();
    println!("== Search at scale ==");
    println!(
        "latency lower-bound screen: {} points pruned ({:.1} % of {})",
        dse_stats.dse_lb_pruned,
        100.0 * lb_pruned_fraction,
        lb_screen_total
    );
    println!(
        "lower-bound memo tier: {} hits / {} misses ({} entries)",
        search_stats.lb_hits, search_stats.lb_misses, search_stats.lb_entries
    );
    println!("successive halving, budget >= |space|: exhaustive-identical on all 19 models");
    println!(
        "successive halving, budget 16 over {} points: {:>9.3} ms, {} survivors, \
         {} Pareto entries, {} rungs, reproducible {}",
        dse_space.len(),
        sh_time.as_secs_f64() * 1e3,
        sh_first.points.len(),
        sh_first.front.len(),
        search_stats.search_rungs,
        sh_reproducible
    );

    // --huge: the generative stress mode. 2^20 grid points streamed —
    // never collected into a Vec — through the direct (memo-free)
    // area screen and the thread-local lower-bound kernel; exact
    // pricing only at the surviving rung.
    let huge = std::env::args().skip(1).any(|a| a == "--huge");
    let huge_report = if huge {
        let grid = GridSpace::huge();
        let huge_engine = Engine::for_space(&paper_options().space);
        let huge_policy = SearchPolicy::SuccessiveHalving {
            seed: 42,
            eta: 4,
            budget: 64,
        };
        let t_huge = Instant::now();
        let out = search_with_engine(&models[0], &grid, &cons, huge_policy, &huge_engine);
        let huge_time = t_huge.elapsed();
        let huge_stats = huge_engine.stats();
        assert!(out.sampled, "2^20-point grid search did not sample");
        assert!(
            !out.front.is_empty(),
            "2^20-point grid search found no feasible configuration"
        );
        println!(
            "huge mode: {} grid points -> {} survivors in {:>9.3} ms \
             ({} rungs, {} lb-pruned, best {})",
            grid.size(),
            out.points.len(),
            huge_time.as_secs_f64() * 1e3,
            huge_stats.search_rungs,
            huge_stats.dse_lb_pruned,
            out.points
                .first()
                .map(|p| p.hw.to_string())
                .unwrap_or_default()
        );
        if dense_axis.is_some() {
            assert!(
                huge_time <= exhaustive_time,
                "2^20-point sampled search ({:.3} ms) exceeded the dense \
                 exhaustive sweep's wall time ({:.3} ms)",
                huge_time.as_secs_f64() * 1e3,
                exhaustive_time.as_secs_f64() * 1e3
            );
        }
        obj(vec![
            ("points", Value::Number(Number::PosInt(grid.size() as u64))),
            ("budget", Value::Number(Number::PosInt(64))),
            ("eta", Value::Number(Number::PosInt(4))),
            ("seed", Value::Number(Number::PosInt(42))),
            ("wall_ms", ms(huge_time)),
            (
                "survivors",
                Value::Number(Number::PosInt(out.points.len() as u64)),
            ),
            (
                "front",
                Value::Number(Number::PosInt(out.front.len() as u64)),
            ),
            (
                "rungs",
                Value::Number(Number::PosInt(huge_stats.search_rungs)),
            ),
            (
                "lb_pruned",
                Value::Number(Number::PosInt(huge_stats.dse_lb_pruned)),
            ),
        ])
    } else {
        Value::Null
    };

    // The per-layer memo tier serves the paths that price layers one
    // at a time — here, a weight-streaming sweep, where each layer's
    // compute/stream overlap is resolved individually (the
    // compute-only flow above memoizes whole-model sums and route
    // tables instead).
    let streaming = Engine::for_space(&paper_options().space);
    let space = paper_options().space;
    let t2 = Instant::now();
    for m in &models {
        let classes: BTreeSet<_> = m.op_class_counts().into_keys().collect();
        for hw in space.iter() {
            let cfg = DesignConfig::monolithic(format!("prof:{}", m.name()), hw, classes.clone());
            let _ = streaming.evaluate_with(
                m,
                &cfg,
                EvalOptions {
                    memory: Some(MemoryModel::ddr4_3200()),
                    ..EvalOptions::default()
                },
            );
        }
    }
    let streaming_time = t2.elapsed();
    println!();
    println!(
        "== Layer-cost memo tier ({} models x {} points, DDR4 weight streaming) ==",
        models.len(),
        space.len()
    );
    println!("swept in {:>9.3} ms", streaming_time.as_secs_f64() * 1e3);
    print!("{}", streaming.stats());

    // Clustering + partitioning stage: the baseline replays the stage
    // as the pre-CSR flow ran it — every universal graph the 19-model
    // flow clusters (each algorithm's custom graph, the generic graph,
    // each library subset's graph) rebuilt with raw per-layer costing,
    // clustered by `louvain_reference` over sorted-map adjacency, plus
    // pairwise-closure Jaccard agglomeration with per-subset raw
    // re-summation. The optimized path is the shipping one: universal
    // graphs built once and memoized with their CSR interning in the
    // engine's graph tier, the similarity matrix computed once with
    // merged vectors maintained incrementally, and Louvain partitions
    // served from the canonical-key memo tier. REPS models the flow
    // re-clustering the same graphs (train + test custom
    // configurations, escalation attempts, repeated table runs).
    const REPS: usize = 10;
    let hw = HwParams::new(32, 32, 16, 16);
    let training = zoo::training_set();
    let subsets = Claire::new(paper_options()).form_subsets(&training);
    // One model set per graph the flow clusters: every algorithm's
    // custom graph, the generic graph, each library subset's graph.
    let mut targets: Vec<Vec<claire_model::Model>> =
        models.iter().map(|m| vec![m.clone()]).collect();
    targets.push(training.clone());
    for s in &subsets {
        targets.push(s.iter().map(|&i| training[i].clone()).collect());
    }

    let t3 = Instant::now();
    for _ in 0..REPS {
        let vectors: Vec<_> = training
            .iter()
            .map(|m| scaled_vector(m, WeightScale::Log))
            .collect();
        let clusters = agglomerate_by(training.len(), 0.6, |i, j| {
            weighted_jaccard(&vectors[i], &vectors[j])
        });
        for c in &clusters {
            let mut raw = BTreeMap::new();
            for &i in c {
                for (k, w) in training[i].op_class_weights() {
                    *raw.entry(k).or_insert(0.0) += w;
                }
            }
            black_box(raw);
        }
        for t in &targets {
            let ug = universal_graph(t, &hw);
            black_box(louvain_reference(&ug, 1.0));
        }
    }
    let baseline = t3.elapsed();

    let cluster_engine = Engine::for_space(&paper_options().space);
    let t4 = Instant::now();
    for _ in 0..REPS {
        black_box(partition_training_merged(&training, 0.6, WeightScale::Log));
        for t in &targets {
            let ug = cluster_engine.universal_csr(t, &hw);
            black_box(cluster_engine.louvain_partition(&ug.csr, 1.0));
        }
    }
    let optimized = t4.elapsed();
    let cluster_speedup = baseline.as_secs_f64() / optimized.as_secs_f64();
    let cluster_stats = cluster_engine.stats();
    println!();
    println!(
        "== Clustering + partitioning stage ({REPS} reps, {} graphs) ==",
        targets.len()
    );
    println!(
        "map-based baseline (louvain_reference + closure Jaccard): {:>9.3} ms",
        baseline.as_secs_f64() * 1e3
    );
    println!(
        "CSR kernels + memoized Louvain tier:                      {:>9.3} ms  ({cluster_speedup:.2}x speedup)",
        optimized.as_secs_f64() * 1e3
    );
    print!("{cluster_stats}");

    // Telemetry overhead model: with tracing disabled every hook on
    // the hot path is one relaxed atomic op (a counter bump or the
    // tracing-flag check). Price one hook by spamming a scratch
    // telemetry, count the hooks the cold flow actually executed
    // (counter increments + stage spans, snapshotted before the warm
    // reflow), and bound the modeled disabled-path cost against the
    // same flow's wall time. The 2 % budget is the CI perf-smoke
    // gate.
    let scratch = Telemetry::new();
    const HOOK_REPS: u64 = 1_000_000;
    // Best of several batches: scheduler noise only ever inflates the
    // measurement, so the minimum is the honest per-hook price.
    let per_hook_ns = (0..5)
        .map(|_| {
            let t5 = Instant::now();
            for _ in 0..HOOK_REPS {
                black_box(&scratch).count(Metric::ParItems);
                black_box(black_box(&scratch).tracing_enabled());
            }
            t5.elapsed().as_secs_f64() * 1e9 / HOOK_REPS as f64
        })
        .fold(f64::INFINITY, f64::min);
    let tel = parallel.telemetry();
    let hook_executions = cold_counter_hooks + cold_span_hooks;
    let modeled_overhead_fraction =
        per_hook_ns * hook_executions as f64 / (parallel_time.as_secs_f64() * 1e9);
    assert!(
        modeled_overhead_fraction <= 0.02,
        "modeled telemetry-disabled overhead {:.4} exceeds the 2 % budget \
         ({per_hook_ns:.1} ns/hook x {hook_executions} hooks over {:.3} ms)",
        modeled_overhead_fraction,
        parallel_time.as_secs_f64() * 1e3,
    );
    // Informational reference: the same flow with tracing enabled
    // (span buffers + Chrome-trace events armed).
    let traced = Engine::for_space(&paper_options().space).with_tracing(true);
    let t6 = Instant::now();
    run_flow_with_engine(paper_options(), &traced);
    let traced_time = t6.elapsed();
    println!();
    println!("== Telemetry ==");
    println!(
        "disabled-path hook: {per_hook_ns:.1} ns; flow executed {hook_executions} hooks \
         -> modeled overhead {:.3} % (budget 2 %)",
        100.0 * modeled_overhead_fraction
    );
    println!(
        "tracing-enabled flow: {:>9.3} ms (informational; disabled flow {:.3} ms)",
        traced_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3
    );

    // Serve-observability overhead model: price the lifecycle hooks
    // the serve layer wraps around every request — one observer record
    // per stage transition (flight-ring push + sliding-window rate
    // fold), two exact-digest inserts (queue wait, end-to-end
    // latency), and the disabled event-log check each emit performs —
    // then bound the modeled per-request cost against the warm
    // per-request evaluation price the flow just measured. The 2 %
    // budget is the CI perf-smoke gate; the disabled event-log path
    // must price at essentially zero (one mutex lock + `is_some`).
    let observer = ServeObserver::new();
    const OBS_REPS: u64 = 200_000;
    let per_event_record_ns = (0..5)
        .map(|_| {
            let t = Instant::now();
            for i in 0..OBS_REPS {
                let trace = observer.next_trace();
                black_box(&observer).observe(LifecycleEvent {
                    t_us: i,
                    stage: LifecycleStage::ALL[(i % 7) as usize],
                    trace,
                    id: Value::Number(Number::PosInt(i)),
                    op: "custom",
                    batch: Some(i / 8),
                    queue_wait_us: Some(i % 512),
                    outcome: None,
                });
            }
            t.elapsed().as_secs_f64() * 1e9 / OBS_REPS as f64
        })
        .fold(f64::INFINITY, f64::min);
    // Digest inserts over a realistic µs-granularity latency spread
    // (bounded distinct values keep the RLE runs — and the binary
    // search — at serve-like sizes).
    let mut scratch_digest = QuantileDigest::new();
    const DIGEST_REPS: u64 = 200_000;
    let digest_insert_ns = (0..5)
        .map(|_| {
            let t = Instant::now();
            for i in 0..DIGEST_REPS {
                black_box(&mut scratch_digest).record(i.wrapping_mul(2_654_435_761) % 4096);
            }
            t.elapsed().as_secs_f64() * 1e9 / DIGEST_REPS as f64
        })
        .fold(f64::INFINITY, f64::min);
    // The disabled event-log path: exactly what `serve` does per event
    // when `--event-log` is absent — lock the option, see `None`.
    let disarmed_log: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    const LOG_REPS: u64 = 1_000_000;
    let event_log_disabled_ns = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..LOG_REPS {
                let armed = black_box(&disarmed_log)
                    .lock()
                    .map(|g| g.is_some())
                    .unwrap_or(false);
                black_box(armed);
            }
            t.elapsed().as_secs_f64() * 1e9 / LOG_REPS as f64
        })
        .fold(f64::INFINITY, f64::min);
    // An answered request transitions through 5 stages (received,
    // admitted, dispatched, evaluating, answered), adds 2 digest
    // inserts, and checks the event log once per emitted event.
    const EVENTS_PER_REQUEST: f64 = 5.0;
    const DIGEST_INSERTS_PER_REQUEST: f64 = 2.0;
    let modeled_request_ns = EVENTS_PER_REQUEST * (per_event_record_ns + event_log_disabled_ns)
        + DIGEST_INSERTS_PER_REQUEST * digest_insert_ns;
    let warm_request_ns = reflow_time.as_secs_f64() * 1e9 / models.len() as f64;
    let serve_obs_overhead_fraction = modeled_request_ns / warm_request_ns;
    assert!(
        serve_obs_overhead_fraction <= 0.02,
        "modeled serve-observability overhead {serve_obs_overhead_fraction:.5} exceeds the \
         2 % budget ({modeled_request_ns:.0} ns/request against a {warm_request_ns:.0} ns \
         warm evaluation)"
    );
    println!();
    println!("== Serve observability ==");
    println!(
        "lifecycle record: {per_event_record_ns:.1} ns/event; exact-digest insert: \
         {digest_insert_ns:.1} ns; disabled event-log check: {event_log_disabled_ns:.1} ns"
    );
    println!(
        "modeled per-request hook cost {modeled_request_ns:.0} ns vs {warm_request_ns:.0} ns \
         warm evaluation -> {:.4} % overhead (budget 2 %)",
        100.0 * serve_obs_overhead_fraction
    );

    // ROADMAP test-stage load balance, now with real numbers: per-
    // worker busy time for the `test` stage's parallel maps. The flat
    // plan made the cached flow's test stage short enough to finish
    // inside one scheduler timeslice, where busy ratios measure which
    // thread the OS ran first instead of work claiming — so the
    // measurement runs its own flows over a dense DSE space with the
    // cache disabled, keeping every flat-plan item at full evaluation
    // price and the stage long enough for every worker to be
    // scheduled. The recursive flow's per-model claiming measured 3.2x
    // on the cached paper-space flow (PR 5's committed profile); the
    // flat plan's per-point claiming must stay within 2.0x here (the
    // CI perf-smoke gate).
    // The engine pins an explicit 4 workers (rather than resolving
    // CLAIRE_THREADS / the machine width) so the measurement — and the
    // JSON ratio the CI gate reads — is defined on any runner.
    const IMB_FLOWS: usize = 2;
    let mut imb_opts = paper_options();
    imb_opts.space = DseSpace::dense(6);
    let imb_engine = Engine::new(4).with_cache(false);
    for _ in 0..IMB_FLOWS {
        run_flow_with_engine(imb_opts.clone(), &imb_engine);
    }
    let test_busy: Vec<f64> = imb_engine
        .telemetry()
        .stage_worker_busy("test")
        .iter()
        .map(|(_, d)| d.as_secs_f64() * 1e3)
        .filter(|b| *b > 0.0)
        .collect();
    let max_busy = test_busy.iter().copied().fold(0.0_f64, f64::max);
    let min_busy = test_busy.iter().copied().fold(f64::INFINITY, f64::min);
    // One active worker balances trivially (ratio 1.0); a ratio is
    // only undefined when *no* worker published a test-stage sample —
    // a worker-accounting regression the CI gate fails on.
    let imbalance = match test_busy.len() {
        0 => None,
        1 => Some(1.0),
        _ => Some(max_busy / min_busy),
    };
    match imbalance {
        Some(ratio) => println!(
            "test stage worker busy max/min: {max_busy:.3} ms / {min_busy:.3} ms \
             (imbalance {ratio:.2}x over {} active workers)",
            test_busy.len()
        ),
        None => println!("test stage worker busy: no samples (worker accounting regressed)"),
    }

    // Flat-execution-plan profile (cold flow): the up-front item set,
    // the three plan-level coarse memo tiers, and the load balance the
    // single flat par_map buys. The graph tier's cold hit rate is the
    // merged-member-build payoff — before the plan it was 0 % (every
    // multi-member graph rebuilt its members from scratch).
    let graph_cold_hit_rate = {
        let total = flow_stats.graph_hits + flow_stats.graph_misses;
        if total == 0 {
            0.0
        } else {
            flow_stats.graph_hits as f64 / total as f64
        }
    };
    println!();
    println!("== Flat execution plan (cold flow) ==");
    println!("plan items: {}", flow_stats.plan_items);
    println!(
        "comm tier: {} hits / {} misses ({:.1} % hit rate, {} entries)",
        flow_stats.comm_hits,
        flow_stats.comm_misses,
        100.0 * flow_stats.comm_hit_rate(),
        flow_stats.comm_entries
    );
    println!(
        "louvain warm tier: {} hits / {} misses ({:.1} % hit rate, {} entries)",
        flow_stats.louvain_warm_hits,
        flow_stats.louvain_warm_misses,
        100.0 * flow_stats.louvain_warm_hit_rate(),
        flow_stats.louvain_warm_entries
    );
    println!(
        "merged graph builds: {}; graph tier cold hit rate {:.1} %",
        flow_stats.merged_graph_builds,
        100.0 * graph_cold_hit_rate
    );
    assert!(
        flow_stats.plan_items > 0,
        "planned flow enumerated no evaluation items"
    );
    assert!(
        graph_cold_hit_rate > 0.0,
        "graph tier's cold hit rate is still 0 % — merged member-graph \
         builds are not sharing member graphs"
    );

    let worker_utilization = Value::Array(
        tel.worker_utilization()
            .iter()
            .map(|u| {
                obj(vec![
                    ("worker", Value::Number(Number::PosInt(u.worker as u64))),
                    ("busy_ms", ms(u.busy)),
                    ("wall_ms", ms(u.wall)),
                    ("items", Value::Number(Number::PosInt(u.items))),
                    ("utilization", num(u.utilization())),
                ])
            })
            .collect(),
    );
    let span_aggregates = Value::Array(
        tel.stage_aggregates_detailed()
            .iter()
            .map(|a| {
                obj(vec![
                    ("name", Value::String(a.name.clone())),
                    ("total_ms", ms(a.total)),
                    ("count", Value::Number(Number::PosInt(a.count))),
                    (
                        "mean_ms",
                        num(if a.count == 0 {
                            0.0
                        } else {
                            a.total.as_secs_f64() * 1e3 / a.count as f64
                        }),
                    ),
                ])
            })
            .collect(),
    );

    let report = obj(vec![
        (
            "threads",
            Value::Number(Number::PosInt(flow_stats.threads as u64)),
        ),
        (
            "flow",
            obj(vec![
                ("serial_ms", ms(serial_time)),
                ("parallel_ms", ms(parallel_time)),
                (
                    "speedup",
                    num(serial_time.as_secs_f64() / parallel_time.as_secs_f64()),
                ),
            ]),
        ),
        (
            "stages",
            Value::Array(
                flow_stats
                    .stages
                    .iter()
                    .map(|(name, took)| {
                        obj(vec![
                            ("name", Value::String(name.clone())),
                            ("ms", ms(*took)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("memo_tiers", tiers(&flow_stats)),
        ("overall_hit_rate", num(flow_stats.overall_hit_rate())),
        (
            "plan",
            obj(vec![
                (
                    "items",
                    Value::Number(Number::PosInt(flow_stats.plan_items)),
                ),
                (
                    "comm_tier",
                    tier(
                        flow_stats.comm_hits,
                        flow_stats.comm_misses,
                        flow_stats.comm_entries,
                    ),
                ),
                (
                    "louvain_warm_tier",
                    tier(
                        flow_stats.louvain_warm_hits,
                        flow_stats.louvain_warm_misses,
                        flow_stats.louvain_warm_entries,
                    ),
                ),
                (
                    "merged_graph_builds",
                    Value::Number(Number::PosInt(flow_stats.merged_graph_builds)),
                ),
                ("graph_cold_hit_rate", num(graph_cold_hit_rate)),
                (
                    "test_stage_imbalance_ratio",
                    imbalance.map_or(Value::Null, num),
                ),
            ]),
        ),
        (
            "reflow",
            obj(vec![
                ("cold_ms", ms(parallel_time)),
                ("warm_ms", ms(reflow_time)),
                ("cold_sum_hit_rate", num(flow_stats.sum_hit_rate())),
                ("cumulative_sum_hit_rate", num(reflow_stats.sum_hit_rate())),
                (
                    "struct_entries",
                    Value::Number(Number::PosInt(reflow_stats.struct_entries as u64)),
                ),
                (
                    "struct_instances",
                    Value::Number(Number::PosInt(reflow_stats.struct_instances as u64)),
                ),
            ]),
        ),
        (
            "persist",
            obj(vec![
                (
                    "snapshot_bytes",
                    Value::Number(Number::PosInt(snapshot_len)),
                ),
                ("save_ms", ms(save_time)),
                ("load_ms", ms(load_time)),
                ("cold_ms", ms(persist_cold_time)),
                ("warm_ms", ms(persist_warm_time)),
                ("warm_restart_speedup", num(warm_restart_speedup)),
                ("identical", Value::Bool(persist_identical)),
                (
                    "byte_identical_across_threads",
                    Value::Bool(byte_identical_across_threads),
                ),
            ]),
        ),
        (
            "dse",
            obj(vec![
                ("dense", Value::Bool(dense_axis.is_some())),
                (
                    "points",
                    Value::Number(Number::PosInt(dse_space.len() as u64)),
                ),
                ("exhaustive_ms", ms(exhaustive_time)),
                ("pruned_ms", ms(staged_time)),
                ("speedup", num(dse_speedup)),
                ("pruned_fraction", num(dse_stats.pruned_fraction())),
                (
                    "pruned",
                    Value::Number(Number::PosInt(dse_stats.dse_pruned)),
                ),
                (
                    "evaluated",
                    Value::Number(Number::PosInt(dse_stats.dse_evaluated)),
                ),
                (
                    "area_tier",
                    tier(
                        dse_stats.area_hits,
                        dse_stats.area_misses,
                        dse_stats.area_entries,
                    ),
                ),
                ("selections_identical", Value::Bool(selections_identical)),
            ]),
        ),
        (
            "search",
            obj(vec![
                (
                    "lb_screen",
                    obj(vec![
                        (
                            "pruned",
                            Value::Number(Number::PosInt(dse_stats.dse_lb_pruned)),
                        ),
                        ("fraction", num(lb_pruned_fraction)),
                        ("screened", Value::Number(Number::PosInt(lb_screen_total))),
                    ]),
                ),
                (
                    "lb_tier",
                    tier(
                        search_stats.lb_hits,
                        search_stats.lb_misses,
                        search_stats.lb_entries,
                    ),
                ),
                ("selections_identical", Value::Bool(selections_identical)),
                (
                    "sh_degenerate_identical",
                    Value::Bool(sh_degenerate_identical),
                ),
                (
                    "successive_halving",
                    obj(vec![
                        ("budget", Value::Number(Number::PosInt(16))),
                        ("eta", Value::Number(Number::PosInt(2))),
                        ("seed", Value::Number(Number::PosInt(42))),
                        ("wall_ms", ms(sh_time)),
                        (
                            "survivors",
                            Value::Number(Number::PosInt(sh_first.points.len() as u64)),
                        ),
                        (
                            "front",
                            Value::Number(Number::PosInt(sh_first.front.len() as u64)),
                        ),
                        (
                            "rungs",
                            Value::Number(Number::PosInt(search_stats.search_rungs)),
                        ),
                        ("reproducible", Value::Bool(sh_reproducible)),
                    ]),
                ),
                ("huge", huge_report),
            ]),
        ),
        ("span_aggregates", span_aggregates),
        ("worker_utilization", worker_utilization),
        (
            "test_stage_imbalance",
            obj(vec![
                (
                    "active_workers",
                    Value::Number(Number::PosInt(test_busy.len() as u64)),
                ),
                (
                    "max_busy_ms",
                    if test_busy.is_empty() {
                        Value::Null
                    } else {
                        num(max_busy)
                    },
                ),
                (
                    "min_busy_ms",
                    if test_busy.is_empty() {
                        Value::Null
                    } else {
                        num(min_busy)
                    },
                ),
                ("ratio", imbalance.map_or(Value::Null, num)),
            ]),
        ),
        (
            "telemetry",
            obj(vec![
                ("per_hook_ns", num(per_hook_ns)),
                (
                    "hook_executions",
                    Value::Number(Number::PosInt(hook_executions)),
                ),
                (
                    "modeled_disabled_overhead_fraction",
                    num(modeled_overhead_fraction),
                ),
                ("enabled_ms", ms(traced_time)),
                ("disabled_ms", ms(parallel_time)),
            ]),
        ),
        (
            "serve_obs",
            obj(vec![
                ("per_event_record_ns", num(per_event_record_ns)),
                ("digest_insert_ns", num(digest_insert_ns)),
                ("event_log_disabled_ns", num(event_log_disabled_ns)),
                ("events_per_request", num(EVENTS_PER_REQUEST)),
                (
                    "digest_inserts_per_request",
                    num(DIGEST_INSERTS_PER_REQUEST),
                ),
                ("modeled_request_ns", num(modeled_request_ns)),
                ("warm_request_ns", num(warm_request_ns)),
                (
                    "modeled_overhead_fraction",
                    num(serve_obs_overhead_fraction),
                ),
            ]),
        ),
        (
            "clustering_partitioning",
            obj(vec![
                ("reps", Value::Number(Number::PosInt(REPS as u64))),
                (
                    "graphs",
                    Value::Number(Number::PosInt(targets.len() as u64)),
                ),
                ("baseline_ms", ms(baseline)),
                ("optimized_ms", ms(optimized)),
                ("speedup", num(cluster_speedup)),
                (
                    "louvain_tier",
                    tier(
                        cluster_stats.louvain_hits,
                        cluster_stats.louvain_misses,
                        cluster_stats.louvain_entries,
                    ),
                ),
                (
                    "graph_tier",
                    tier(
                        cluster_stats.graph_hits,
                        cluster_stats.graph_misses,
                        cluster_stats.graph_entries,
                    ),
                ),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("profile json renders");
    std::fs::write("BENCH_profile.json", format!("{json}\n")).expect("write BENCH_profile.json");
    println!();
    println!("wrote BENCH_profile.json");
}

/// The DSE selection pass the staged-vs-exhaustive comparison times:
/// a custom configuration for each of the 19 algorithms plus the
/// generic configuration over the training set — the work behind the
/// flow's `customs` and `generic` stages. Returns every selection's
/// Debug rendering (so callers compare bit-exact `f64`s) and the wall
/// time.
fn dse_selection_pass(space: &DseSpace, cons: &Constraints, engine: &Engine) -> (String, Duration) {
    let start = Instant::now();
    let training = zoo::training_set();
    let tests = zoo::test_set();
    let mut rendered = String::new();
    let mut latencies: BTreeMap<String, f64> = BTreeMap::new();
    for m in &training {
        let (cfg, report) =
            custom_config_with_engine(m, space, cons, DseObjective::MinArea, engine)
                .expect("feasible custom configuration");
        latencies.insert(m.name().to_owned(), report.latency_s);
        rendered.push_str(&format!("{cfg:?} {report:?}\n"));
    }
    for m in &tests {
        let (cfg, report) =
            custom_config_with_engine(m, space, cons, DseObjective::MinArea, engine)
                .expect("feasible custom configuration");
        rendered.push_str(&format!("{cfg:?} {report:?}\n"));
    }
    let members: Vec<&Model> = training.iter().collect();
    let generic = set_config_with_engine("C_g", &members, space, cons, &latencies, engine)
        .expect("feasible generic configuration");
    rendered.push_str(&format!("{generic:?}\n"));
    (rendered, start.elapsed())
}

/// A JSON object in field order.
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A float JSON number.
fn num(x: f64) -> Value {
    Value::Number(Number::Float(x))
}

/// A duration in milliseconds.
fn ms(d: Duration) -> Value {
    num(d.as_secs_f64() * 1e3)
}

/// One memo tier's counters.
fn tier(hits: u64, misses: u64, entries: usize) -> Value {
    let total = hits + misses;
    obj(vec![
        ("hits", Value::Number(Number::PosInt(hits))),
        ("misses", Value::Number(Number::PosInt(misses))),
        ("entries", Value::Number(Number::PosInt(entries as u64))),
        (
            "hit_rate",
            num(if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }),
        ),
    ])
}

/// All memo tiers of an engine snapshot.
fn tiers(s: &EngineStats) -> Value {
    obj(vec![
        (
            "layer_cost",
            tier(s.cache_hits, s.cache_misses, s.cache_entries),
        ),
        (
            "route",
            tier(s.route_hits, s.route_misses, s.route_topologies),
        ),
        ("compute_sum", tier(s.sum_hits, s.sum_misses, s.sum_entries)),
        (
            "louvain",
            tier(s.louvain_hits, s.louvain_misses, s.louvain_entries),
        ),
        ("graph", tier(s.graph_hits, s.graph_misses, s.graph_entries)),
        ("area", tier(s.area_hits, s.area_misses, s.area_entries)),
        ("comm", tier(s.comm_hits, s.comm_misses, s.comm_entries)),
        (
            "louvain_warm",
            tier(
                s.louvain_warm_hits,
                s.louvain_warm_misses,
                s.louvain_warm_entries,
            ),
        ),
        ("lb", tier(s.lb_hits, s.lb_misses, s.lb_entries)),
    ])
}
