//! Workload profiler: the computing-profile analysis of Sec. IV
//! generalised to every built-in algorithm — MACs, parameters,
//! activation traffic, arithmetic intensity, layer inventory and the
//! dominant layer connection — plus an evaluation-engine profile
//! comparing the serial, uncached reference against the parallel,
//! memoized engine on the full 19-model train + test flow.

use claire_bench::{paper_options, render_table, run_flow_with_engine};
use claire_core::evaluate::EvalOptions;
use claire_core::{DesignConfig, Engine};
use claire_model::zoo;
use claire_ppa::MemoryModel;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let mut models = zoo::training_set();
    models.extend(zoo::test_set());
    let mut rows = Vec::new();
    for m in &models {
        let combos = m.edge_combination_counts();
        let dominant = combos
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|((a, b), _)| format!("{a}-{b}"))
            .unwrap_or_default();
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.2}", m.macs() as f64 / 1e9),
            format!("{:.1}", m.param_count() as f64 / 1e6),
            format!("{:.1}", m.activation_bytes() as f64 / 1e6),
            format!("{:.1}", m.arithmetic_intensity()),
            m.op_class_counts().len().to_string(),
            dominant,
        ]);
    }
    print!(
        "{}",
        render_table(
            "Workload profiles (Sec. IV computing-profile analysis, all models)",
            &[
                "Algorithm",
                "GMACs",
                "MParams",
                "Act MB",
                "MACs/B",
                "#Classes",
                "Dominant edge",
            ],
            &rows,
        )
    );
    println!();
    println!("PEANUT-RCNN tops the class-diversity column (the paper's");
    println!("observation about the generic configuration's area); the LLMs'");
    println!("arithmetic intensity collapses toward their token count.");

    // Evaluation-engine profile: the full 19-model paper flow (13
    // training + 6 test algorithms), serial/uncached vs the default
    // parallel, memoized engine. Results are bit-identical; only the
    // wall time and the cache counters differ.
    println!();
    let serial = Engine::serial().with_cache(false);
    let t0 = Instant::now();
    run_flow_with_engine(paper_options(), &serial);
    let serial_time = t0.elapsed();

    let parallel = Engine::for_space(&paper_options().space);
    let t1 = Instant::now();
    run_flow_with_engine(paper_options(), &parallel);
    let parallel_time = t1.elapsed();

    println!("== Evaluation-engine profile (19-model train + test flow) ==");
    println!(
        "serial reference (1 thread, cache off): {:>9.3} ms",
        serial_time.as_secs_f64() * 1e3
    );
    println!(
        "parallel engine:                        {:>9.3} ms  ({:.2}x speedup)",
        parallel_time.as_secs_f64() * 1e3,
        serial_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
    print!("{}", parallel.stats());

    // The per-layer memo tier serves the paths that price layers one
    // at a time — here, a weight-streaming sweep, where each layer's
    // compute/stream overlap is resolved individually (the
    // compute-only flow above memoizes whole-model sums and route
    // tables instead).
    let streaming = Engine::for_space(&paper_options().space);
    let space = paper_options().space;
    let t2 = Instant::now();
    for m in &models {
        let classes: BTreeSet<_> = m.op_class_counts().into_keys().collect();
        for hw in space.iter() {
            let cfg = DesignConfig::monolithic(format!("prof:{}", m.name()), hw, classes.clone());
            let _ = streaming.evaluate_with(
                m,
                &cfg,
                EvalOptions {
                    memory: Some(MemoryModel::ddr4_3200()),
                    ..EvalOptions::default()
                },
            );
        }
    }
    let streaming_time = t2.elapsed();
    println!();
    println!(
        "== Layer-cost memo tier ({} models x {} points, DDR4 weight streaming) ==",
        models.len(),
        space.len()
    );
    println!("swept in {:>9.3} ms", streaming_time.as_secs_f64() * 1e3);
    print!("{}", streaming.stats());
}
