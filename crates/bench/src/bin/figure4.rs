//! Regenerates Fig. 4: area, latency and energy of every algorithm on
//! the generic (C_g), custom (C_i) and library-synthesized (C_k)
//! configurations.

use claire_bench::{render_table, run_paper_flow, tables};

fn main() {
    let run = run_paper_flow();
    let rows = tables::figure4_rows(&run);
    print!(
        "{}",
        render_table(
            "Fig. 4: area (mm^2), latency (ms), energy (mJ) on C_g / C_i / C_k",
            &[
                "Algorithm",
                "A(C_g)",
                "A(C_i)",
                "A(C_k)",
                "L(C_g)",
                "L(C_i)",
                "L(C_k)",
                "E(C_g)",
                "E(C_i)",
                "E(C_k)",
            ],
            &rows,
        )
    );
    println!();
    println!("Paper reference: generic area largest (driven by PEANUT-RCNN's");
    println!("layer diversity); C_k within a fraction of a percent of C_i on");
    println!("area; latency comparable everywhere (equal NoC/NoP bandwidth);");
    println!("energy varies by well under 1% (no power gating).");
}
