//! Node-migration sensitivity: project the 28-nm results to 16-nm and
//! 7-nm-class processes (first-order scaling) and recompute the
//! library-vs-custom NRE economics with node-appropriate mask and
//! design costs. The benefit *ratios* barely move; the absolute
//! dollars saved explode — the library argument strengthens with
//! every node.

use claire_bench::{paper_options, render_table};
use claire_core::Claire;
use claire_cost::NreModel;
use claire_model::zoo;
use claire_ppa::NodeScaling;

fn main() {
    let claire = Claire::new(paper_options());
    let out = claire.train(&zoo::training_set()).expect("training");
    let c1 = &out.libraries[0];
    let resnet_ppa = &out.algo_ppa[0]; // ResNet-18 rows of Fig. 4

    let mut rows = Vec::new();
    for (scaling, nre) in [
        (NodeScaling::n28(), NreModel::tsmc28()),
        (NodeScaling::n16(), NreModel::tsmc16()),
        (NodeScaling::n7(), NreModel::tsmc7()),
    ] {
        // Scaled C_1 silicon + ResNet-18 PPA projection.
        let areas: Vec<f64> = c1
            .config
            .chiplet_areas()
            .iter()
            .map(|&a| scaling.scale_area_mm2(a))
            .collect();
        let lib_nre_musd = nre.system_nre(&areas);
        // Cumulative custom cost in the same node (6 CNN customs).
        let custom_nre_musd: f64 = c1
            .members
            .iter()
            .map(|&i| {
                let a: Vec<f64> = out.customs[i]
                    .config
                    .chiplet_areas()
                    .iter()
                    .map(|&x| scaling.scale_area_mm2(x))
                    .collect();
                nre.system_nre(&a)
            })
            .sum();
        let lat = scaling.scale_latency_s(resnet_ppa.custom.latency_s);
        let energy = scaling.scale_energy_j(resnet_ppa.custom.energy_j);
        let area = scaling.scale_area_mm2(resnet_ppa.custom.area_mm2);
        rows.push(vec![
            format!("{:?}", scaling.node),
            format!("{:.1}", areas.iter().sum::<f64>()),
            format!("{:.3}", lat * 1e3),
            format!("{:.3}", energy / lat / area),
            format!("{:.1}", custom_nre_musd),
            format!("{:.1}", lib_nre_musd),
            format!("{:.2}x", custom_nre_musd / lib_nre_musd),
            format!("${:.1}M", custom_nre_musd - lib_nre_musd),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Node migration: C_1 library economics and ResNet-18 PPA projection",
            &[
                "Node",
                "C_1 mm^2",
                "R18 lat (ms)",
                "R18 PD (W/mm^2)",
                "Custom NRE (M$)",
                "Library NRE (M$)",
                "Benefit",
                "Saved",
            ],
            &rows,
        )
    );
    println!();
    println!("The benefit ratio is set by chiplet-type counts and survives the");
    println!("node change; the absolute saving grows with mask-set cost (~10x");
    println!("from 28 nm to 7 nm). Power density climbs each node (energy");
    println!("scales slower than area) - the PD_limit constraint tightens, as");
    println!("the dark-silicon literature predicts.");
}
