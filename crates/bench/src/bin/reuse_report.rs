//! The library thesis, quantified: hardened chiplets reused across
//! configurations. "Similar to soft IPs for SoC development, the
//! library of chiplets improves flexibility, reusability, and
//! efficiency" — this harness reports which hardened dies serve more
//! than one configuration and what portfolio-level NRE that saves on
//! top of the per-configuration numbers of Tables IV/VI.

use claire_bench::{paper_options, render_table};
use claire_core::metrics::portfolio_nre;
use claire_core::Claire;
use claire_model::zoo;

fn main() {
    let claire = Claire::new(paper_options());
    let out = claire.train(&zoo::training_set()).expect("training");
    let nre = claire.options().nre;

    let configs: Vec<_> = out.libraries.iter().map(|l| &l.config).collect();
    let (naive, deduped, reuse) = portfolio_nre(&nre, &configs);

    let rows: Vec<Vec<String>> = reuse
        .iter()
        .map(|((hw, classes), users)| {
            vec![
                classes
                    .iter()
                    .map(|c| c.label())
                    .collect::<Vec<_>>()
                    .join(", "),
                hw.to_string(),
                users.len().to_string(),
                users.join(", "),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Hardened-chiplet reuse across the library portfolio (C_1..C_5)",
            &["Module groups", "Hardware", "#Uses", "Used by"],
            &rows,
        )
    );
    println!();
    println!("portfolio NRE: naive {naive:.2} M$, with hardened-IP reuse {deduped:.2} M$");
    println!(
        "({:.1}% saved on top of the per-configuration library benefit)",
        100.0 * (1.0 - deduped / naive)
    );

    // The same portfolio view over the custom designs shows why
    // "a library" and not "13 customs": customs barely share dies.
    let customs: Vec<_> = out.customs.iter().map(|c| &c.config).collect();
    let (cn, cd, creuse) = portfolio_nre(&nre, &customs);
    let shared = creuse.iter().filter(|(_, u)| u.len() > 1).count();
    println!();
    println!(
        "custom portfolio: naive {cn:.2} M$, deduped {cd:.2} M$ ({shared} of {} dies shared)",
        creuse.len()
    );
}
