//! Validation experiment: analytical model vs discrete-event
//! simulation — the soundness check the analytical-only paper lacks.
//!
//! Strict-mode simulation must agree with the closed-form latency for
//! every algorithm; overlapped-mode quantifies what tile-granular
//! double buffering would recover on top of the paper's semantics.

use claire_bench::{render_table, run_paper_flow};
use claire_sim::{simulate, Mode};

fn main() {
    let run = run_paper_flow();
    let mut rows = Vec::new();
    let mut worst_mismatch: f64 = 0.0;
    for (i, m) in run.training.iter().enumerate() {
        let cfg = &run.train.customs[i].config;
        let analytical = run.train.customs[i].report.latency_s;
        let strict = simulate(m, cfg, Mode::Strict).expect("covered");
        let overlapped = simulate(m, cfg, Mode::Overlapped).expect("covered");
        let mismatch = (strict.latency_s() - analytical).abs() / analytical;
        worst_mismatch = worst_mismatch.max(mismatch);
        rows.push(vec![
            m.name().to_owned(),
            format!("{:.4}", analytical * 1e3),
            format!("{:.4}", strict.latency_s() * 1e3),
            format!("{:.4}%", mismatch * 100.0),
            format!("{:.4}", overlapped.latency_s() * 1e3),
            format!(
                "{:.2}%",
                100.0 * (1.0 - overlapped.cycles as f64 / strict.cycles as f64)
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Validation: analytical vs discrete-event simulation (custom configs)",
            &[
                "Algorithm",
                "Analytical (ms)",
                "Sim strict (ms)",
                "Mismatch",
                "Sim overlapped (ms)",
                "Overlap saving",
            ],
            &rows,
        )
    );
    println!();
    println!("worst strict-mode mismatch: {:.6}%", worst_mismatch * 100.0);
    println!("Strict simulation reproduces the analytical latency exactly");
    println!("(same execution semantics, event-driven); the overlap column");
    println!("bounds what the paper's sequential-transfer assumption leaves");
    println!("on the table.");
}
