//! Portfolio planning demo: which library configurations to harden
//! for three product roadmaps of increasing breadth, vs building
//! every algorithm custom.

use claire_bench::{paper_options, render_table};
use claire_core::{plan_portfolio, Claire, Product};
use claire_model::zoo;

fn main() {
    let claire = Claire::new(paper_options());
    let train = claire.train(&zoo::training_set()).expect("training");
    let nre = claire.options().nre;

    let roadmaps: Vec<(&str, Vec<Product>)> = vec![
        (
            "NLP-only",
            vec![Product::new(
                "assistant",
                vec![zoo::bert_base(), zoo::graphormer()],
            )],
        ),
        (
            "vision+NLP",
            vec![
                Product::new(
                    "camera",
                    vec![zoo::alexnet(), zoo::detr(), zoo::convnext_tiny()],
                ),
                Product::new("assistant", vec![zoo::bert_base(), zoo::vit_base()]),
            ],
        ),
        (
            "full-stack",
            vec![
                Product::new(
                    "camera",
                    vec![zoo::alexnet(), zoo::detr(), zoo::mask_rcnn_r50()],
                ),
                Product::new("assistant", vec![zoo::bert_base(), zoo::wav2vec2_base()]),
                Product::new("codegen", vec![zoo::distilgpt2()]),
                Product::new("search", vec![zoo::t5_small(), zoo::clip_vit_b32()]),
            ],
        ),
    ];

    let mut rows = Vec::new();
    for (name, products) in &roadmaps {
        let plan = plan_portfolio(&train, &nre, products).expect("plannable");
        rows.push(vec![
            (*name).to_owned(),
            plan.selected_names.join(", "),
            if plan.fallbacks.is_empty() {
                "-".to_owned()
            } else {
                plan.fallbacks.join(", ")
            },
            format!("{:.3}", plan.total_nre()),
            format!("{:.3}", plan.all_custom_nre),
            format!("{:.2}x", plan.benefit()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Portfolio planning: hardened entries per roadmap (greedy set cover)",
            &[
                "Roadmap",
                "Harden",
                "Custom fallback",
                "Plan NRE",
                "All-custom",
                "Benefit"
            ],
            &rows,
        )
    );
    println!();
    println!("Broader roadmaps amortise each hardened configuration across more");
    println!("algorithms - the library's benefit grows with portfolio breadth,");
    println!("which is the business case of Sec. I.");
}
