//! Ablation: packaging technology vs production volume for the
//! library portfolio — the Chiplet-Actuary trade the paper's NRE
//! numbers sit on top of. Organic substrates win at AIB-class bump
//! pitches; the bench shows what a silicon interposer or fan-out
//! would cost instead across volumes.

use claire_bench::{paper_options, render_table};
use claire_core::Claire;
use claire_cost::{PackagingModel, RecurringModel};
use claire_model::zoo;

fn main() {
    let claire = Claire::new(paper_options());
    let out = claire.train(&zoo::training_set()).expect("training");
    let re = RecurringModel::tsmc28();

    let mut rows = Vec::new();
    for cfg in [&out.libraries[0].config, &out.generic] {
        let dies = cfg.chiplet_areas();
        for p in PackagingModel::all() {
            let mut cells = vec![
                cfg.name.clone(),
                format!("{:?}", p.tech),
                format!("${:.2}", p.unit_cost(&re, &dies)),
            ];
            for volume in [1_000_u64, 10_000, 100_000, 1_000_000] {
                cells.push(format!("${:.2}", p.amortised_unit_cost(&re, &dies, volume)));
            }
            rows.push(cells);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: packaging technology x volume (per-unit cost)",
            &["Config", "Packaging", "Unit", "@1k", "@10k", "@100k", "@1M"],
            &rows,
        )
    );
    println!();
    println!("With AIB-class parallel interfaces the organic substrate is both");
    println!("the low-NRE and the low-unit-cost choice - consistent with the");
    println!("paper pairing AIB 2.0 with commodity 2.5-D packaging. A silicon");
    println!("interposer only pays off when bump pitch, not cost, is binding.");
}
