//! Ablation: the Step #TT1 assignment metric. The paper says only
//! "weighted Jaccard Similarity between the algorithm's nodes and the
//! nodes of the library-synthesized configurations"; this bench shows
//! where each reading (raw work, log-compressed work, pure presence)
//! sends the six test algorithms, against the paper's Table III
//! column.

use claire_bench::{paper_options, render_table};
use claire_core::{Claire, WeightScale};
use claire_model::zoo;

fn main() {
    let paper: &[(&str, &str)] = &[
        ("BERT-base", "C_3"),
        ("Graphormer", "C_3"),
        ("ViT-base", "C_3"),
        ("AST", "C_3"),
        ("DETR", "C_1"),
        ("Alexnet", "C_1"),
    ];
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); 3];
    for (si, scale) in [WeightScale::Raw, WeightScale::Log, WeightScale::Binary]
        .into_iter()
        .enumerate()
    {
        let mut opts = paper_options();
        opts.assign_scale = scale;
        let claire = Claire::new(opts);
        let train = claire.train(&zoo::training_set()).expect("train");
        let test = claire
            .evaluate_test(&train, &zoo::test_set())
            .expect("test");
        for r in &test.reports {
            columns[si].push(
                r.assigned_library
                    .map(|k| train.libraries[k].config.name.clone())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    let rows: Vec<Vec<String>> = paper
        .iter()
        .enumerate()
        .map(|(i, (name, expected))| {
            vec![
                (*name).to_owned(),
                (*expected).to_owned(),
                columns[0][i].clone(),
                columns[1][i].clone(),
                columns[2][i].clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Ablation: assignment metric vs the paper's Table III",
            &["Test Algorithm", "Paper", "Raw", "Log", "Binary"],
            &rows,
        )
    );
    println!();
    println!("No reading reproduces the paper column exactly: BERT/Graphormer");
    println!("are genuinely most similar to the Whisper library (C_4) and DETR");
    println!("to the PEANUT library (C_2) under any monotone similarity over");
    println!("faithful node vectors - see EXPERIMENTS.md. Every assignment");
    println!("still reaches 100% coverage.");
}
