//! Extension experiment: the paper's conclusion notes that "a
//! comprehensive algorithm test set with similar architectures will
//! address the unassigned cases in Table III" — the configurations
//! C_2, C_4 and C_5 that received no test algorithm.
//!
//! This harness deploys five additional architecturally faithful test
//! algorithms (Wav2Vec2, DistilGPT2, Mask R-CNN, ConvNeXt-T,
//! EfficientNet-B0) and shows the previously idle libraries picking
//! up work.

use claire_bench::{paper_options, render_table};
use claire_core::Claire;
use claire_model::zoo;

fn main() {
    let claire = Claire::new(paper_options());
    let training = zoo::training_set();
    let out = claire.train(&training).expect("training phase");

    let mut tests = zoo::test_set();
    tests.extend(zoo::extended_test_set());
    tests.extend([zoo::unet(), zoo::t5_small(), zoo::clip_vit_b32()]);
    let t = claire.evaluate_test(&out, &tests).expect("test phase");

    let rows: Vec<Vec<String>> = t
        .reports
        .iter()
        .map(|r| {
            vec![
                r.model_name.clone(),
                r.assigned_library
                    .map(|k| out.libraries[k].config.name.clone())
                    .unwrap_or_else(|| "-".into()),
                format!("{:.3}", r.similarity),
                format!("{:.0}%", r.coverage * 100.0),
                format!("{:.3}", r.utilization_library),
                format!("{:.3}", r.utilization_generic),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Extended test set: assignment over C_1..C_5",
            &[
                "Algorithm",
                "Config",
                "Similarity",
                "Coverage",
                "U(i,k)",
                "U(i,g)"
            ],
            &rows,
        )
    );

    let assigned: std::collections::BTreeSet<_> = t
        .reports
        .iter()
        .filter_map(|r| r.assigned_library)
        .collect();
    println!();
    println!(
        "libraries receiving test algorithms: {} of {}",
        assigned.len(),
        out.libraries.len()
    );
    println!("(paper Table III left C_2, C_4 and C_5 unassigned; the extended");
    println!("set exercises the full library, as the conclusion anticipates.)");
    if let Some(gap) = t.reports.iter().find(|r| r.assigned_library.is_none()) {
        println!();
        println!(
            "composability gap: {} is covered by no library (a SiLU CNN needs",
            gap.model_name
        );
        println!("both C_1's pooling and C_3's SiLU) - the library would need");
        println!("re-synthesis with such architectures in the training set.");
    }
}
