//! Row builders for each paper table — shared between the harness
//! binaries, the integration tests and the criterion benches.

use crate::PaperRun;
use claire_model::{zoo, Model, OpClass};

/// Table I rows: algorithm, type, parameter count (M), source.
pub fn table1_rows() -> Vec<Vec<String>> {
    let source = |m: &Model| match m.name() {
        "Mixtral-8x7B" | "GPT2" | "Meta Llama-3-8B" | "DPT-Large" | "DINOv2-large"
        | "Whisperv3-large" => "HuggingFace",
        _ => "Torchvision",
    };
    zoo::training_set()
        .iter()
        .map(|m| {
            let p = m.param_count() as f64;
            let pretty = if p >= 1e9 {
                format!("{:.2} B", p / 1e9)
            } else {
                format!("{:.2} M", p / 1e6)
            };
            vec![
                m.name().to_owned(),
                m.class().to_string(),
                pretty,
                source(m).to_owned(),
            ]
        })
        .collect()
}

/// Table II rows: one per chiplet library across the `C_k`
/// configurations — systolic-array size/count, activation types and
/// count, pooling types and count, flatten/permute flags.
pub fn table2_rows(run: &PaperRun) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut library_index = 0;
    for lib in &run.train.libraries {
        for chiplet in &lib.config.chiplets {
            library_index += 1;
            let hw = lib.config.hw;
            let acts: Vec<String> = chiplet
                .activation_kinds()
                .iter()
                .map(|a| a.token().to_owned())
                .collect();
            let pools: Vec<String> = chiplet
                .pooling_kinds()
                .iter()
                .map(|p| p.token().to_owned())
                .collect();
            let n_sa = chiplet.systolic_groups() as u32 * hw.n_sa;
            rows.push(vec![
                format!("L{library_index} ({})", lib.config.name),
                format!("{}x{}", hw.sa_size, hw.sa_size),
                n_sa.to_string(),
                if acts.is_empty() {
                    "None".to_owned()
                } else {
                    acts.join(", ")
                },
                if acts.is_empty() {
                    "-".to_owned()
                } else {
                    hw.n_act.to_string()
                },
                if pools.is_empty() {
                    "None".to_owned()
                } else {
                    pools.join(", ")
                },
                if pools.is_empty() {
                    "-".to_owned()
                } else {
                    hw.n_pool.to_string()
                },
                yesno(chiplet.classes.contains(&OpClass::Flatten)),
                yesno(chiplet.classes.contains(&OpClass::Permute)),
            ]);
        }
    }
    rows
}

fn yesno(b: bool) -> String {
    if b { "Yes" } else { "No" }.to_owned()
}

/// Table III rows: configuration, training subset, assigned test
/// subset.
pub fn table3_rows(run: &PaperRun) -> Vec<Vec<String>> {
    run.train
        .libraries
        .iter()
        .enumerate()
        .map(|(k, lib)| {
            let tests: Vec<&str> = run
                .test
                .reports
                .iter()
                .filter(|r| r.assigned_library == Some(k))
                .map(|r| r.model_name.as_str())
                .collect();
            vec![
                lib.config.name.clone(),
                lib.member_names.join(", "),
                if tests.is_empty() {
                    "No test set algorithm assigned".to_owned()
                } else {
                    tests.join(", ")
                },
            ]
        })
        .collect()
}

/// Table IV rows (training NRE): configuration, subset,
/// `NRE_cstm(k, TR_k)`, `NRE_k`, cost benefit. Only multi-member
/// subsets are listed, like the paper.
pub fn table4_rows(run: &PaperRun) -> Vec<Vec<String>> {
    run.train
        .libraries
        .iter()
        .filter(|l| l.members.len() > 1)
        .map(|lib| {
            vec![
                lib.config.name.clone(),
                lib.member_names.join(", "),
                format!("{:.3}", lib.cumulative_custom_nre),
                format!("{:.3}", lib.nre_normalized),
                format!("{:.2}x", lib.cumulative_custom_nre / lib.nre_normalized),
            ]
        })
        .collect()
}

/// Table V rows: test algorithm, `U_chiplet(i, g)`, assigned config,
/// `U_chiplet(i, k)`, improvement.
pub fn table5_rows(run: &PaperRun) -> Vec<Vec<String>> {
    run.test
        .reports
        .iter()
        .map(|r| {
            let config = r
                .assigned_library
                .map(|k| run.train.libraries[k].config.name.clone())
                .unwrap_or_else(|| "-".to_owned());
            vec![
                r.model_name.clone(),
                format!("{:.3}", r.utilization_generic),
                config,
                format!("{:.3}", r.utilization_library),
                format!(
                    "{:.2}x",
                    r.utilization_library / r.utilization_generic.max(f64::MIN_POSITIVE)
                ),
            ]
        })
        .collect()
}

/// Table VI rows (test NRE): configuration, test subset,
/// `NRE_cstm(k, TT_k)`, `NRE_k`, benefit.
pub fn table6_rows(run: &PaperRun) -> Vec<Vec<String>> {
    run.test
        .nre_rows
        .iter()
        .map(|(k, names, cstm, nre)| {
            vec![
                run.train.libraries[*k].config.name.clone(),
                names.join(", "),
                format!("{cstm:.3}"),
                format!("{nre:.3}"),
                format!("{:.2}x", cstm / nre),
            ]
        })
        .collect()
}

/// Table I rendered exactly as the `table1` binary prints it — the
/// text the `tests/golden/table1.txt` fixture pins.
pub fn table1_rendered() -> String {
    crate::render_table(
        "Table I: AI algorithms selected in the training set",
        &["Algorithm", "Type", "# Params", "Source"],
        &table1_rows(),
    )
}

/// Table II rendered exactly as the `table2` binary prints it.
pub fn table2_rendered(run: &PaperRun) -> String {
    crate::render_table(
        "Table II: design specifications of the chiplet libraries (C_k)",
        &[
            "Chiplet Library",
            "SA Size",
            "#SA",
            "Activation Types",
            "#Act",
            "Pooling Types",
            "#Pool",
            "FLATTEN",
            "PERMUTE",
        ],
        &table2_rows(run),
    )
}

/// Table III rendered exactly as the `table3` binary prints it.
pub fn table3_rendered(run: &PaperRun) -> String {
    crate::render_table(
        "Table III: configurations and their algorithm subsets",
        &["Config", "Training Subset (TR_k)", "Test Subset (TT_k)"],
        &table3_rows(run),
    )
}

/// Table IV rendered exactly as the `table4` binary prints it.
pub fn table4_rendered(run: &PaperRun) -> String {
    crate::render_table(
        "Table IV: training-phase NRE (normalised to C_g)",
        &["Config", "Training Subset", "NRE_cstm", "NRE_k", "Benefit"],
        &table4_rows(run),
    )
}

/// Table V rendered exactly as the `table5` binary prints it.
pub fn table5_rendered(run: &PaperRun) -> String {
    crate::render_table(
        "Table V: chiplet utilization, generic vs library-synthesized",
        &[
            "Test Algorithm",
            "U(i,g)",
            "Config",
            "U(i,k)",
            "Improvement",
        ],
        &table5_rows(run),
    )
}

/// Table VI rendered exactly as the `table6` binary prints it.
pub fn table6_rendered(run: &PaperRun) -> String {
    crate::render_table(
        "Table VI: test-phase NRE (normalised to C_g)",
        &["Config", "Test Subset", "NRE_cstm", "NRE_k", "Benefit"],
        &table6_rows(run),
    )
}

/// All six paper tables rendered from one flow result, in order —
/// the golden-fixture suite iterates this.
pub fn all_rendered(run: &PaperRun) -> [(&'static str, String); 6] {
    [
        ("table1", table1_rendered()),
        ("table2", table2_rendered(run)),
        ("table3", table3_rendered(run)),
        ("table4", table4_rendered(run)),
        ("table5", table5_rendered(run)),
        ("table6", table6_rendered(run)),
    ]
}

/// Fig. 2 rows: the top-`n` edge combinations with counts.
pub fn figure2_rows(n: usize) -> Vec<Vec<String>> {
    claire_core::graphs::edge_histogram(&zoo::training_set())
        .into_iter()
        .take(n)
        .map(|((a, b), count)| vec![format!("{a}-{b}"), count.to_string()])
        .collect()
}

/// Fig. 4 rows: per algorithm, area/latency/energy on `C_g`, `C_i`,
/// `C_k` (training + test phases).
pub fn figure4_rows(run: &PaperRun) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let all = run
        .train
        .algo_ppa
        .iter()
        .chain(run.test.reports.iter().map(|r| &r.ppa));
    for p in all {
        rows.push(vec![
            p.model_name.clone(),
            format!("{:.1}", p.generic.area_mm2),
            format!("{:.1}", p.custom.area_mm2),
            format!("{:.1}", p.library.area_mm2),
            format!("{:.3}", p.generic.latency_s * 1e3),
            format!("{:.3}", p.custom.latency_s * 1e3),
            format!("{:.3}", p.library.latency_s * 1e3),
            format!("{:.3}", p.generic.energy_j * 1e3),
            format!("{:.3}", p.custom.energy_j * 1e3),
            format!("{:.3}", p.library.energy_j * 1e3),
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn run() -> &'static PaperRun {
        static RUN: OnceLock<PaperRun> = OnceLock::new();
        RUN.get_or_init(crate::run_paper_flow)
    }

    #[test]
    fn table2_lists_every_chiplet_once() {
        let rows = table2_rows(run());
        let expected: usize = run()
            .train
            .libraries
            .iter()
            .map(|l| l.config.chiplet_count())
            .sum();
        assert_eq!(rows.len(), expected);
        // Every row carries a parseable SA size column.
        for r in &rows {
            assert!(r[1].contains('x'), "{r:?}");
        }
    }

    #[test]
    fn table3_has_one_row_per_library() {
        let rows = table3_rows(run());
        assert_eq!(rows.len(), run().train.libraries.len());
        // The paper's key structural fact: at least one configuration
        // receives no test algorithm.
        assert!(rows.iter().any(|r| r[2].contains("No test set algorithm")));
    }

    #[test]
    fn table4_only_multi_member_subsets() {
        for r in table4_rows(run()) {
            assert!(r[1].contains(','), "singleton subset listed: {r:?}");
            let benefit: f64 = r[4].trim_end_matches('x').parse().expect("benefit");
            assert!(benefit > 1.0, "{r:?}");
        }
    }

    #[test]
    fn table5_has_six_test_rows_with_ratios() {
        let rows = table5_rows(run());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let improvement: f64 = r[4].trim_end_matches('x').parse().expect("ratio");
            assert!(improvement >= 1.0, "{r:?}");
        }
    }

    #[test]
    fn table6_benefits_are_positive() {
        for r in table6_rows(run()) {
            let benefit: f64 = r[4].trim_end_matches('x').parse().expect("benefit");
            assert!(benefit > 0.9, "{r:?}");
        }
    }

    #[test]
    fn figure4_covers_all_nineteen_models() {
        let rows = figure4_rows(run());
        assert_eq!(rows.len(), 19);
        // Generic area column is constant and the largest.
        for r in &rows {
            let a_g: f64 = r[1].parse().expect("area");
            let a_i: f64 = r[2].parse().expect("area");
            assert!(a_g >= a_i, "{r:?}");
        }
    }

    #[test]
    fn table1_lists_thirteen_algorithms() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 13);
        assert_eq!(rows[0][0], "Resnet18");
        assert!(rows[0][2].contains('M'));
        // Mixtral printed in billions.
        let mixtral = rows.iter().find(|r| r[0] == "Mixtral-8x7B").unwrap();
        assert!(mixtral[2].contains('B'));
        assert_eq!(mixtral[3], "HuggingFace");
    }

    #[test]
    fn figure2_top_is_linear_linear() {
        let rows = figure2_rows(12);
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0][0], "LINEAR-LINEAR");
    }
}
