//! Mutation fuzzing for the `print(model)` parser: whatever bytes a
//! dump is mangled into — flipped bytes, deleted / duplicated lines,
//! truncation, injected garbage — `parse_model` must return `Ok` or a
//! typed [`ParseModelError`], never panic. Errors must carry the
//! 1-based line number of the offending module so users can fix real
//! dumps.

use claire_model::parse::{parse_model, to_torch_print, ParseModelError, ParseOptions};
use claire_model::zoo;
use proptest::prelude::*;

/// One mutilation of a dump's byte stream. Positions are taken modulo
/// the current length, so any usize is valid.
#[derive(Debug, Clone)]
enum Mutation {
    /// Overwrite one byte.
    FlipByte(usize, u8),
    /// Remove one line entirely.
    DeleteLine(usize),
    /// Repeat one line immediately after itself.
    DuplicateLine(usize),
    /// Cut the dump off mid-stream.
    Truncate(usize),
    /// Splice arbitrary bytes in.
    InsertBytes(usize, Vec<u8>),
}

fn apply(m: &Mutation, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    match m {
        Mutation::FlipByte(pos, val) => {
            let p = pos % bytes.len();
            bytes[p] = *val;
        }
        Mutation::DeleteLine(idx) | Mutation::DuplicateLine(idx) => {
            let text = String::from_utf8_lossy(bytes).into_owned();
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return;
            }
            let i = idx % lines.len();
            if matches!(m, Mutation::DeleteLine(_)) {
                lines.remove(i);
            } else {
                lines.insert(i, lines[i]);
            }
            *bytes = lines.join("\n").into_bytes();
        }
        Mutation::Truncate(pos) => {
            let p = pos % (bytes.len() + 1);
            bytes.truncate(p);
        }
        Mutation::InsertBytes(pos, extra) => {
            let p = pos % (bytes.len() + 1);
            for (k, b) in extra.iter().enumerate() {
                bytes.insert(p + k, *b);
            }
        }
    }
}

fn position() -> std::ops::Range<usize> {
    // Positions are reduced modulo the live length, so any wide range
    // exercises every spot, including far past the end.
    0..1 << 20
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (position(), 0u8..255).prop_map(|(p, v)| Mutation::FlipByte(p, v)),
        position().prop_map(Mutation::DeleteLine),
        position().prop_map(Mutation::DuplicateLine),
        position().prop_map(Mutation::Truncate),
        (position(), proptest::collection::vec(0u8..255, 1..24))
            .prop_map(|(p, b)| Mutation::InsertBytes(p, b)),
    ]
}

/// The zoo printouts the fuzzer mutates: a grouped-conv CNN, the
/// Conv1d-bearing GPT-2 and a Linear-heavy transformer cover every
/// parsed module family.
fn seed_dumps() -> Vec<String> {
    [zoo::resnet18(), zoo::gpt2(), zoo::bert_base()]
        .iter()
        .map(to_torch_print)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parse_model_never_panics_on_mutated_dumps(
        seed in 0usize..3,
        muts in proptest::collection::vec(mutation(), 1..12),
    ) {
        let mut bytes = seed_dumps()[seed].clone().into_bytes();
        for m in &muts {
            apply(m, &mut bytes);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Ok or a typed error are both acceptable; a panic fails the
        // whole property.
        let _ = parse_model("mutated", &text, ParseOptions::default());
    }

    #[test]
    fn parse_model_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..255, 0..2048),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_model("garbage", &text, ParseOptions::default());
    }
}

#[test]
fn unmutated_dumps_round_trip() {
    for dump in seed_dumps() {
        parse_model("clean", &dump, ParseOptions::default()).expect("clean dump parses");
    }
}

#[test]
fn bad_arguments_carry_the_offending_line_number() {
    let text = "Net(\n  (r): ReLU()\n  (c): Conv2d(3, 8, kernel_size=(3, 3), stride=(0, 1))\n)\n";
    match parse_model("n", text, ParseOptions::default()) {
        Err(ParseModelError::BadArguments { line, module, .. }) => {
            assert_eq!(line, 3, "1-based line of the zero-stride Conv2d");
            assert_eq!(module, "Conv2d");
        }
        other => panic!("expected BadArguments with a line number, got {other:?}"),
    }
}
