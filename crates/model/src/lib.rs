//! # claire-model — AI workload descriptions for the CLAIRE framework
//!
//! This crate is Input #1 and Input #6 of the CLAIRE analytical framework
//! (DATE 2025): per-layer descriptions of the 13 training-set and 6
//! test-set AI algorithms, plus a parser for PyTorch-style
//! `print(model)` text dumps, which is the ingestion path the paper
//! describes in Step #TR1.
//!
//! The framework consumes only layer *metadata* — layer type, input size
//! (`IFM_x`, `IFM_y`), output size (`OFM_x`, `OFM_y`), channel counts
//! (`N_IFM`, `N_OFM`), kernel size (`K_x`, `K_y`), stride and padding —
//! never weights. [`zoo`] reconstructs that metadata from the published
//! architectures.
//!
//! # Example
//!
//! ```
//! use claire_model::zoo;
//!
//! let resnet = zoo::resnet18();
//! assert_eq!(resnet.name(), "Resnet18");
//! // Table I of the paper lists ResNet-18 at 11.7 M parameters.
//! let m = resnet.param_count() as f64 / 1.0e6;
//! assert!((11.0..12.5).contains(&m), "got {m} M");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod layer;
mod model;
pub mod parse;
pub mod synth;
pub mod zoo;

pub use layer::{
    Activation, ActivationKind, Conv1d, Conv2d, Flatten, Layer, LayerKind, Linear, OpClass,
    Permute, Pooling, PoolingKind,
};
pub use model::{Model, ModelBuilder, ModelClass};
