//! The [`Model`] type: a named sequence of extracted layers plus
//! aggregate queries used throughout the framework (parameter counts,
//! MAC totals, op-class inventories, and the layer-connection edges of
//! Step #TR1).

use crate::layer::{Layer, LayerKind, OpClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Broad workload family, mirroring the "Type" column of the paper's
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelClass {
    /// Convolutional neural network.
    Cnn,
    /// Region-based CNN (detection / navigation).
    Rcnn,
    /// Decoder-style large language model.
    Llm,
    /// Mixture-of-experts LLM.
    MoeLlm,
    /// Encoder-style transformer (vision / audio / text).
    Transformer,
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelClass::Cnn => "CNN",
            ModelClass::Rcnn => "RCNN",
            ModelClass::Llm => "LLM",
            ModelClass::MoeLlm => "MoE LLM",
            ModelClass::Transformer => "Transformer",
        };
        f.write_str(s)
    }
}

/// An AI algorithm as the CLAIRE framework sees it: an ordered list of
/// compute layers plus bookkeeping for parameters that live outside the
/// considered layer types (embedding tables, normalisation scales).
///
/// The paper's parser "reads this layer information file, parses it, and
/// extracts details for each layer"; [`Model`] is the in-memory result.
///
/// # Example
///
/// ```
/// use claire_model::zoo;
///
/// let gpt2 = zoo::gpt2();
/// // GPT-2 is the training algorithm that uses 1-D convolution modules.
/// assert!(gpt2
///     .op_class_weights()
///     .contains_key(&claire_model::OpClass::Conv1d));
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    class: ModelClass,
    layers: Vec<Layer>,
    /// Parameters in modules outside the considered layer types
    /// (embeddings, norms). Counted in [`Model::param_count`] so Table I
    /// totals are faithful, but never mapped to hardware nodes.
    extra_params: u64,
    /// Process-unique instance id (see [`Model::instance_id`]); shared
    /// by clones, fresh per construction/deserialisation. Excluded from
    /// equality and serialisation.
    instance_id: u64,
}

/// Structural equality — the instance id is deliberately ignored, so a
/// deserialised or independently rebuilt model equals the original.
impl PartialEq for Model {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.class == other.class
            && self.layers == other.layers
            && self.extra_params == other.extra_params
    }
}

/// Serialisation proxy carrying only the structural fields.
#[derive(Serialize, Deserialize)]
struct ModelRepr {
    name: String,
    class: ModelClass,
    layers: Vec<Layer>,
    extra_params: u64,
}

impl Serialize for Model {
    fn to_value(&self) -> serde::Value {
        ModelRepr {
            name: self.name.clone(),
            class: self.class,
            layers: self.layers.clone(),
            extra_params: self.extra_params,
        }
        .to_value()
    }
}

impl Deserialize for Model {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        ModelRepr::from_value(v).map(|r| Model::new(r.name, r.class, r.layers, r.extra_params))
    }
}

/// Monotonic source of [`Model::instance_id`] values.
static NEXT_INSTANCE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Model {
    /// Creates a model from parts.
    ///
    /// Most callers should use [`ModelBuilder`] or the [`crate::zoo`]
    /// constructors instead.
    pub fn new(
        name: impl Into<String>,
        class: ModelClass,
        layers: Vec<Layer>,
        extra_params: u64,
    ) -> Self {
        Model {
            name: name.into(),
            class,
            layers,
            extra_params,
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// A process-unique identity for memoization: every construction
    /// (including deserialisation) gets a fresh id, and clones share
    /// their source's. Models are immutable after construction, so two
    /// models with the same id are guaranteed structurally identical —
    /// caches may key on `(instance_id, …)` without content hashing.
    /// The converse does not hold (equal content, different ids), which
    /// costs a cache a miss, never correctness.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Algorithm name as listed in the paper's tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload family (Table I "Type" column).
    pub fn class(&self) -> ModelClass {
        self.class
    }

    /// The extracted layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total trainable parameters (layer parameters + embedding/norm
    /// parameters recorded at construction).
    pub fn param_count(&self) -> u64 {
        self.layers
            .iter()
            .map(Layer::params)
            .fold(self.extra_params, u64::saturating_add)
    }

    /// Total multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        self.layers
            .iter()
            .map(Layer::macs)
            .fold(0, u64::saturating_add)
    }

    /// Total element-wise (activation / pooling / reshape) operations.
    pub fn element_ops(&self) -> u64 {
        self.layers
            .iter()
            .map(Layer::element_ops)
            .fold(0, u64::saturating_add)
    }

    /// Total activation bytes flowing between layers (8-bit elements).
    pub fn activation_bytes(&self) -> u64 {
        self.edges()
            .iter()
            .map(|(_, _, b)| *b)
            .fold(0, u64::saturating_add)
    }

    /// Arithmetic intensity: MACs per byte of weights + inter-layer
    /// activations (8-bit). High values are compute-bound on any
    /// sane memory system; low values live on the memory wall.
    pub fn arithmetic_intensity(&self) -> f64 {
        let weight_bytes = self
            .layers
            .iter()
            .map(Layer::params)
            .fold(0u64, u64::saturating_add);
        let traffic = weight_bytes.saturating_add(self.activation_bytes());
        if traffic == 0 {
            return 0.0;
        }
        self.macs() as f64 / traffic as f64
    }

    /// The set of hardware-unit classes this algorithm needs, with the
    /// number of layers mapping to each — the basis of the node weights
    /// `w_N` and of algorithm coverage `C_layer`.
    pub fn op_class_counts(&self) -> BTreeMap<OpClass, u32> {
        let mut m = BTreeMap::new();
        for l in &self.layers {
            *m.entry(l.op_class()).or_insert(0) += 1;
        }
        m
    }

    /// Work-weighted op-class vector: for systolic classes the weight is
    /// total MACs, for the rest total element operations. This is the
    /// vector the weighted Jaccard similarity (Step #TR2 line 14 and
    /// Step #TT1) compares.
    pub fn op_class_weights(&self) -> BTreeMap<OpClass, f64> {
        let mut m = BTreeMap::new();
        for l in &self.layers {
            let w = if l.op_class().is_systolic() {
                l.macs() as f64
            } else {
                l.element_ops() as f64
            };
            *m.entry(l.op_class()).or_insert(0.0) += w;
        }
        m
    }

    /// Data volume (elements) flowing between consecutive layer classes:
    /// the per-model edge list `(E, w_E)` of the initial graph
    /// `G_ini(N, E, w_N, w_E)`.
    pub fn edges(&self) -> Vec<(OpClass, OpClass, u64)> {
        let mut edges = Vec::with_capacity(self.layers.len().saturating_sub(1));
        for pair in self.layers.windows(2) {
            edges.push((
                pair[0].op_class(),
                pair[1].op_class(),
                pair[0].output_elements(),
            ));
        }
        edges
    }

    /// Edge-combination counts keyed by (source label, destination
    /// label) — the data behind the paper's Fig. 2 histogram.
    pub fn edge_combination_counts(&self) -> BTreeMap<(OpClass, OpClass), u32> {
        let mut m = BTreeMap::new();
        for pair in self.layers.windows(2) {
            *m.entry((pair[0].op_class(), pair[1].op_class()))
                .or_insert(0) += 1;
        }
        m
    }

    /// Number of extracted layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// True when every layer's op class is contained in `supported` —
    /// i.e. algorithm coverage `C_layer` would be 100 %.
    pub fn covered_by<'a, I>(&self, supported: I) -> bool
    where
        I: IntoIterator<Item = &'a OpClass>,
    {
        let set: std::collections::BTreeSet<_> = supported.into_iter().copied().collect();
        self.layers.iter().all(|l| set.contains(&l.op_class()))
    }
}

/// Incremental constructor used by the [`crate::zoo`] generators.
///
/// Tracks the "current" feature-map/sequence shape so that repeated
/// blocks can be emitted with correct dimensions, exactly as a layer-by-
/// layer walk over a `print(model)` dump would produce them.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    class: ModelClass,
    layers: Vec<Layer>,
    extra_params: u64,
}

impl ModelBuilder {
    /// Starts a new model description.
    pub fn new(name: impl Into<String>, class: ModelClass) -> Self {
        ModelBuilder {
            name: name.into(),
            class,
            layers: Vec::new(),
            extra_params: 0,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> &mut Self {
        self.layers.push(Layer::new(name, kind));
        self
    }

    /// Records parameters that live outside the considered layer types
    /// (embedding tables, layer norms). They count toward
    /// [`Model::param_count`] but produce no hardware nodes.
    pub fn extra_params(&mut self, params: u64) -> &mut Self {
        self.extra_params += params;
        self
    }

    /// Number of layers pushed so far (useful for generated names).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when no layer has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Finalises the model.
    ///
    /// # Panics
    ///
    /// Panics if no layers were pushed — an empty algorithm cannot be
    /// mapped onto hardware.
    pub fn build(self) -> Model {
        assert!(
            !self.layers.is_empty(),
            "model `{}` has no layers",
            self.name
        );
        Model::new(self.name, self.class, self.layers, self.extra_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ActivationKind, Conv2d, Linear};

    fn tiny() -> Model {
        let mut b = ModelBuilder::new("tiny", ModelClass::Cnn);
        b.push(
            "conv",
            LayerKind::Conv2d(Conv2d {
                in_channels: 3,
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                ifm: (8, 8),
                groups: 1,
            }),
        );
        b.push(
            "relu",
            LayerKind::Activation(Activation {
                kind: ActivationKind::Relu,
                elements: 8 * 8 * 8,
            }),
        );
        b.push(
            "fc",
            LayerKind::Linear(Linear {
                in_features: 512,
                out_features: 10,
                tokens: 1,
            }),
        );
        b.build()
    }

    #[test]
    fn param_count_sums_layers_and_extras() {
        let mut b = ModelBuilder::new("m", ModelClass::Llm);
        b.push(
            "fc",
            LayerKind::Linear(Linear {
                in_features: 4,
                out_features: 4,
                tokens: 1,
            }),
        );
        b.extra_params(100);
        let m = b.build();
        assert_eq!(m.param_count(), 4 * 4 + 4 + 100);
    }

    #[test]
    fn edges_follow_execution_order() {
        let m = tiny();
        let e = m.edges();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, OpClass::Conv2d);
        assert_eq!(e[0].1, OpClass::Activation(ActivationKind::Relu));
        // edge weight = conv output volume
        assert_eq!(e[0].2, 8 * 8 * 8);
    }

    #[test]
    fn op_class_counts_are_per_class() {
        let m = tiny();
        let c = m.op_class_counts();
        assert_eq!(c[&OpClass::Conv2d], 1);
        assert_eq!(c[&OpClass::Linear], 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn coverage_requires_all_classes() {
        let m = tiny();
        let full = OpClass::all();
        assert!(m.covered_by(full.iter()));
        let partial = [OpClass::Conv2d, OpClass::Linear];
        assert!(!m.covered_by(partial.iter()));
    }

    #[test]
    fn weights_split_macs_and_element_ops() {
        let m = tiny();
        let w = m.op_class_weights();
        assert!(w[&OpClass::Conv2d] > 0.0);
        assert_eq!(
            w[&OpClass::Activation(ActivationKind::Relu)],
            (8 * 8 * 8) as f64
        );
    }

    #[test]
    fn arithmetic_intensity_is_macs_per_byte() {
        let m = tiny();
        let weights: u64 = m.layers().iter().map(|l| l.params()).sum();
        let expected = m.macs() as f64 / (weights + m.activation_bytes()) as f64;
        assert!((m.arithmetic_intensity() - expected).abs() < 1e-12);
        assert!(m.arithmetic_intensity() > 0.0);
    }

    #[test]
    #[should_panic(expected = "no layers")]
    fn empty_model_panics() {
        ModelBuilder::new("empty", ModelClass::Cnn).build();
    }

    #[test]
    fn serde_round_trip() {
        let m = tiny();
        let json = serde_json::to_string(&m).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
