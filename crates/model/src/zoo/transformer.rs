//! Encoder-style transformers: Swin-T, DPT-Large, DINOv2-large
//! (training set) and BERT-base, Graphormer, ViT-base, AST (test set).

use super::common::*;
use crate::layer::ActivationKind;
use crate::model::{Model, ModelBuilder, ModelClass};

const GELU: ActivationKind = ActivationKind::Gelu;
const RELU: ActivationKind = ActivationKind::Relu;

/// Swin-T (Liu et al., 2021), 29 M parameters.
///
/// torchvision's `SwinTransformer` prints `Permute` modules around each
/// stage and a `Flatten` before the classifier head — the origin of the
/// FLATTEN/PERMUTE capabilities in the paper's chiplet library L2.
pub fn swin_t() -> Model {
    let mut b = ModelBuilder::new("SWIN-T", ModelClass::Transformer);
    let dims = [96_u32, 192, 384, 768];
    let depths = [2_u32, 2, 6, 2];
    let mut res = 56_u32; // 224 / 4 patch grid

    conv2d(&mut b, "features.0.0", 3, 96, 4, 4, 0, (224, 224), 1);
    permute(&mut b, "features.0.2", u64::from(res) * u64::from(res) * 96);

    for (stage, (&d, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        let tokens = res * res;
        for blk in 0..depth {
            let prefix = format!("features.{}.{}", 2 * stage + 1, blk);
            EncoderBlock::standard(d, 4 * d, tokens, GELU).emit(&mut b, &prefix);
        }
        if stage + 1 < dims.len() {
            // PatchMerging: 4d -> 2d linear reduction at half resolution.
            res /= 2;
            linear(
                &mut b,
                &format!("features.{}.reduction", 2 * stage + 2),
                4 * d,
                2 * d,
                res * res,
            );
        }
    }
    permute(&mut b, "permute", u64::from(res) * u64::from(res) * 768);
    adaptive_avg_pool(&mut b, "avgpool", 768, (res, res), 1);
    flatten(&mut b, "flatten", 768);
    linear(&mut b, "head", 768, 1000, 1);
    // Relative-position bias tables + layer norms.
    b.extra_params(700_000);
    b.build()
}

/// ViT-Large backbone shared by DPT-Large and (at patch 14) DINOv2.
fn vit_backbone(
    b: &mut ModelBuilder,
    prefix: &str,
    patch: u32,
    image: u32,
    d: u32,
    depth: u32,
    fused_qkv: bool,
) -> u32 {
    let grid = image / patch;
    let tokens = grid * grid + 1; // + [CLS]
    conv2d(
        b,
        &format!("{prefix}.patch_embed"),
        3,
        d,
        patch,
        patch,
        0,
        (image, image),
        1,
    );
    for blk in 0..depth {
        let mut block = EncoderBlock::standard(d, 4 * d, tokens, GELU);
        block.fused_qkv = fused_qkv;
        block.emit(b, &format!("{prefix}.blocks.{blk}"));
    }
    tokens
}

/// DPT-Large (Ranftl et al., 2021), 342 M parameters: ViT-L/16 at 384²
/// plus the convolutional reassemble/fusion decoder with ReLU.
///
/// Spatial sizes in the decoder follow what a `print(model)`-based
/// extraction can see: DPT's pyramid upsampling happens in functional
/// `interpolate` calls that print no module, so every fusion/head conv
/// propagates at the backbone's 24×24 token grid — matching the
/// paper's Step #TR1 ingestion (and keeping DPT's compute profile
/// transformer-dominated, as its Table III grouping implies).
pub fn dpt_large() -> Model {
    let mut b = ModelBuilder::new("DPT-Large", ModelClass::Transformer);
    vit_backbone(&mut b, "backbone", 16, 384, 1024, 24, false);

    // Reassemble: project four tapped token maps to pyramid channels.
    let grid = 384 / 16; // 24
    let pyramid = [96_u32, 192, 384, 768];
    for (i, &ch) in pyramid.iter().enumerate() {
        // Readout projection: concatenated [token; CLS] back to d.
        linear(
            &mut b,
            &format!("neck.reassemble.{i}.readout_project"),
            2 * 1024,
            1024,
            grid * grid,
        );
        conv2d(
            &mut b,
            &format!("neck.reassemble.{i}.projection"),
            1024,
            ch,
            1,
            1,
            0,
            (grid, grid),
            1,
        );
        // Channel-align to the 256-wide fusion trunk.
        conv2d(
            &mut b,
            &format!("neck.convs.{i}"),
            ch,
            256,
            3,
            1,
            1,
            (grid, grid),
            1,
        );
    }
    // Four RefineNet-style fusion stages, two residual conv units each.
    for i in 0..4_u32 {
        for j in 0..2 {
            conv2d_act(
                &mut b,
                &format!("neck.fusion.{i}.rcu{j}.conv1"),
                256,
                256,
                3,
                1,
                1,
                (grid, grid),
                1,
                RELU,
            );
            conv2d_act(
                &mut b,
                &format!("neck.fusion.{i}.rcu{j}.conv2"),
                256,
                256,
                3,
                1,
                1,
                (grid, grid),
                1,
                RELU,
            );
        }
        conv2d(
            &mut b,
            &format!("neck.fusion.{i}.project"),
            256,
            256,
            1,
            1,
            0,
            (grid, grid),
            1,
        );
    }
    // Monocular-depth head.
    conv2d(&mut b, "head.conv1", 256, 128, 3, 1, 1, (grid, grid), 1);
    conv2d_act(
        &mut b,
        "head.conv2",
        128,
        32,
        3,
        1,
        1,
        (grid, grid),
        1,
        RELU,
    );
    conv2d_act(&mut b, "head.conv3", 32, 1, 1, 1, 0, (grid, grid), 1, RELU);
    // Position embeddings + norms.
    b.extra_params(1_200_000);
    b.build()
}

/// DINOv2-large (Oquab et al., 2024), 304 M parameters: ViT-L/14 at
/// 518² with fused QKV projections.
pub fn dinov2_large() -> Model {
    let mut b = ModelBuilder::new("DINOv2-large", ModelClass::Transformer);
    vit_backbone(&mut b, "backbone", 14, 518, 1024, 24, true);
    b.extra_params(1_500_000); // pos-embed, norms, mask token
    b.build()
}

/// BERT-base (Devlin et al., 2019) — test set. The pooler's printed
/// `Tanh` is the only Tanh layer across the 19 algorithms, which is why
/// the GELU unit's tanh core matters for test-phase coverage.
pub fn bert_base() -> Model {
    let mut b = ModelBuilder::new("BERT-base", ModelClass::Transformer);
    let (d, ffn, tokens) = (768, 3072, 128);
    for blk in 0..12 {
        EncoderBlock::standard(d, ffn, tokens, GELU).emit(&mut b, &format!("encoder.layer.{blk}"));
    }
    linear(&mut b, "pooler.dense", d, d, 1);
    act(
        &mut b,
        "pooler.activation",
        ActivationKind::Tanh,
        u64::from(d),
    );
    // Word (30522), position (512) and token-type embeddings + norms.
    b.extra_params(23_837_184);
    b.build()
}

/// Graphormer (Ying et al., 2021) — test set. Graph transformer over
/// node tokens; all compute is Linear + GELU.
pub fn graphormer() -> Model {
    let mut b = ModelBuilder::new("Graphormer", ModelClass::Transformer);
    let (d, ffn, tokens) = (768, 3072, 128);
    for blk in 0..12 {
        EncoderBlock::standard(d, ffn, tokens, GELU).emit(&mut b, &format!("layers.{blk}"));
    }
    linear(&mut b, "lm_head_transform", d, d, tokens);
    act(
        &mut b,
        "lm_head_act",
        GELU,
        u64::from(d) * u64::from(tokens),
    );
    // Atom/edge/spatial/degree encoders.
    b.extra_params(1_600_000);
    b.build()
}

/// ViT-base /16 (Wu et al., 2020) — test set.
pub fn vit_base() -> Model {
    let mut b = ModelBuilder::new("ViT-base", ModelClass::Transformer);
    let tokens = vit_backbone(&mut b, "encoder", 16, 224, 768, 12, false);
    debug_assert_eq!(tokens, 197);
    linear(&mut b, "head", 768, 1000, 1);
    b.extra_params(200_000);
    b.build()
}

/// AST — Audio Spectrogram Transformer (Gong et al., 2021) — test set.
/// A ViT-B encoder over 16×16 patches of a 128×1024 log-mel
/// spectrogram (1212 patches + 2 tokens at stride 10 in the original;
/// we use the HF non-overlapping variant's 512 patches + 2).
pub fn ast() -> Model {
    let mut b = ModelBuilder::new("AST", ModelClass::Transformer);
    conv2d(
        &mut b,
        "embeddings.patch_embeddings",
        1,
        768,
        16,
        16,
        0,
        (128, 1024),
        1,
    );
    let tokens = (128 / 16) * (1024 / 16) + 2;
    for blk in 0..12 {
        EncoderBlock::standard(768, 3072, tokens, GELU)
            .emit(&mut b, &format!("encoder.layer.{blk}"));
    }
    linear(&mut b, "classifier.dense", 768, 527, 1);
    b.extra_params(500_000);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, OpClass, PoolingKind};

    #[test]
    fn swin_t_params_near_29m() {
        let p = swin_t().param_count() as f64 / 1e6;
        assert!((27.5..30.0).contains(&p), "{p}");
    }

    #[test]
    fn swin_t_prints_flatten_and_permute() {
        let c = swin_t().op_class_counts();
        assert!(c.contains_key(&OpClass::Flatten));
        assert!(c.contains_key(&OpClass::Permute));
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::AdaptiveAvgPool)));
    }

    #[test]
    fn dpt_large_params_near_342m() {
        let p = dpt_large().param_count() as f64 / 1e6;
        assert!((320.0..365.0).contains(&p), "{p}");
    }

    #[test]
    fn dpt_has_relu_and_gelu_and_convs() {
        let c = dpt_large().op_class_counts();
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Relu)));
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Gelu)));
        assert!(c.contains_key(&OpClass::Conv2d));
        assert!(!c.keys().any(|k| matches!(k, OpClass::Pooling(_))));
    }

    #[test]
    fn dinov2_params_near_304m() {
        let p = dinov2_large().param_count() as f64 / 1e6;
        assert!((295.0..312.0).contains(&p), "{p}");
    }

    #[test]
    fn bert_base_params_near_110m() {
        let p = bert_base().param_count() as f64 / 1e6;
        assert!((105.0..113.0).contains(&p), "{p}");
    }

    #[test]
    fn bert_inventory_is_linear_gelu_tanh() {
        let c = bert_base().op_class_counts();
        let classes: Vec<_> = c.keys().copied().collect();
        assert_eq!(
            classes,
            vec![
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Gelu),
                OpClass::Activation(ActivationKind::Tanh),
            ]
        );
    }

    #[test]
    fn vit_base_params_near_86m() {
        let p = vit_base().param_count() as f64 / 1e6;
        assert!((84.0..89.0).contains(&p), "{p}");
    }

    #[test]
    fn vit_base_inventory() {
        let c = vit_base().op_class_counts();
        let classes: Vec<_> = c.keys().copied().collect();
        assert_eq!(
            classes,
            vec![
                OpClass::Conv2d,
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Gelu),
            ]
        );
    }

    #[test]
    fn graphormer_is_linear_gelu_only() {
        let c = graphormer().op_class_counts();
        assert_eq!(c.len(), 2);
        assert!(c.contains_key(&OpClass::Linear));
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Gelu)));
    }

    #[test]
    fn ast_token_count() {
        // 8 x 64 patches + cls + distillation token.
        let m = ast();
        let qkv = m
            .layers()
            .iter()
            .find(|l| l.name.contains("attn.q"))
            .unwrap();
        match &qkv.kind {
            crate::LayerKind::Linear(l) => assert_eq!(l.tokens, 514),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn swin_linear_dominates_edges() {
        // LINEAR-LINEAR should be the most frequent edge combination in
        // any transformer (Fig. 2's observation).
        let m = swin_t();
        let combos = m.edge_combination_counts();
        let ll = combos[&(OpClass::Linear, OpClass::Linear)];
        let max = combos.values().copied().max().unwrap();
        assert_eq!(ll, max);
    }
}
