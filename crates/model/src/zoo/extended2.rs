//! Second wave of extended test algorithms, broadening the
//! future-work evaluation beyond the first extended set: a dense
//! prediction U-Net, an encoder–decoder text transformer with ReLU
//! FFNs (T5), and a dual-tower contrastive model (CLIP).

use super::common::*;
use crate::layer::{ActivationKind, PoolingKind};
use crate::model::{Model, ModelBuilder, ModelClass};

const RELU: ActivationKind = ActivationKind::Relu;
const GELU: ActivationKind = ActivationKind::Gelu;

/// U-Net (Ronneberger et al., 2015) at 256², ≈ 31 M parameters:
/// a conv/ReLU/MaxPool encoder and a conv decoder (the functional
/// up-sampling between stages prints no module, as with DPT).
pub fn unet() -> Model {
    let mut b = ModelBuilder::new("UNet", ModelClass::Cnn);
    let mut fm = (256_u32, 256_u32);
    let mut ch = 3_u32;
    // Encoder: double conv + pool, channels 64..1024.
    let widths = [64_u32, 128, 256, 512];
    for (i, &w) in widths.iter().enumerate() {
        fm = conv2d_act(
            &mut b,
            &format!("down{i}.conv1"),
            ch,
            w,
            3,
            1,
            1,
            fm,
            1,
            RELU,
        );
        fm = conv2d_act(
            &mut b,
            &format!("down{i}.conv2"),
            w,
            w,
            3,
            1,
            1,
            fm,
            1,
            RELU,
        );
        ch = w;
        fm = pool2d(
            &mut b,
            &format!("down{i}.pool"),
            PoolingKind::MaxPool,
            ch,
            fm,
            2,
            2,
            0,
        );
    }
    // Bottleneck.
    fm = conv2d_act(&mut b, "mid.conv1", ch, 1024, 3, 1, 1, fm, 1, RELU);
    fm = conv2d_act(&mut b, "mid.conv2", 1024, 1024, 3, 1, 1, fm, 1, RELU);
    ch = 1024;
    // Decoder: double conv per stage over concatenated skip features
    // (upsampling is functional => spatial size stays at the print-
    // visible resolution, channel arithmetic follows the skip concat).
    for (i, &w) in widths.iter().rev().enumerate() {
        fm = conv2d_act(
            &mut b,
            &format!("up{i}.conv1"),
            ch + w,
            w,
            3,
            1,
            1,
            fm,
            1,
            RELU,
        );
        fm = conv2d_act(&mut b, &format!("up{i}.conv2"), w, w, 3, 1, 1, fm, 1, RELU);
        ch = w;
    }
    conv2d(&mut b, "head", ch, 2, 1, 1, 0, fm, 1);
    b.extra_params(24_000); // batch norms
    b.build()
}

/// T5-small (Raffel et al., 2020), ≈ 60 M parameters: encoder–decoder
/// transformer whose feed-forward blocks use **ReLU**, unusually for
/// a text model — it probes the CNN/transformer boundary in the
/// assignment metric.
pub fn t5_small() -> Model {
    let mut b = ModelBuilder::new("T5-small", ModelClass::Transformer);
    let (d, ffn) = (512_u32, 2048_u32);
    let enc_tokens = 512_u32;
    let dec_tokens = 128_u32;
    for i in 0..6 {
        EncoderBlock::standard(d, ffn, enc_tokens, RELU)
            .emit(&mut b, &format!("encoder.block.{i}"));
    }
    for i in 0..6 {
        let p = format!("decoder.block.{i}");
        EncoderBlock::standard(d, ffn, dec_tokens, RELU).emit(&mut b, &p);
        // Cross-attention.
        linear(&mut b, &format!("{p}.cross.q"), d, d, dec_tokens);
        linear(&mut b, &format!("{p}.cross.k"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.cross.v"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.cross.out"), d, d, dec_tokens);
    }
    linear(&mut b, "lm_head", d, 32_128, dec_tokens);
    // The token embedding is tied to lm_head (already counted above);
    // extras are relative-position biases + RMS norms.
    b.extra_params(400_000);
    b.build()
}

/// CLIP ViT-B/32 (Radford et al., 2021), ≈ 151 M parameters: a ViT-B
/// image tower (32×32 patches) and a 12-block text tower sharing a
/// contrastive embedding space; all compute is Conv2d + Linear + GELU.
pub fn clip_vit_b32() -> Model {
    let mut b = ModelBuilder::new("CLIP-ViT-B32", ModelClass::Transformer);
    // Image tower.
    conv2d(&mut b, "visual.conv1", 3, 768, 32, 32, 0, (224, 224), 1);
    let img_tokens = (224 / 32) * (224 / 32) + 1;
    for i in 0..12 {
        EncoderBlock::standard(768, 3072, img_tokens, GELU)
            .emit(&mut b, &format!("visual.transformer.{i}"));
    }
    linear(&mut b, "visual.proj", 768, 512, 1);
    // Text tower.
    let txt_tokens = 77;
    for i in 0..12 {
        EncoderBlock::standard(512, 2048, txt_tokens, GELU)
            .emit(&mut b, &format!("transformer.{i}"));
    }
    linear(&mut b, "text_projection", 512, 512, 1);
    // Token embedding (49408 x 512) + positional tables + norms.
    b.extra_params(49_408 * 512 + 500_000);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, OpClass, PoolingKind};

    #[test]
    fn unet_params_near_31m() {
        let p = unet().param_count() as f64 / 1e6;
        assert!((28.0..34.0).contains(&p), "{p}");
    }

    #[test]
    fn unet_is_a_pure_relu_cnn() {
        let c = unet().op_class_counts();
        assert!(c.contains_key(&OpClass::Conv2d));
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::MaxPool)));
        assert!(!c.contains_key(&OpClass::Linear));
        assert!(!c.contains_key(&OpClass::Activation(ActivationKind::Gelu)));
    }

    #[test]
    fn t5_params_near_60m() {
        let p = t5_small().param_count() as f64 / 1e6;
        assert!((55.0..65.0).contains(&p), "{p}");
    }

    #[test]
    fn t5_is_linear_relu() {
        let c = t5_small().op_class_counts();
        assert_eq!(c.len(), 2);
        assert!(c.contains_key(&OpClass::Linear));
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Relu)));
    }

    #[test]
    fn clip_params_near_151m() {
        let p = clip_vit_b32().param_count() as f64 / 1e6;
        assert!((144.0..158.0).contains(&p), "{p}");
    }

    #[test]
    fn clip_mixes_towers() {
        let c = clip_vit_b32().op_class_counts();
        assert_eq!(c[&OpClass::Conv2d], 1);
        assert!(c[&OpClass::Linear] > 100);
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Gelu)));
    }
}
