//! Extended test set — the paper's future-work direction: "A
//! comprehensive algorithm test set with similar architectures will
//! address the unassigned cases in Table III" (the library
//! configurations C_2, C_4 and C_5 that received no test algorithm).
//!
//! Five additional, architecturally faithful test algorithms whose
//! compute profiles target those gaps:
//!
//! * [`wav2vec2_base`] — Conv1d front-end + transformer (Whisper-like,
//!   → C_4 territory)
//! * [`distilgpt2`] — all-Conv1D decoder (GPT-2-like, → C_5)
//! * [`mask_rcnn_r50`] — detection R-CNN with RoIAlign and
//!   LastLevelMaxPool (PEANUT-like, → C_2)
//! * [`convnext_tiny`] — modern CNN with GELU/Permute/Flatten
//!   (→ C_1)
//! * [`efficientnet_b0`] — SiLU CNN with squeeze-excite pooling
//!   (stresses the CNN/LLM boundary)

use super::common::*;
use crate::layer::{ActivationKind, LayerKind, Pooling, PoolingKind};
use crate::model::{Model, ModelBuilder, ModelClass};

const GELU: ActivationKind = ActivationKind::Gelu;
const RELU: ActivationKind = ActivationKind::Relu;
const SILU: ActivationKind = ActivationKind::Silu;

/// Wav2Vec2-base (Baevski et al., 2020), ≈ 95 M parameters: a 7-layer
/// strided Conv1d feature extractor over raw audio followed by a
/// 12-block transformer encoder.
pub fn wav2vec2_base() -> Model {
    let mut b = ModelBuilder::new("Wav2Vec2-base", ModelClass::Transformer);
    // Feature extractor over 1 s of 16 kHz audio.
    let mut len = conv1d(&mut b, "feature_extractor.conv0", 1, 512, 10, 5, 0, 16_000);
    act(&mut b, "feature_extractor.act0", GELU, u64::from(len) * 512);
    for i in 1..5 {
        len = conv1d(
            &mut b,
            &format!("feature_extractor.conv{i}"),
            512,
            512,
            3,
            2,
            0,
            len,
        );
        act(
            &mut b,
            &format!("feature_extractor.act{i}"),
            GELU,
            u64::from(len) * 512,
        );
    }
    for i in 5..7 {
        len = conv1d(
            &mut b,
            &format!("feature_extractor.conv{i}"),
            512,
            512,
            2,
            2,
            0,
            len,
        );
        act(
            &mut b,
            &format!("feature_extractor.act{i}"),
            GELU,
            u64::from(len) * 512,
        );
    }
    linear(&mut b, "feature_projection", 512, 768, len);
    for blk in 0..12 {
        EncoderBlock::standard(768, 3072, len, GELU).emit(&mut b, &format!("encoder.layers.{blk}"));
    }
    // Relative positional conv embedding + norms.
    b.extra_params(4_700_000);
    b.build()
}

/// DistilGPT2 (Sanh et al., 2019), ≈ 88 M parameters as the hub counts
/// them: six GPT-2 blocks, every projection an HF `Conv1D` module.
pub fn distilgpt2() -> Model {
    let mut b = ModelBuilder::new("DistilGPT2", ModelClass::Llm);
    let (d, ffn, seq) = (768_u32, 3072_u32, 1024_u32);
    for blk in 0..6 {
        let p = format!("h.{blk}");
        conv1d(&mut b, &format!("{p}.attn.c_attn"), d, 3 * d, 1, 1, 0, seq);
        conv1d(&mut b, &format!("{p}.attn.c_proj"), d, d, 1, 1, 0, seq);
        conv1d(&mut b, &format!("{p}.mlp.c_fc"), d, ffn, 1, 1, 0, seq);
        act(
            &mut b,
            &format!("{p}.mlp.act"),
            GELU,
            u64::from(ffn) * u64::from(seq),
        );
        conv1d(&mut b, &format!("{p}.mlp.c_proj"), ffn, d, 1, 1, 0, seq);
    }
    // wte + wpe + norms + persisted causal-mask buffers.
    b.extra_params(50_257 * 768 + 1024 * 768 + 20_000 + 6 * 1024 * 1024);
    b.build()
}

/// Mask R-CNN with a ResNet-50 + FPN backbone (torchvision), ≈ 44 M
/// parameters — the PEANUT-family detection profile with RoIAlign,
/// LastLevelMaxPool and a two-FC box head.
pub fn mask_rcnn_r50() -> Model {
    let mut b = ModelBuilder::new("MaskRCNN-R50", ModelClass::Rcnn);

    // ResNet-50 trunk at the 800x800 detection resolution.
    let mut fm = conv2d_act(
        &mut b,
        "backbone.body.conv1",
        3,
        64,
        7,
        2,
        3,
        (800, 800),
        1,
        RELU,
    );
    fm = pool2d(
        &mut b,
        "backbone.body.maxpool",
        PoolingKind::MaxPool,
        64,
        fm,
        3,
        2,
        1,
    );
    let mut in_ch = 64;
    let mut stage_fms = Vec::new();
    for (stage, &blocks) in [3_u32, 4, 6, 3].iter().enumerate() {
        let mid = 64 << stage;
        let out_ch = mid * 4;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let prefix = format!("backbone.body.layer{}.{blk}", stage + 1);
            if stride != 1 || in_ch != out_ch {
                conv2d(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    fm,
                    1,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                in_ch,
                mid,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                mid,
                mid,
                3,
                stride,
                1,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv3"),
                mid,
                out_ch,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
        }
        stage_fms.push((out_ch, fm));
    }

    // FPN + extra level.
    for (i, &(ch, sfm)) in stage_fms.iter().enumerate() {
        conv2d(
            &mut b,
            &format!("backbone.fpn.inner.{i}"),
            ch,
            256,
            1,
            1,
            0,
            sfm,
            1,
        );
        conv2d(
            &mut b,
            &format!("backbone.fpn.layer.{i}"),
            256,
            256,
            3,
            1,
            1,
            sfm,
            1,
        );
    }
    let (_, top) = stage_fms[3];
    b.push(
        "backbone.fpn.extra_blocks",
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::LastLevelMaxPool,
            input_elements: u64::from(top.0) * u64::from(top.1) * 256,
            output_elements: u64::from(top.0 / 2) * u64::from(top.1 / 2) * 256,
        }),
    );

    // RPN.
    let rpn_fm = stage_fms[2].1;
    conv2d_act(&mut b, "rpn.head.conv", 256, 256, 3, 1, 1, rpn_fm, 1, RELU);
    conv2d(&mut b, "rpn.head.cls_logits", 256, 3, 1, 1, 0, rpn_fm, 1);
    conv2d(&mut b, "rpn.head.bbox_pred", 256, 12, 1, 1, 0, rpn_fm, 1);

    // Box branch: RoIAlign -> two 1024-wide FCs (torchvision TwoMLPHead).
    let rois = 100_u64;
    b.push(
        "roi_heads.box_roi_pool",
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::RoiAlign,
            input_elements: u64::from(rpn_fm.0) * u64::from(rpn_fm.1) * 256,
            output_elements: rois * 7 * 7 * 256,
        }),
    );
    linear(&mut b, "roi_heads.box_head.fc6", 256 * 7 * 7, 1024, 100);
    act(&mut b, "roi_heads.box_head.act6", RELU, 1024 * 100);
    linear(&mut b, "roi_heads.box_head.fc7", 1024, 1024, 100);
    act(&mut b, "roi_heads.box_head.act7", RELU, 1024 * 100);
    linear(&mut b, "roi_heads.box_predictor.cls_score", 1024, 91, 100);
    linear(&mut b, "roi_heads.box_predictor.bbox_pred", 1024, 364, 100);

    // Mask branch: RoIAlign at 14x14 + four 3x3 convs + predictor.
    b.push(
        "roi_heads.mask_roi_pool",
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::RoiAlign,
            input_elements: u64::from(rpn_fm.0) * u64::from(rpn_fm.1) * 256,
            output_elements: rois * 14 * 14 * 256,
        }),
    );
    for i in 0..4 {
        conv2d_act(
            &mut b,
            &format!("roi_heads.mask_head.{i}"),
            256,
            256,
            3,
            1,
            1,
            (14, 14),
            1,
            RELU,
        );
    }
    conv2d(
        &mut b,
        "roi_heads.mask_predictor",
        256,
        91,
        1,
        1,
        0,
        (28, 28),
        1,
    );
    b.extra_params(60_000); // batch norms
    b.build()
}

/// ConvNeXt-T (Liu et al., 2022), ≈ 28.6 M parameters: depthwise 7×7
/// convolutions, GELU MLPs, printed `Permute` modules around each
/// block and a `Flatten` in the classifier (torchvision).
pub fn convnext_tiny() -> Model {
    let mut b = ModelBuilder::new("ConvNeXt-T", ModelClass::Cnn);
    let dims = [96_u32, 192, 384, 768];
    let depths = [3_u32, 3, 9, 3];
    let mut fm = conv2d(&mut b, "features.0.0", 3, 96, 4, 4, 0, (224, 224), 1);
    for (stage, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for blk in 0..depth {
            let p = format!("features.{}.{blk}", 2 * stage + 1);
            let spatial = u64::from(fm.0) * u64::from(fm.1);
            conv2d(&mut b, &format!("{p}.dwconv"), dim, dim, 7, 1, 3, fm, dim);
            permute(&mut b, &format!("{p}.permute1"), spatial * u64::from(dim));
            linear(&mut b, &format!("{p}.pwconv1"), dim, 4 * dim, fm.0 * fm.1);
            act(
                &mut b,
                &format!("{p}.act"),
                GELU,
                spatial * u64::from(4 * dim),
            );
            linear(&mut b, &format!("{p}.pwconv2"), 4 * dim, dim, fm.0 * fm.1);
            permute(&mut b, &format!("{p}.permute2"), spatial * u64::from(dim));
        }
        if stage + 1 < dims.len() {
            fm = conv2d(
                &mut b,
                &format!("features.{}.downsample", 2 * stage + 2),
                dim,
                dims[stage + 1],
                2,
                2,
                0,
                fm,
                1,
            );
        }
    }
    adaptive_avg_pool(&mut b, "avgpool", 768, fm, 1);
    flatten(&mut b, "classifier.1", 768);
    linear(&mut b, "classifier.2", 768, 1000, 1);
    b.extra_params(120_000); // layer norms / scales
    b.build()
}

/// EfficientNet-B0 (Tan & Le, 2019), ≈ 5.3 M parameters: SiLU MBConv
/// blocks with squeeze-excite (printed `AdaptiveAvgPool2d`).
pub fn efficientnet_b0() -> Model {
    let mut b = ModelBuilder::new("EfficientNet-B0", ModelClass::Cnn);
    let mut fm = conv2d_act(&mut b, "features.0", 3, 32, 3, 2, 1, (224, 224), 1, SILU);
    let mut in_ch = 32_u32;

    // (expansion, out channels, repeats, stride, kernel)
    let cfg: &[(u32, u32, u32, u32, u32)] = &[
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut idx = 1;
    for &(t, c, n, s, k) in cfg {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let p = format!("features.{idx}");
            if t != 1 {
                fm = conv2d_act(
                    &mut b,
                    &format!("{p}.expand"),
                    in_ch,
                    hidden,
                    1,
                    1,
                    0,
                    fm,
                    1,
                    SILU,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{p}.depthwise"),
                hidden,
                hidden,
                k,
                stride,
                k / 2,
                fm,
                hidden,
                SILU,
            );
            // Squeeze-excite: printed AdaptiveAvgPool2d + two 1x1 convs.
            let se = (in_ch / 4).max(1);
            adaptive_avg_pool(&mut b, &format!("{p}.se.avgpool"), hidden, fm, 1);
            conv2d_act(
                &mut b,
                &format!("{p}.se.fc1"),
                hidden,
                se,
                1,
                1,
                0,
                (1, 1),
                1,
                SILU,
            );
            conv2d(
                &mut b,
                &format!("{p}.se.fc2"),
                se,
                hidden,
                1,
                1,
                0,
                (1, 1),
                1,
            );
            fm = conv2d(&mut b, &format!("{p}.project"), hidden, c, 1, 1, 0, fm, 1);
            in_ch = c;
            idx += 1;
        }
    }
    conv2d_act(&mut b, "features.8", in_ch, 1280, 1, 1, 0, fm, 1, SILU);
    adaptive_avg_pool(&mut b, "avgpool", 1280, fm, 1);
    linear(&mut b, "classifier.1", 1280, 1000, 1);
    b.extra_params(42_000); // batch norms
    b.build()
}

/// The five extended test algorithms, ordered to target C_4, C_5,
/// C_2, C_1 and the CNN/LLM boundary respectively.
pub fn extended_test_set() -> Vec<Model> {
    vec![
        wav2vec2_base(),
        distilgpt2(),
        mask_rcnn_r50(),
        convnext_tiny(),
        efficientnet_b0(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpClass, PoolingKind};

    #[test]
    fn wav2vec2_params_near_95m() {
        let p = wav2vec2_base().param_count() as f64 / 1e6;
        assert!((90.0..99.0).contains(&p), "{p}");
    }

    #[test]
    fn wav2vec2_has_conv1d_front_end() {
        let c = wav2vec2_base().op_class_counts();
        assert_eq!(c[&OpClass::Conv1d], 7);
        assert!(c[&OpClass::Linear] > 50);
    }

    #[test]
    fn distilgpt2_params_near_88m() {
        let p = distilgpt2().param_count() as f64 / 1e6;
        assert!((84.0..92.0).contains(&p), "{p}");
    }

    #[test]
    fn distilgpt2_is_conv1d_gelu_only() {
        let c = distilgpt2().op_class_counts();
        assert_eq!(c.len(), 2);
        assert!(c.contains_key(&OpClass::Conv1d));
    }

    #[test]
    fn mask_rcnn_params_near_44m() {
        let p = mask_rcnn_r50().param_count() as f64 / 1e6;
        assert!((42.0..47.0).contains(&p), "{p}");
    }

    #[test]
    fn mask_rcnn_has_detection_pooling() {
        let c = mask_rcnn_r50().op_class_counts();
        assert_eq!(c[&OpClass::Pooling(PoolingKind::RoiAlign)], 2);
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::LastLevelMaxPool)));
    }

    #[test]
    fn convnext_params_near_28_6m() {
        let p = convnext_tiny().param_count() as f64 / 1e6;
        assert!((27.0..30.0).contains(&p), "{p}");
    }

    #[test]
    fn convnext_prints_permute_and_flatten() {
        let c = convnext_tiny().op_class_counts();
        assert!(c[&OpClass::Permute] >= 36);
        assert!(c.contains_key(&OpClass::Flatten));
        assert!(c.contains_key(&OpClass::Activation(crate::ActivationKind::Gelu)));
    }

    #[test]
    fn efficientnet_params_near_5_3m() {
        let p = efficientnet_b0().param_count() as f64 / 1e6;
        assert!((4.8..5.9).contains(&p), "{p}");
    }

    #[test]
    fn efficientnet_is_silu_cnn_with_se_pooling() {
        let c = efficientnet_b0().op_class_counts();
        assert!(c.contains_key(&OpClass::Activation(crate::ActivationKind::Silu)));
        assert!(!c.contains_key(&OpClass::Activation(crate::ActivationKind::Relu)));
        assert!(c[&OpClass::Pooling(PoolingKind::AdaptiveAvgPool)] >= 16);
    }

    #[test]
    fn extended_set_has_five_models_with_unique_names() {
        let set = extended_test_set();
        assert_eq!(set.len(), 5);
        let mut names: Vec<_> = set.iter().map(|m| m.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
