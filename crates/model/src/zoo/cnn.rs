//! Convolutional networks of the paper: ResNet-18/50, VGG-16,
//! DenseNet-121, MobileNetV2 (training set) and AlexNet (test set).
//!
//! Shapes follow the torchvision implementations at 224×224 input.
//! Printed-module fidelity matters for the utilization metric:
//! e.g. torchvision MobileNetV2 pools functionally (`F.adaptive_avg_
//! pool2d`) so no pooling layer is emitted, while ResNet/VGG/AlexNet
//! print an `AdaptiveAvgPool2d` module.

use super::common::*;
use crate::layer::{ActivationKind, PoolingKind};
use crate::model::{Model, ModelBuilder, ModelClass};

const RELU: ActivationKind = ActivationKind::Relu;

/// ResNet-18 (He et al., 2015), 11.7 M parameters.
pub fn resnet18() -> Model {
    resnet_basic("Resnet18", &[2, 2, 2, 2])
}

fn resnet_basic(name: &str, depths: &[u32; 4]) -> Model {
    let mut b = ModelBuilder::new(name, ModelClass::Cnn);
    let mut fm = conv2d_act(&mut b, "conv1", 3, 64, 7, 2, 3, (224, 224), 1, RELU);
    fm = pool2d(&mut b, "maxpool", PoolingKind::MaxPool, 64, fm, 3, 2, 1);

    let mut in_ch = 64;
    for (stage, &blocks) in depths.iter().enumerate() {
        let out_ch = 64 << stage;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let prefix = format!("layer{}.{blk}", stage + 1);
            if stride != 1 || in_ch != out_ch {
                // Projection shortcut.
                conv2d(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    fm,
                    1,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                in_ch,
                out_ch,
                3,
                stride,
                1,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                out_ch,
                out_ch,
                3,
                1,
                1,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
        }
    }
    adaptive_avg_pool(&mut b, "avgpool", in_ch, fm, 1);
    linear(&mut b, "fc", in_ch, 1000, 1);
    // Batch-norm scales/shifts (not a considered layer type).
    b.extra_params(9_600);
    b.build()
}

/// ResNet-50 (He et al., 2015), 25.5 M parameters (bottleneck blocks).
pub fn resnet50() -> Model {
    let mut b = ModelBuilder::new("Resnet50", ModelClass::Cnn);
    let mut fm = conv2d_act(&mut b, "conv1", 3, 64, 7, 2, 3, (224, 224), 1, RELU);
    fm = pool2d(&mut b, "maxpool", PoolingKind::MaxPool, 64, fm, 3, 2, 1);

    let depths = [3_u32, 4, 6, 3];
    let mut in_ch = 64;
    for (stage, &blocks) in depths.iter().enumerate() {
        let mid = 64 << stage;
        let out_ch = mid * 4;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let prefix = format!("layer{}.{blk}", stage + 1);
            if stride != 1 || in_ch != out_ch {
                conv2d(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    fm,
                    1,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                in_ch,
                mid,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                mid,
                mid,
                3,
                stride,
                1,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv3"),
                mid,
                out_ch,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
        }
    }
    adaptive_avg_pool(&mut b, "avgpool", in_ch, fm, 1);
    linear(&mut b, "fc", in_ch, 1000, 1);
    b.extra_params(53_000); // batch norms
    b.build()
}

/// VGG-16 (Simonyan & Zisserman, 2015), 138 M parameters.
pub fn vgg16() -> Model {
    let mut b = ModelBuilder::new("VGG16", ModelClass::Cnn);
    let cfg: &[&[u32]] = &[
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    let mut fm = (224_u32, 224_u32);
    let mut in_ch = 3;
    let mut idx = 0;
    for (stage, outs) in cfg.iter().enumerate() {
        for &out_ch in outs.iter() {
            fm = conv2d_act(
                &mut b,
                &format!("features.{idx}"),
                in_ch,
                out_ch,
                3,
                1,
                1,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
            idx += 2;
        }
        fm = pool2d(
            &mut b,
            &format!("features.pool{stage}"),
            PoolingKind::MaxPool,
            in_ch,
            fm,
            2,
            2,
            0,
        );
        idx += 1;
    }
    adaptive_avg_pool(&mut b, "avgpool", in_ch, fm, 7);
    linear(&mut b, "classifier.0", 512 * 7 * 7, 4096, 1);
    act(&mut b, "classifier.1", RELU, 4096);
    linear(&mut b, "classifier.3", 4096, 4096, 1);
    act(&mut b, "classifier.4", RELU, 4096);
    linear(&mut b, "classifier.6", 4096, 1000, 1);
    b.build()
}

/// DenseNet-121 (Huang et al., 2018), 7.98 M parameters.
///
/// The printed `AvgPool2d` in each transition is the source of the
/// `AVGPOOL` capability in the paper's chiplet library L1; the final
/// global pool is functional in torchvision and therefore absent.
pub fn densenet121() -> Model {
    let mut b = ModelBuilder::new("Densenet121", ModelClass::Cnn);
    let growth = 32_u32;
    let mut fm = conv2d_act(
        &mut b,
        "features.conv0",
        3,
        64,
        7,
        2,
        3,
        (224, 224),
        1,
        RELU,
    );
    fm = pool2d(
        &mut b,
        "features.pool0",
        PoolingKind::MaxPool,
        64,
        fm,
        3,
        2,
        1,
    );

    let mut ch = 64_u32;
    let blocks = [6_u32, 12, 24, 16];
    for (bi, &layers) in blocks.iter().enumerate() {
        for li in 0..layers {
            let prefix = format!("features.denseblock{}.denselayer{}", bi + 1, li + 1);
            // 1x1 bottleneck to 4*growth, then 3x3 to growth.
            conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                ch,
                4 * growth,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                4 * growth,
                growth,
                3,
                1,
                1,
                fm,
                1,
                RELU,
            );
            ch += growth;
        }
        if bi + 1 < blocks.len() {
            let out = ch / 2;
            conv2d(
                &mut b,
                &format!("features.transition{}.conv", bi + 1),
                ch,
                out,
                1,
                1,
                0,
                fm,
                1,
            );
            fm = pool2d(
                &mut b,
                &format!("features.transition{}.pool", bi + 1),
                PoolingKind::AvgPool,
                out,
                fm,
                2,
                2,
                0,
            );
            ch = out;
        }
    }
    linear(&mut b, "classifier", ch, 1000, 1);
    b.extra_params(167_000); // batch norms
    b.build()
}

/// MobileNetV2 (Sandler et al., 2019), 3.5 M parameters.
///
/// All activations are ReLU6; global pooling is functional in
/// torchvision (not printed), so the extraction sees only Conv2d,
/// ReLU6 and the classifier Linear.
pub fn mobilenet_v2() -> Model {
    const RELU6: ActivationKind = ActivationKind::Relu6;
    let mut b = ModelBuilder::new("Mobilenetv2", ModelClass::Cnn);
    let mut fm = conv2d_act(&mut b, "features.0", 3, 32, 3, 2, 1, (224, 224), 1, RELU6);
    let mut in_ch = 32_u32;

    // (expansion t, output channels c, repeats n, first stride s)
    let cfg: &[(u32, u32, u32, u32)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 1;
    for &(t, c, n, s) in cfg {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let prefix = format!("features.{idx}");
            if t != 1 {
                fm = conv2d_act(
                    &mut b,
                    &format!("{prefix}.expand"),
                    in_ch,
                    hidden,
                    1,
                    1,
                    0,
                    fm,
                    1,
                    RELU6,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.depthwise"),
                hidden,
                hidden,
                3,
                stride,
                1,
                fm,
                hidden,
                RELU6,
            );
            // Linear bottleneck: projection conv has no activation.
            fm = conv2d(
                &mut b,
                &format!("{prefix}.project"),
                hidden,
                c,
                1,
                1,
                0,
                fm,
                1,
            );
            in_ch = c;
            idx += 1;
        }
    }
    conv2d_act(&mut b, "features.18", in_ch, 1280, 1, 1, 0, fm, 1, RELU6);
    linear(&mut b, "classifier.1", 1280, 1000, 1);
    b.extra_params(34_000); // batch norms
    b.build()
}

/// AlexNet (Krizhevsky et al.), test-set algorithm.
pub fn alexnet() -> Model {
    let mut b = ModelBuilder::new("Alexnet", ModelClass::Cnn);
    let mut fm = conv2d_act(&mut b, "features.0", 3, 64, 11, 4, 2, (224, 224), 1, RELU);
    fm = pool2d(&mut b, "features.2", PoolingKind::MaxPool, 64, fm, 3, 2, 0);
    fm = conv2d_act(&mut b, "features.3", 64, 192, 5, 1, 2, fm, 1, RELU);
    fm = pool2d(&mut b, "features.5", PoolingKind::MaxPool, 192, fm, 3, 2, 0);
    fm = conv2d_act(&mut b, "features.6", 192, 384, 3, 1, 1, fm, 1, RELU);
    fm = conv2d_act(&mut b, "features.8", 384, 256, 3, 1, 1, fm, 1, RELU);
    fm = conv2d_act(&mut b, "features.10", 256, 256, 3, 1, 1, fm, 1, RELU);
    fm = pool2d(
        &mut b,
        "features.12",
        PoolingKind::MaxPool,
        256,
        fm,
        3,
        2,
        0,
    );
    adaptive_avg_pool(&mut b, "avgpool", 256, fm, 6);
    linear(&mut b, "classifier.1", 256 * 6 * 6, 4096, 1);
    act(&mut b, "classifier.2", RELU, 4096);
    linear(&mut b, "classifier.4", 4096, 4096, 1);
    act(&mut b, "classifier.5", RELU, 4096);
    linear(&mut b, "classifier.6", 4096, 1000, 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, OpClass, PoolingKind};

    #[test]
    fn resnet18_params_near_11_7m() {
        let p = resnet18().param_count() as f64 / 1e6;
        assert!((11.0..12.3).contains(&p), "{p}");
    }

    #[test]
    fn resnet50_params_near_25_5m() {
        let p = resnet50().param_count() as f64 / 1e6;
        assert!((24.5..26.5).contains(&p), "{p}");
    }

    #[test]
    fn vgg16_params_near_138m() {
        let p = vgg16().param_count() as f64 / 1e6;
        assert!((136.0..140.0).contains(&p), "{p}");
    }

    #[test]
    fn densenet121_params_near_7_98m() {
        let p = densenet121().param_count() as f64 / 1e6;
        assert!((7.5..8.5).contains(&p), "{p}");
    }

    #[test]
    fn mobilenetv2_params_near_3_5m() {
        let p = mobilenet_v2().param_count() as f64 / 1e6;
        assert!((3.2..3.8).contains(&p), "{p}");
    }

    #[test]
    fn alexnet_params_near_61m() {
        let p = alexnet().param_count() as f64 / 1e6;
        assert!((59.0..63.0).contains(&p), "{p}");
    }

    #[test]
    fn vgg16_macs_near_15_5g() {
        let g = vgg16().macs() as f64 / 1e9;
        assert!((15.0..16.0).contains(&g), "{g}");
    }

    #[test]
    fn resnet50_macs_near_4_1g() {
        let g = resnet50().macs() as f64 / 1e9;
        assert!((3.8..4.4).contains(&g), "{g}");
    }

    #[test]
    fn mobilenetv2_uses_only_relu6() {
        let counts = mobilenet_v2().op_class_counts();
        assert!(counts.contains_key(&OpClass::Activation(ActivationKind::Relu6)));
        assert!(!counts.contains_key(&OpClass::Activation(ActivationKind::Relu)));
        // torchvision pools functionally -> no pooling node.
        assert!(!counts.keys().any(|c| matches!(c, OpClass::Pooling(_))));
    }

    #[test]
    fn densenet_has_printed_avgpool_transitions() {
        let counts = densenet121().op_class_counts();
        assert_eq!(counts[&OpClass::Pooling(PoolingKind::AvgPool)], 3);
        // Global pool is functional -> absent.
        assert!(!counts.contains_key(&OpClass::Pooling(PoolingKind::AdaptiveAvgPool)));
    }

    #[test]
    fn alexnet_module_groups_match_paper_inventory() {
        // Table V relies on AlexNet exercising exactly these 5 classes.
        let counts = alexnet().op_class_counts();
        let classes: Vec<_> = counts.keys().copied().collect();
        assert_eq!(
            classes,
            vec![
                OpClass::Conv2d,
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Relu),
                OpClass::Pooling(PoolingKind::MaxPool),
                OpClass::Pooling(PoolingKind::AdaptiveAvgPool),
            ]
        );
    }

    #[test]
    fn resnet18_spatial_chain_ends_at_7x7() {
        // The last conv's OFM must be 7x7 for 224 input.
        let m = resnet18();
        let last_conv = m
            .layers()
            .iter()
            .rev()
            .find_map(|l| match &l.kind {
                crate::LayerKind::Conv2d(c) => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_conv.ofm(), (7, 7));
    }
}
