//! Shared emission helpers for the zoo generators.
//!
//! These keep the per-architecture code close to how the networks are
//! actually written: a helper per recurring motif (conv+act, pooling,
//! transformer encoder block, ...), each updating the running
//! feature-map / sequence shape.

use crate::layer::{
    Activation, ActivationKind, Conv1d, Conv2d, Flatten, LayerKind, Linear, Permute, Pooling,
    PoolingKind,
};
use crate::model::ModelBuilder;

/// Emits a `Conv2d` layer and returns the output spatial size.
#[allow(clippy::too_many_arguments)] // mirrors the nn.Conv2d signature
pub(crate) fn conv2d(
    b: &mut ModelBuilder,
    name: &str,
    in_ch: u32,
    out_ch: u32,
    k: u32,
    s: u32,
    p: u32,
    ifm: (u32, u32),
    groups: u32,
) -> (u32, u32) {
    let c = Conv2d {
        in_channels: in_ch,
        out_channels: out_ch,
        kernel: (k, k),
        stride: (s, s),
        padding: (p, p),
        ifm,
        groups,
    };
    let ofm = c.ofm();
    b.push(name, LayerKind::Conv2d(c));
    ofm
}

/// Emits an activation over `elements` values.
pub(crate) fn act(b: &mut ModelBuilder, name: &str, kind: ActivationKind, elements: u64) {
    b.push(name, LayerKind::Activation(Activation { kind, elements }));
}

/// Emits a `Conv2d` followed by an activation; returns the output size.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_act(
    b: &mut ModelBuilder,
    name: &str,
    in_ch: u32,
    out_ch: u32,
    k: u32,
    s: u32,
    p: u32,
    ifm: (u32, u32),
    groups: u32,
    kind: ActivationKind,
) -> (u32, u32) {
    let ofm = conv2d(b, name, in_ch, out_ch, k, s, p, ifm, groups);
    act(
        b,
        &format!("{name}.act"),
        kind,
        u64::from(ofm.0) * u64::from(ofm.1) * u64::from(out_ch),
    );
    ofm
}

/// Emits a sliding-window pooling layer; returns the output spatial size.
#[allow(clippy::too_many_arguments)] // mirrors the nn.MaxPool2d signature
pub(crate) fn pool2d(
    b: &mut ModelBuilder,
    name: &str,
    kind: PoolingKind,
    channels: u32,
    ifm: (u32, u32),
    k: u32,
    s: u32,
    p: u32,
) -> (u32, u32) {
    let o = |i: u32| (i + 2 * p).saturating_sub(k) / s + 1;
    let ofm = (o(ifm.0), o(ifm.1));
    b.push(
        name,
        LayerKind::Pooling(Pooling {
            kind,
            input_elements: u64::from(ifm.0) * u64::from(ifm.1) * u64::from(channels),
            output_elements: u64::from(ofm.0) * u64::from(ofm.1) * u64::from(channels),
        }),
    );
    ofm
}

/// Emits an adaptive average pooling to `out` × `out`.
pub(crate) fn adaptive_avg_pool(
    b: &mut ModelBuilder,
    name: &str,
    channels: u32,
    ifm: (u32, u32),
    out: u32,
) {
    b.push(
        name,
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::AdaptiveAvgPool,
            input_elements: u64::from(ifm.0) * u64::from(ifm.1) * u64::from(channels),
            output_elements: u64::from(out) * u64::from(out) * u64::from(channels),
        }),
    );
}

/// Emits a `Linear` layer applied to `tokens` positions.
pub(crate) fn linear(b: &mut ModelBuilder, name: &str, inf: u32, outf: u32, tokens: u32) {
    b.push(
        name,
        LayerKind::Linear(Linear {
            in_features: inf,
            out_features: outf,
            tokens,
        }),
    );
}

/// Emits a `Conv1d` layer; returns the output length.
#[allow(clippy::too_many_arguments)] // mirrors the nn.Conv1d signature
pub(crate) fn conv1d(
    b: &mut ModelBuilder,
    name: &str,
    in_ch: u32,
    out_ch: u32,
    k: u32,
    s: u32,
    p: u32,
    length: u32,
) -> u32 {
    let c = Conv1d {
        in_channels: in_ch,
        out_channels: out_ch,
        kernel: k,
        stride: s,
        padding: p,
        length,
    };
    let out = c.output_length();
    b.push(name, LayerKind::Conv1d(c));
    out
}

/// Emits a printed `Flatten` module.
pub(crate) fn flatten(b: &mut ModelBuilder, name: &str, elements: u64) {
    b.push(name, LayerKind::Flatten(Flatten { elements }));
}

/// Emits a printed `Permute` module (torchvision Swin).
pub(crate) fn permute(b: &mut ModelBuilder, name: &str, elements: u64) {
    b.push(name, LayerKind::Permute(Permute { elements }));
}

/// Parameters of a standard post-2017 transformer encoder block as the
/// CLAIRE extraction sees it: Q, K, V, attention-output projections and
/// a two-layer MLP with an activation between (attention score/score×V
/// products are functional `matmul`s, not printed modules, and are
/// therefore absent — exactly why LINEAR-LINEAR is the dominant edge in
/// the paper's Fig. 2).
pub(crate) struct EncoderBlock {
    /// Hidden size d.
    pub d: u32,
    /// MLP inner size.
    pub ffn: u32,
    /// Sequence length the block processes.
    pub tokens: u32,
    /// MLP activation.
    pub act: ActivationKind,
    /// K/V projection width (grouped-query attention uses < d).
    pub kv: u32,
    /// Whether Q/K/V are fused into one printed Linear (DINOv2-style
    /// `qkv`) instead of three separate ones (BERT-style).
    pub fused_qkv: bool,
}

impl EncoderBlock {
    /// A standard multi-head-attention block with square projections.
    pub fn standard(d: u32, ffn: u32, tokens: u32, act: ActivationKind) -> Self {
        EncoderBlock {
            d,
            ffn,
            tokens,
            act,
            kv: d,
            fused_qkv: false,
        }
    }

    /// Emits the block's layers under `prefix`.
    pub fn emit(&self, b: &mut ModelBuilder, prefix: &str) {
        if self.fused_qkv {
            linear(
                b,
                &format!("{prefix}.attn.qkv"),
                self.d,
                self.d + 2 * self.kv,
                self.tokens,
            );
        } else {
            linear(b, &format!("{prefix}.attn.q"), self.d, self.d, self.tokens);
            linear(b, &format!("{prefix}.attn.k"), self.d, self.kv, self.tokens);
            linear(b, &format!("{prefix}.attn.v"), self.d, self.kv, self.tokens);
        }
        linear(
            b,
            &format!("{prefix}.attn.out"),
            self.d,
            self.d,
            self.tokens,
        );
        linear(
            b,
            &format!("{prefix}.mlp.fc1"),
            self.d,
            self.ffn,
            self.tokens,
        );
        act(
            b,
            &format!("{prefix}.mlp.act"),
            self.act,
            u64::from(self.ffn) * u64::from(self.tokens),
        );
        linear(
            b,
            &format!("{prefix}.mlp.fc2"),
            self.ffn,
            self.d,
            self.tokens,
        );
    }
}

/// Emits a gated-MLP decoder block (LLaMA / Mixtral expert style):
/// attention projections plus gate/up/down with SiLU.
pub(crate) struct GatedBlock {
    /// Hidden size d.
    pub d: u32,
    /// Gated-MLP inner size.
    pub ffn: u32,
    /// Sequence length.
    pub tokens: u32,
    /// K/V projection width (grouped-query attention).
    pub kv: u32,
}

impl GatedBlock {
    /// Emits attention projections under `prefix`.
    pub fn emit_attention(&self, b: &mut ModelBuilder, prefix: &str) {
        linear(b, &format!("{prefix}.q_proj"), self.d, self.d, self.tokens);
        linear(b, &format!("{prefix}.k_proj"), self.d, self.kv, self.tokens);
        linear(b, &format!("{prefix}.v_proj"), self.d, self.kv, self.tokens);
        linear(b, &format!("{prefix}.o_proj"), self.d, self.d, self.tokens);
    }

    /// Emits one gated MLP (gate, up, SiLU, down) under `prefix`.
    pub fn emit_mlp(&self, b: &mut ModelBuilder, prefix: &str) {
        linear(
            b,
            &format!("{prefix}.gate_proj"),
            self.d,
            self.ffn,
            self.tokens,
        );
        linear(
            b,
            &format!("{prefix}.up_proj"),
            self.d,
            self.ffn,
            self.tokens,
        );
        act(
            b,
            &format!("{prefix}.act"),
            ActivationKind::Silu,
            u64::from(self.ffn) * u64::from(self.tokens),
        );
        linear(
            b,
            &format!("{prefix}.down_proj"),
            self.ffn,
            self.d,
            self.tokens,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelClass;
    use crate::{LayerKind, OpClass};

    #[test]
    fn encoder_block_emits_six_linears_and_one_act() {
        let mut b = ModelBuilder::new("t", ModelClass::Transformer);
        EncoderBlock::standard(768, 3072, 128, ActivationKind::Gelu).emit(&mut b, "blk");
        let m = b.build();
        let counts = m.op_class_counts();
        assert_eq!(counts[&OpClass::Linear], 6);
        assert_eq!(counts[&OpClass::Activation(ActivationKind::Gelu)], 1);
    }

    #[test]
    fn fused_qkv_emits_four_linears() {
        let mut b = ModelBuilder::new("t", ModelClass::Transformer);
        let mut blk = EncoderBlock::standard(1024, 4096, 257, ActivationKind::Gelu);
        blk.fused_qkv = true;
        blk.emit(&mut b, "blk");
        let m = b.build();
        assert_eq!(m.op_class_counts()[&OpClass::Linear], 4);
        // fused qkv params: d * 3d (+ bias)
        let qkv = &m.layers()[0];
        assert_eq!(qkv.params(), 1024 * 3072 + 3072);
    }

    #[test]
    fn gated_block_params_match_llama_formula() {
        let mut b = ModelBuilder::new("t", ModelClass::Llm);
        let blk = GatedBlock {
            d: 4096,
            ffn: 14336,
            tokens: 1,
            kv: 1024,
        };
        blk.emit_attention(&mut b, "attn");
        blk.emit_mlp(&mut b, "mlp");
        let m = b.build();
        let p = m.param_count() as i64;
        // 2*d^2 + 2*d*kv + 3*d*ffn (+ biases)
        let want = 2 * 4096_i64 * 4096 + 2 * 4096 * 1024 + 3 * 4096 * 14336;
        assert!((p - want).abs() < 100_000, "params {p} vs {want}");
    }

    #[test]
    fn pool_shapes() {
        let mut b = ModelBuilder::new("t", ModelClass::Cnn);
        let o = pool2d(
            &mut b,
            "maxpool",
            PoolingKind::MaxPool,
            64,
            (112, 112),
            3,
            2,
            1,
        );
        assert_eq!(o, (56, 56));
        let m = b.build();
        match &m.layers()[0].kind {
            LayerKind::Pooling(p) => {
                assert_eq!(p.input_elements, 112 * 112 * 64);
                assert_eq!(p.output_elements, 56 * 56 * 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
