//! The CLAIRE model zoo: architecturally faithful layer-by-layer
//! descriptions of all 19 AI algorithms used in the paper.
//!
//! Training set (Table I): ResNet-18, VGG-16, DenseNet-121,
//! MobileNetV2, PEANUT-RCNN, ResNet-50, Mixtral-8x7B, GPT-2,
//! Meta-Llama-3-8B, DPT-Large, DINOv2-large, Swin-T, Whisper-v3-large.
//!
//! Test set (Input #6): BERT-base, Graphormer, ViT-base, AST, DETR,
//! AlexNet.
//!
//! Every generator walks the published architecture and emits the same
//! layer records a `print(model)` dump would yield for the module types
//! the paper considers (Conv2d/Conv1d/Linear/activations/poolings plus
//! the printed Flatten/Permute modules of torchvision Swin). Modules
//! PyTorch applies functionally (e.g. `torch.flatten` in ResNet's
//! `forward`) are *not* printed and therefore not emitted, matching the
//! paper's extraction path.

mod cnn;
mod detection;
mod extended;
mod extended2;
mod llm;
mod transformer;

pub(crate) mod common;

pub use cnn::{alexnet, densenet121, mobilenet_v2, resnet18, resnet50, vgg16};
pub use detection::{detr, peanut_rcnn};
pub use extended::{
    convnext_tiny, distilgpt2, efficientnet_b0, extended_test_set, mask_rcnn_r50, wav2vec2_base,
};
pub use extended2::{clip_vit_b32, t5_small, unet};
pub use llm::{
    gpt2, gpt2_decode, llama3_8b, llama3_8b_decode, mixtral_8x7b, mixtral_8x7b_decode,
    whisper_v3_large,
};
pub use transformer::{ast, bert_base, dinov2_large, dpt_large, graphormer, swin_t, vit_base};

use crate::Model;

/// The 13 training-set algorithms (paper Table I), in table order.
pub fn training_set() -> Vec<Model> {
    vec![
        resnet18(),
        vgg16(),
        densenet121(),
        mobilenet_v2(),
        peanut_rcnn(),
        resnet50(),
        mixtral_8x7b(),
        gpt2(),
        llama3_8b(),
        dpt_large(),
        dinov2_large(),
        swin_t(),
        whisper_v3_large(),
    ]
}

/// The 6 test-set algorithms (paper Input #6), in paper order.
pub fn test_set() -> Vec<Model> {
    vec![
        bert_base(),
        graphormer(),
        vit_base(),
        ast(),
        detr(),
        alexnet(),
    ]
}

/// Looks an algorithm up by name, across the training, test and
/// extended test sets.
pub fn by_name(name: &str) -> Option<Model> {
    training_set()
        .into_iter()
        .chain(test_set())
        .chain(extended_test_set())
        .chain([unet(), t5_small(), clip_vit_b32()])
        .find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_has_thirteen_algorithms() {
        assert_eq!(training_set().len(), 13);
    }

    #[test]
    fn test_set_has_six_algorithms() {
        assert_eq!(test_set().len(), 6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = training_set()
            .iter()
            .chain(test_set().iter())
            .map(|m| m.name().to_owned())
            .collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn by_name_finds_each_algorithm() {
        for m in training_set().iter().chain(test_set().iter()) {
            assert!(by_name(m.name()).is_some(), "{} not found", m.name());
        }
        assert!(by_name("NotAModel").is_none());
    }

    /// Paper Table I parameter counts, within a ±8 % modelling tolerance
    /// (we reconstruct architectures from their publications; the paper
    /// counted checkpoint tensors).
    #[test]
    fn table1_param_counts() {
        let expect_m: &[(&str, f64)] = &[
            ("Resnet18", 11.7),
            ("VGG16", 138.0),
            ("Densenet121", 7.98),
            ("Mobilenetv2", 3.5),
            ("PEANUT RCNN", 14.21),
            ("Resnet50", 25.5),
            ("Mixtral-8x7B", 46_700.0),
            ("GPT2", 137.0),
            ("Meta Llama-3-8B", 8_030.0),
            ("DPT-Large", 342.0),
            ("DINOv2-large", 304.0),
            ("SWIN-T", 29.0),
            ("Whisperv3-large", 1_540.0),
        ];
        for (name, want) in expect_m {
            let m = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            let got = m.param_count() as f64 / 1.0e6;
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.08,
                "{name}: expected {want} M params, got {got:.2} M ({:.1} % off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn every_model_has_positive_compute() {
        for m in training_set().iter().chain(test_set().iter()) {
            assert!(m.macs() > 0, "{} has no MACs", m.name());
            assert!(m.layer_count() > 3, "{} suspiciously small", m.name());
        }
    }
}
