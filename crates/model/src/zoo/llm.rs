//! Language and speech models: GPT-2, Meta-Llama-3-8B, Mixtral-8x7B,
//! Whisper-v3-large.
//!
//! GPT-2 and Whisper carry `Conv1d` nodes — the paper notes these "use
//! a 1D convolution module, differing from traditional architectures,
//! and are grouped separately" (each gets its own library subset).

use super::common::*;
use crate::layer::ActivationKind;
use crate::model::{Model, ModelBuilder, ModelClass};

const GELU: ActivationKind = ActivationKind::Gelu;

/// GPT-2 (Radford et al., 2019), 137 M parameters as reported on the
/// HuggingFace hub (124.4 M weights + the persistent causal-mask
/// buffers stored in the checkpoint).
///
/// HuggingFace GPT-2 implements every projection as a `Conv1D` module,
/// so the extraction sees CONV1D nodes, not LINEAR ones.
pub fn gpt2() -> Model {
    gpt2_with_tokens("GPT2", 1024)
}

/// GPT-2 generating one token (decode phase) — for the memory-wall
/// ablations.
pub fn gpt2_decode() -> Model {
    gpt2_with_tokens("GPT2 (decode)", 1)
}

fn gpt2_with_tokens(name: &str, seq: u32) -> Model {
    let mut b = ModelBuilder::new(name, ModelClass::Llm);
    let (d, ffn) = (768_u32, 3072_u32);
    for blk in 0..12 {
        let p = format!("h.{blk}");
        // Fused QKV projection: d -> 3d.
        conv1d(&mut b, &format!("{p}.attn.c_attn"), d, 3 * d, 1, 1, 0, seq);
        conv1d(&mut b, &format!("{p}.attn.c_proj"), d, d, 1, 1, 0, seq);
        conv1d(&mut b, &format!("{p}.mlp.c_fc"), d, ffn, 1, 1, 0, seq);
        act(
            &mut b,
            &format!("{p}.mlp.act"),
            GELU,
            u64::from(ffn) * u64::from(seq),
        );
        conv1d(&mut b, &format!("{p}.mlp.c_proj"), ffn, d, 1, 1, 0, seq);
    }
    // wte 50257x768 + wpe 1024x768 + layer norms + 12 causal-mask
    // buffers of 1024^2 (persisted in the checkpoint; HF counts them).
    b.extra_params(50_257 * 768 + 1024 * 768 + 40_000 + 12 * 1024 * 1024);
    b.build()
}

/// Meta-Llama-3-8B (AI@Meta, 2024), 8.03 B parameters.
///
/// 32 decoder blocks, d = 4096, gated MLP of width 14336 with SiLU,
/// grouped-query attention with 8 KV heads (1024-wide K/V projections).
/// Modelled at a 2048-token prefill.
pub fn llama3_8b() -> Model {
    llama3_8b_with_tokens("Meta Llama-3-8B", 2048)
}

/// Llama-3-8B generating one token (decode phase): every weight still
/// streams once, but only a single position's worth of MACs runs —
/// the memory-bound regime the memory-wall ablation quantifies.
pub fn llama3_8b_decode() -> Model {
    llama3_8b_with_tokens("Meta Llama-3-8B (decode)", 1)
}

fn llama3_8b_with_tokens(name: &str, tokens: u32) -> Model {
    let mut b = ModelBuilder::new(name, ModelClass::Llm);
    let blk = GatedBlock {
        d: 4096,
        ffn: 14336,
        tokens,
        kv: 1024,
    };
    for i in 0..32 {
        blk.emit_attention(&mut b, &format!("layers.{i}.self_attn"));
        blk.emit_mlp(&mut b, &format!("layers.{i}.mlp"));
    }
    linear(&mut b, "lm_head", 4096, 128_256, tokens);
    // Untied input embedding (128256 x 4096) + RMS norms.
    b.extra_params(128_256 * 4096 + 270_000);
    b.build()
}

/// Mixtral-8x7B (Jiang et al., 2024), 46.7 B parameters.
///
/// 32 decoder blocks with 8 SwiGLU experts each (all expert weights
/// exist on-die even though 2 are active per token — NRE and area care
/// about instantiated hardware, and the extraction sees every printed
/// expert module).
pub fn mixtral_8x7b() -> Model {
    mixtral_8x7b_with_tokens("Mixtral-8x7B", 2048)
}

/// Mixtral-8x7B generating one token (decode phase).
pub fn mixtral_8x7b_decode() -> Model {
    mixtral_8x7b_with_tokens("Mixtral-8x7B (decode)", 1)
}

fn mixtral_8x7b_with_tokens(name: &str, tokens: u32) -> Model {
    let mut b = ModelBuilder::new(name, ModelClass::MoeLlm);
    let blk = GatedBlock {
        d: 4096,
        ffn: 14336,
        tokens,
        kv: 1024,
    };
    for i in 0..32 {
        blk.emit_attention(&mut b, &format!("layers.{i}.self_attn"));
        // Router.
        linear(&mut b, &format!("layers.{i}.gate"), 4096, 8, tokens);
        for e in 0..8 {
            blk.emit_mlp(&mut b, &format!("layers.{i}.experts.{e}"));
        }
    }
    linear(&mut b, "lm_head", 4096, 32_000, tokens);
    b.extra_params(32_000 * 4096 + 270_000); // input embedding + norms
    b.build()
}

/// Whisper-large-v3 (Radford et al., 2022), 1.54 B parameters.
///
/// Two genuine `nn.Conv1d` layers front the encoder (128 mel bins →
/// 1280 channels over 3000 frames), followed by 32 encoder and 32
/// decoder blocks (d = 1280, FFN 5120, GELU).
pub fn whisper_v3_large() -> Model {
    let mut b = ModelBuilder::new("Whisperv3-large", ModelClass::Transformer);
    let (d, ffn) = (1280_u32, 5120_u32);
    let enc_tokens = 1500_u32;
    let dec_tokens = 224_u32;

    let l1 = conv1d(&mut b, "encoder.conv1", 128, d, 3, 1, 1, 3000);
    act(&mut b, "encoder.act1", GELU, u64::from(l1) * u64::from(d));
    let l2 = conv1d(&mut b, "encoder.conv2", d, d, 3, 2, 1, l1);
    act(&mut b, "encoder.act2", GELU, u64::from(l2) * u64::from(d));
    debug_assert_eq!(l2, enc_tokens);

    for i in 0..32 {
        EncoderBlock::standard(d, ffn, enc_tokens, GELU)
            .emit(&mut b, &format!("encoder.layers.{i}"));
    }
    for i in 0..32 {
        let p = format!("decoder.layers.{i}");
        // Self-attention + cross-attention + MLP.
        EncoderBlock::standard(d, ffn, dec_tokens, GELU).emit(&mut b, &p);
        linear(&mut b, &format!("{p}.encoder_attn.q"), d, d, dec_tokens);
        linear(&mut b, &format!("{p}.encoder_attn.k"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.encoder_attn.v"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.encoder_attn.out"), d, d, dec_tokens);
    }
    linear(&mut b, "proj_out", d, 51_866, dec_tokens);
    // Token + learned position embeddings + norms. proj_out is tied to
    // the token embedding, so only position tables and norms are extra.
    b.extra_params((1500 + 448) * 1280 + 330_000);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, OpClass};

    #[test]
    fn gpt2_params_near_137m() {
        let p = gpt2().param_count() as f64 / 1e6;
        assert!((130.0..141.0).contains(&p), "{p}");
    }

    #[test]
    fn gpt2_decode_keeps_weights_drops_work() {
        let prefill = gpt2();
        let decode = gpt2_decode();
        assert_eq!(prefill.param_count(), decode.param_count());
        assert!(decode.macs() * 500 < prefill.macs());
    }

    #[test]
    fn gpt2_uses_conv1d_not_linear() {
        let c = gpt2().op_class_counts();
        assert!(c.contains_key(&OpClass::Conv1d));
        assert!(!c.contains_key(&OpClass::Linear));
    }

    #[test]
    fn llama3_params_near_8b() {
        let p = llama3_8b().param_count() as f64 / 1e9;
        assert!((7.7..8.3).contains(&p), "{p}");
    }

    #[test]
    fn llama3_is_linear_silu_only() {
        let c = llama3_8b().op_class_counts();
        assert_eq!(c.len(), 2);
        assert!(c.contains_key(&OpClass::Linear));
        assert!(c.contains_key(&OpClass::Activation(ActivationKind::Silu)));
    }

    #[test]
    fn mixtral_params_near_46_7b() {
        let p = mixtral_8x7b().param_count() as f64 / 1e9;
        assert!((45.5..48.0).contains(&p), "{p}");
    }

    #[test]
    fn mixtral_has_eight_experts_per_block() {
        let m = mixtral_8x7b();
        let experts = m
            .layers()
            .iter()
            .filter(|l| l.name.starts_with("layers.0.experts.") && l.name.ends_with("gate_proj"))
            .count();
        assert_eq!(experts, 8);
    }

    #[test]
    fn whisper_params_near_1_54b() {
        let p = whisper_v3_large().param_count() as f64 / 1e9;
        assert!((1.48..1.62).contains(&p), "{p}");
    }

    #[test]
    fn whisper_mixes_conv1d_and_linear() {
        let c = whisper_v3_large().op_class_counts();
        assert_eq!(c[&OpClass::Conv1d], 2);
        assert!(c[&OpClass::Linear] > 100);
    }

    #[test]
    fn whisper_encoder_front_end_halves_frames() {
        let m = whisper_v3_large();
        match &m.layers()[2].kind {
            crate::LayerKind::Conv1d(c) => assert_eq!(c.output_length(), 1500),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gpt2_conv1d_edges_dominate() {
        let combos = gpt2().edge_combination_counts();
        let cc = combos[&(OpClass::Conv1d, OpClass::Conv1d)];
        assert!(cc >= 24, "CONV1D-CONV1D count {cc}");
    }
}
