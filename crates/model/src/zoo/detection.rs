//! Detection / navigation workloads: PEANUT-RCNN (training set) and
//! DETR (test set).

use super::common::*;
use crate::layer::{ActivationKind, LayerKind, Pooling, PoolingKind};
use crate::model::{Model, ModelBuilder, ModelClass};

const RELU: ActivationKind = ActivationKind::Relu;

/// PEANUT-RCNN (Zhai & Wang, 2022), 14.21 M parameters.
///
/// The detection component of the PEANUT target-prediction pipeline: a
/// torchvision-style R-CNN with a ResNet-18 + FPN backbone. Its
/// `LastLevelMaxPool` and `RoIAlign` modules make it the most
/// layer-diverse training algorithm — the paper notes the generic
/// configuration's area "was strongly influenced by the PEANUT-RCNN
/// algorithm, which has the most diverse set of layer types".
pub fn peanut_rcnn() -> Model {
    let mut b = ModelBuilder::new("PEANUT RCNN", ModelClass::Rcnn);

    // --- ResNet-18 backbone (no classifier head), 800x800 detection input.
    let mut fm = conv2d_act(
        &mut b,
        "backbone.body.conv1",
        3,
        64,
        7,
        2,
        3,
        (800, 800),
        1,
        RELU,
    );
    fm = pool2d(
        &mut b,
        "backbone.body.maxpool",
        PoolingKind::MaxPool,
        64,
        fm,
        3,
        2,
        1,
    );
    let mut in_ch = 64;
    let mut stage_fms = Vec::new();
    for (stage, &blocks) in [2_u32, 2, 2, 2].iter().enumerate() {
        let out_ch = 64 << stage;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let prefix = format!("backbone.body.layer{}.{blk}", stage + 1);
            if stride != 1 || in_ch != out_ch {
                conv2d(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    fm,
                    1,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                in_ch,
                out_ch,
                3,
                stride,
                1,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                out_ch,
                out_ch,
                3,
                1,
                1,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
        }
        stage_fms.push((out_ch, fm));
    }

    // --- FPN: lateral 1x1 + output 3x3 per pyramid level, then the
    // extra LastLevelMaxPool level.
    for (i, &(ch, sfm)) in stage_fms.iter().enumerate() {
        conv2d(
            &mut b,
            &format!("backbone.fpn.inner.{i}"),
            ch,
            256,
            1,
            1,
            0,
            sfm,
            1,
        );
        conv2d(
            &mut b,
            &format!("backbone.fpn.layer.{i}"),
            256,
            256,
            3,
            1,
            1,
            sfm,
            1,
        );
    }
    let (_, top_fm) = stage_fms[3];
    b.push(
        "backbone.fpn.extra_blocks",
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::LastLevelMaxPool,
            input_elements: u64::from(top_fm.0) * u64::from(top_fm.1) * 256,
            output_elements: u64::from(top_fm.0 / 2) * u64::from(top_fm.1 / 2) * 256,
        }),
    );

    // --- RPN head over the P4 level.
    let rpn_fm = stage_fms[2].1;
    conv2d_act(&mut b, "rpn.head.conv", 256, 256, 3, 1, 1, rpn_fm, 1, RELU);
    conv2d(&mut b, "rpn.head.cls_logits", 256, 3, 1, 1, 0, rpn_fm, 1);
    conv2d(&mut b, "rpn.head.bbox_pred", 256, 12, 1, 1, 0, rpn_fm, 1);

    // --- RoIAlign + lightweight conv box head (PEANUT keeps the head
    // small; a torchvision two-FC head would triple the budget).
    let rois = 100_u64;
    b.push(
        "roi_heads.box_roi_pool",
        LayerKind::Pooling(Pooling {
            kind: PoolingKind::RoiAlign,
            input_elements: u64::from(rpn_fm.0) * u64::from(rpn_fm.1) * 256,
            output_elements: rois * 7 * 7 * 256,
        }),
    );
    conv2d_act(
        &mut b,
        "roi_heads.box_head.conv",
        256,
        256,
        1,
        1,
        0,
        (7, 7),
        1,
        RELU,
    );
    linear(&mut b, "roi_heads.box_predictor.cls_score", 256, 91, 100);
    linear(&mut b, "roi_heads.box_predictor.bbox_pred", 256, 364, 100);
    b.extra_params(40_000); // batch norms
    b.build()
}

/// DETR (Carion et al., 2020) — test set, ~41 M parameters.
///
/// ResNet-50 backbone (Conv2d/ReLU/MaxPool; global pooling removed)
/// feeding a 256-wide encoder–decoder transformer whose FFNs use ReLU.
pub fn detr() -> Model {
    let mut b = ModelBuilder::new("DETR", ModelClass::Transformer);

    // --- ResNet-50 backbone at 800x800, no avgpool/fc.
    let mut fm = conv2d_act(
        &mut b,
        "backbone.conv1",
        3,
        64,
        7,
        2,
        3,
        (800, 800),
        1,
        RELU,
    );
    fm = pool2d(
        &mut b,
        "backbone.maxpool",
        PoolingKind::MaxPool,
        64,
        fm,
        3,
        2,
        1,
    );
    let mut in_ch = 64;
    for (stage, &blocks) in [3_u32, 4, 6, 3].iter().enumerate() {
        let mid = 64 << stage;
        let out_ch = mid * 4;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let prefix = format!("backbone.layer{}.{blk}", stage + 1);
            if stride != 1 || in_ch != out_ch {
                conv2d(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    fm,
                    1,
                );
            }
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv1"),
                in_ch,
                mid,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv2"),
                mid,
                mid,
                3,
                stride,
                1,
                fm,
                1,
                RELU,
            );
            fm = conv2d_act(
                &mut b,
                &format!("{prefix}.conv3"),
                mid,
                out_ch,
                1,
                1,
                0,
                fm,
                1,
                RELU,
            );
            in_ch = out_ch;
        }
    }

    // --- 1x1 projection into the transformer width.
    conv2d(&mut b, "input_proj", 2048, 256, 1, 1, 0, fm, 1);
    let enc_tokens = fm.0 * fm.1; // 25 x 25 at 800 input
    let dec_tokens = 100; // object queries
    let (d, ffn) = (256_u32, 2048_u32);

    for i in 0..6 {
        EncoderBlock::standard(d, ffn, enc_tokens, RELU)
            .emit(&mut b, &format!("transformer.encoder.layers.{i}"));
    }
    for i in 0..6 {
        let p = format!("transformer.decoder.layers.{i}");
        EncoderBlock::standard(d, ffn, dec_tokens, RELU).emit(&mut b, &p);
        // Cross-attention projections.
        linear(&mut b, &format!("{p}.multihead_attn.q"), d, d, dec_tokens);
        linear(&mut b, &format!("{p}.multihead_attn.k"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.multihead_attn.v"), d, d, enc_tokens);
        linear(&mut b, &format!("{p}.multihead_attn.out"), d, d, dec_tokens);
    }

    // --- Prediction heads.
    linear(&mut b, "class_embed", d, 92, dec_tokens);
    for i in 0..3 {
        linear(
            &mut b,
            &format!("bbox_embed.layers.{i}"),
            d,
            if i == 2 { 4 } else { d },
            dec_tokens,
        );
        if i < 2 {
            act(
                &mut b,
                &format!("bbox_embed.act.{i}"),
                RELU,
                u64::from(d) * u64::from(dec_tokens),
            );
        }
    }
    b.extra_params(180_000); // query embeddings, norms
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivationKind, OpClass, PoolingKind};

    #[test]
    fn peanut_params_near_14_21m() {
        let p = peanut_rcnn().param_count() as f64 / 1e6;
        assert!((13.4..15.1).contains(&p), "{p}");
    }

    #[test]
    fn peanut_has_the_most_diverse_pooling() {
        let c = peanut_rcnn().op_class_counts();
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::MaxPool)));
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::LastLevelMaxPool)));
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::RoiAlign)));
    }

    #[test]
    fn peanut_is_most_diverse_training_algorithm() {
        use crate::zoo::training_set;
        let peanut_kinds = peanut_rcnn().op_class_counts().len();
        for m in training_set() {
            assert!(
                m.op_class_counts().len() <= peanut_kinds,
                "{} more diverse than PEANUT",
                m.name()
            );
        }
    }

    #[test]
    fn detr_params_near_41m() {
        let p = detr().param_count() as f64 / 1e6;
        assert!((39.0..44.0).contains(&p), "{p}");
    }

    #[test]
    fn detr_inventory_matches_table5_groups() {
        // DETR must exercise exactly {Conv2d, Linear, ReLU, MaxPool}
        // for the utilization figures of Table V.
        let c = detr().op_class_counts();
        let classes: Vec<_> = c.keys().copied().collect();
        assert_eq!(
            classes,
            vec![
                OpClass::Conv2d,
                OpClass::Linear,
                OpClass::Activation(ActivationKind::Relu),
                OpClass::Pooling(PoolingKind::MaxPool),
            ]
        );
    }

    #[test]
    fn detr_ffn_uses_relu_not_gelu() {
        let c = detr().op_class_counts();
        assert!(!c.contains_key(&OpClass::Activation(ActivationKind::Gelu)));
    }
}
