//! Parser for PyTorch-style `print(model)` dumps — the ingestion path
//! of the paper's Step #TR1: "layer information of AI models is
//! extracted using the `print(model)` command … The main code reads
//! this layer information file, parses it, and extracts details for
//! each layer".
//!
//! A dump looks like:
//!
//! ```text
//! AlexNet(
//!   (features): Sequential(
//!     (0): Conv2d(3, 64, kernel_size=(11, 11), stride=(4, 4), padding=(2, 2))
//!     (1): ReLU(inplace=True)
//!     (2): MaxPool2d(kernel_size=3, stride=2, padding=0)
//!   )
//! )
//! ```
//!
//! `print(model)` does not carry feature-map sizes, so — as in the
//! paper's framework, which derives `IFM/OFM` during graph
//! construction — the parser propagates shapes from a caller-supplied
//! input description ([`ParseOptions`]). Module types outside the
//! considered set (BatchNorm, Dropout, LayerNorm, Embedding, …) are
//! skipped, mirroring the paper's "layer types considered".

use crate::layer::{
    Activation, ActivationKind, Conv1d, Conv2d, Flatten, LayerKind, Linear, Permute, Pooling,
    PoolingKind,
};
use crate::model::{Model, ModelBuilder, ModelClass};
use std::fmt;

/// How the parsed network is fed: image tensors or token sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputShape {
    /// `channels × height × width` image input.
    Image {
        /// Input channels.
        channels: u32,
        /// Input height.
        height: u32,
        /// Input width.
        width: u32,
    },
    /// Token-sequence input for transformer dumps.
    Sequence {
        /// Number of positions each `Linear` is applied to.
        tokens: u32,
        /// Embedding width entering the first layer.
        features: u32,
    },
}

/// Parser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// Input tensor description used to seed shape propagation.
    pub input: InputShape,
    /// Workload family recorded on the resulting [`Model`].
    pub class: ModelClass,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            input: InputShape::Image {
                channels: 3,
                height: 224,
                width: 224,
            },
            class: ModelClass::Cnn,
        }
    }
}

/// Error produced while parsing a `print(model)` dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseModelError {
    /// The dump contained no recognisable layers.
    Empty,
    /// A recognised module had a malformed argument list.
    BadArguments {
        /// 1-based line number.
        line: usize,
        /// Module type name.
        module: String,
        /// What went wrong.
        reason: String,
    },
    /// A `Linear` appeared before any shape information was available.
    UnknownShape {
        /// 1-based line number.
        line: usize,
        /// Module type name.
        module: String,
    },
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseModelError::Empty => write!(f, "dump contains no recognised layers"),
            ParseModelError::BadArguments {
                line,
                module,
                reason,
            } => write!(f, "line {line}: bad arguments for {module}: {reason}"),
            ParseModelError::UnknownShape { line, module } => {
                write!(f, "line {line}: cannot infer input shape for {module}")
            }
        }
    }
}

impl std::error::Error for ParseModelError {}

/// Running tensor shape during propagation.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Image { c: u32, h: u32, w: u32 },
    Seq { tokens: u32, features: u32 },
    Flat { features: u32 },
}

impl Shape {
    fn elements(&self) -> u64 {
        match *self {
            Shape::Image { c, h, w } => u64::from(c)
                .saturating_mul(u64::from(h))
                .saturating_mul(u64::from(w)),
            Shape::Seq { tokens, features } => {
                u64::from(tokens).saturating_mul(u64::from(features))
            }
            Shape::Flat { features } => u64::from(features),
        }
    }
}

/// One `(name): Type(args…)` line from the dump.
#[derive(Debug, Clone)]
struct ModuleLine {
    line_no: usize,
    path: String,
    ty: String,
    args: String,
}

/// Parses a `print(model)` dump into a [`Model`].
///
/// # Errors
///
/// Returns [`ParseModelError`] when the dump has no recognised layers,
/// when a recognised module's arguments cannot be parsed, or when a
/// layer needs shape information that is not yet available.
///
/// # Example
///
/// ```
/// use claire_model::parse::{parse_model, InputShape, ParseOptions};
/// # fn main() -> Result<(), claire_model::parse::ParseModelError> {
/// let dump = "\
/// Net(
///   (conv): Conv2d(3, 8, kernel_size=(3, 3), stride=(1, 1), padding=(1, 1))
///   (act): ReLU(inplace=True)
///   (fc): Linear(in_features=512, out_features=10, bias=True)
/// )";
/// let opts = ParseOptions {
///     input: InputShape::Image { channels: 3, height: 8, width: 8 },
///     ..ParseOptions::default()
/// };
/// let model = parse_model("Net", dump, opts)?;
/// assert_eq!(model.layer_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_model(name: &str, text: &str, opts: ParseOptions) -> Result<Model, ParseModelError> {
    let lines = lex(text);
    let mut b = ModelBuilder::new(name, opts.class);
    let mut shape = match opts.input {
        InputShape::Image {
            channels,
            height,
            width,
        } => Shape::Image {
            c: channels,
            h: height,
            w: width,
        },
        InputShape::Sequence { tokens, features } => Shape::Seq { tokens, features },
    };

    for m in &lines {
        if let Some(next) = emit(&mut b, m, shape)? {
            shape = next;
        }
    }

    if b.is_empty() {
        return Err(ParseModelError::Empty);
    }
    Ok(b.build())
}

/// Splits the dump into module lines, reconstructing dotted module
/// paths from the indentation-nested `(name): Type(` structure.
fn lex(text: &str) -> Vec<ModuleLine> {
    let mut out = Vec::new();
    // Stack of (indent, name) for the module path.
    let mut stack: Vec<(usize, String)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let indent = raw.len() - raw.trim_start().len();
        let line = raw.trim();
        if line.is_empty() || line == ")" {
            continue;
        }
        // Pop containers we have left.
        while let Some(&(ind, _)) = stack.last() {
            if indent <= ind {
                stack.pop();
            } else {
                break;
            }
        }

        let (name, rest) = match line.strip_prefix('(') {
            Some(r) => match r.split_once("): ") {
                Some((n, rest)) => (n.to_owned(), rest),
                None => continue,
            },
            // Top line like `AlexNet(`.
            None => (String::new(), line),
        };

        let Some(paren) = rest.find('(') else {
            continue;
        };
        let ty = rest[..paren].trim().to_owned();
        let args_part = rest[paren + 1..].trim_end();
        // A leaf line closes its own argument list; a container opens one.
        let opens_container = !args_part.ends_with(')');
        let args = args_part.strip_suffix(')').unwrap_or(args_part).to_owned();

        let mut path: Vec<&str> = stack
            .iter()
            .map(|(_, n)| n.as_str())
            .filter(|n| !n.is_empty())
            .collect();
        if !name.is_empty() {
            path.push(&name);
        }
        let path = path.join(".");

        if opens_container {
            stack.push((indent, name));
        } else {
            out.push(ModuleLine {
                line_no: i + 1,
                path,
                ty,
                args,
            });
        }
    }
    out
}

/// Finds `key=value` in an argument string; handles tuple values.
fn kw(args: &str, key: &str) -> Option<String> {
    let pat = format!("{key}=");
    let start = args.find(&pat)? + pat.len();
    let rest = &args[start..];
    if let Some(inner) = rest.strip_prefix('(') {
        let end = inner.find(')')?;
        Some(format!("({})", &inner[..end]))
    } else {
        let end = rest.find(',').unwrap_or(rest.len());
        Some(rest[..end].trim().to_owned())
    }
}

/// Parses `v` or `(v, w)` into a pair (a scalar broadcasts).
fn pair(s: &str) -> Option<(u32, u32)> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('(').and_then(|x| x.strip_suffix(')')) {
        let mut it = inner.split(',').map(|v| v.trim().parse::<u32>());
        let a = it.next()?.ok()?;
        let b = match it.next() {
            Some(v) => v.ok()?,
            None => a,
        };
        Some((a, b))
    } else {
        let v = s.parse().ok()?;
        Some((v, v))
    }
}

fn bad(m: &ModuleLine, reason: &str) -> ParseModelError {
    ParseModelError::BadArguments {
        line: m.line_no,
        module: m.ty.clone(),
        reason: reason.to_owned(),
    }
}

/// Emits the layer for one module line; returns the new shape (None =
/// module skipped).
fn emit(
    b: &mut ModelBuilder,
    m: &ModuleLine,
    shape: Shape,
) -> Result<Option<Shape>, ParseModelError> {
    let positional: Vec<&str> = m
        .args
        .split(',')
        .map(str::trim)
        .take_while(|t| !t.contains('='))
        .collect();

    match m.ty.as_str() {
        "Conv2d" => {
            let ic: u32 = positional
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(m, "missing in_channels"))?;
            let oc: u32 = positional
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(m, "missing out_channels"))?;
            let k = kw(&m.args, "kernel_size")
                .and_then(|s| pair(&s))
                .ok_or_else(|| bad(m, "missing kernel_size"))?;
            let s = kw(&m.args, "stride")
                .and_then(|x| pair(&x))
                .unwrap_or((1, 1));
            let p = kw(&m.args, "padding")
                .and_then(|x| pair(&x))
                .unwrap_or((0, 0));
            let groups = kw(&m.args, "groups")
                .and_then(|x| x.parse().ok())
                .unwrap_or(1);
            if s.0 == 0 || s.1 == 0 {
                return Err(bad(m, "zero stride"));
            }
            if groups == 0 {
                return Err(bad(m, "zero groups"));
            }
            let (h, w) = match shape {
                Shape::Image { h, w, .. } => (h, w),
                _ => {
                    return Err(ParseModelError::UnknownShape {
                        line: m.line_no,
                        module: m.ty.clone(),
                    })
                }
            };
            let conv = Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: k,
                stride: s,
                padding: p,
                ifm: (h, w),
                groups,
            };
            let (oh, ow) = conv.ofm();
            b.push(&m.path, LayerKind::Conv2d(conv));
            Ok(Some(Shape::Image {
                c: oc,
                h: oh,
                w: ow,
            }))
        }
        "Conv1d" | "Conv1D" => {
            let (ic, oc): (u32, u32) = match (positional.first(), positional.get(1)) {
                (Some(a), Some(b_)) => (
                    a.parse().map_err(|_| bad(m, "bad in_channels"))?,
                    b_.parse().map_err(|_| bad(m, "bad out_channels"))?,
                ),
                // HuggingFace `Conv1D(nf=2304, nx=768)` style.
                _ => {
                    let nf = kw(&m.args, "nf").and_then(|x| x.parse().ok());
                    let nx = kw(&m.args, "nx").and_then(|x| x.parse().ok());
                    match (nx, nf) {
                        (Some(nx), Some(nf)) => (nx, nf),
                        _ => return Err(bad(m, "missing channel arguments")),
                    }
                }
            };
            let k = kw(&m.args, "kernel_size")
                .and_then(|x| pair(&x))
                .map(|(a, _)| a)
                .unwrap_or(1);
            let s = kw(&m.args, "stride")
                .and_then(|x| pair(&x))
                .map(|(a, _)| a)
                .unwrap_or(1);
            let p = kw(&m.args, "padding")
                .and_then(|x| pair(&x))
                .map(|(a, _)| a)
                .unwrap_or(0);
            if s == 0 {
                return Err(bad(m, "zero stride"));
            }
            let length = match shape {
                Shape::Seq { tokens, .. } => tokens,
                Shape::Image { w, .. } => w,
                Shape::Flat { .. } => {
                    return Err(ParseModelError::UnknownShape {
                        line: m.line_no,
                        module: m.ty.clone(),
                    })
                }
            };
            let conv = Conv1d {
                in_channels: ic,
                out_channels: oc,
                kernel: k,
                stride: s,
                padding: p,
                length,
            };
            let out_len = conv.output_length();
            b.push(&m.path, LayerKind::Conv1d(conv));
            Ok(Some(Shape::Seq {
                tokens: out_len,
                features: oc,
            }))
        }
        "Linear" => {
            let inf = kw(&m.args, "in_features")
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(m, "missing in_features"))?;
            let outf = kw(&m.args, "out_features")
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad(m, "missing out_features"))?;
            let tokens = match shape {
                Shape::Seq { tokens, .. } => tokens,
                _ => 1,
            };
            b.push(
                &m.path,
                LayerKind::Linear(Linear {
                    in_features: inf,
                    out_features: outf,
                    tokens,
                }),
            );
            Ok(Some(match shape {
                Shape::Seq { tokens, .. } => Shape::Seq {
                    tokens,
                    features: outf,
                },
                _ => Shape::Flat { features: outf },
            }))
        }
        "ReLU" | "ReLU6" | "GELU" | "SiLU" | "Tanh" | "NewGELUActivation" | "GELUActivation"
        | "SiLUActivation" => {
            let kind = match m.ty.as_str() {
                "ReLU" => ActivationKind::Relu,
                "ReLU6" => ActivationKind::Relu6,
                "SiLU" | "SiLUActivation" => ActivationKind::Silu,
                "Tanh" => ActivationKind::Tanh,
                _ => ActivationKind::Gelu,
            };
            b.push(
                &m.path,
                LayerKind::Activation(Activation {
                    kind,
                    elements: shape.elements(),
                }),
            );
            Ok(Some(shape))
        }
        "MaxPool2d" | "AvgPool2d" => {
            let kind = if m.ty == "MaxPool2d" {
                PoolingKind::MaxPool
            } else {
                PoolingKind::AvgPool
            };
            let k = kw(&m.args, "kernel_size")
                .and_then(|x| pair(&x))
                .ok_or_else(|| bad(m, "missing kernel_size"))?;
            let s = kw(&m.args, "stride").and_then(|x| pair(&x)).unwrap_or(k);
            let p = kw(&m.args, "padding")
                .and_then(|x| pair(&x))
                .unwrap_or((0, 0));
            if s.0 == 0 || s.1 == 0 {
                return Err(bad(m, "zero stride"));
            }
            let Shape::Image { c, h, w } = shape else {
                return Err(ParseModelError::UnknownShape {
                    line: m.line_no,
                    module: m.ty.clone(),
                });
            };
            let window = |i: u32, k: u32, s: u32, p: u32| {
                let span = (u64::from(i) + 2 * u64::from(p)).saturating_sub(u64::from(k));
                u32::try_from(span / u64::from(s) + 1).unwrap_or(u32::MAX)
            };
            let oh = window(h, k.0, s.0, p.0);
            let ow = window(w, k.1, s.1, p.1);
            let volume = |h: u32, w: u32| {
                u64::from(c)
                    .saturating_mul(u64::from(h))
                    .saturating_mul(u64::from(w))
            };
            b.push(
                &m.path,
                LayerKind::Pooling(Pooling {
                    kind,
                    input_elements: volume(h, w),
                    output_elements: volume(oh, ow),
                }),
            );
            Ok(Some(Shape::Image { c, h: oh, w: ow }))
        }
        "AdaptiveAvgPool2d" => {
            let out = kw(&m.args, "output_size")
                .and_then(|x| pair(&x))
                .ok_or_else(|| bad(m, "missing output_size"))?;
            let Shape::Image { c, h, w } = shape else {
                return Err(ParseModelError::UnknownShape {
                    line: m.line_no,
                    module: m.ty.clone(),
                });
            };
            b.push(
                &m.path,
                LayerKind::Pooling(Pooling {
                    kind: PoolingKind::AdaptiveAvgPool,
                    input_elements: u64::from(c)
                        .saturating_mul(u64::from(h))
                        .saturating_mul(u64::from(w)),
                    output_elements: u64::from(c)
                        .saturating_mul(u64::from(out.0))
                        .saturating_mul(u64::from(out.1)),
                }),
            );
            Ok(Some(Shape::Image {
                c,
                h: out.0,
                w: out.1,
            }))
        }
        "LastLevelMaxPool" | "MultiScaleRoIAlign" | "RoIAlign" => {
            let kind = if m.ty == "LastLevelMaxPool" {
                PoolingKind::LastLevelMaxPool
            } else {
                PoolingKind::RoiAlign
            };
            let out = shape.elements() / 4;
            b.push(
                &m.path,
                LayerKind::Pooling(Pooling {
                    kind,
                    input_elements: shape.elements(),
                    output_elements: out.max(1),
                }),
            );
            Ok(Some(shape))
        }
        "Flatten" => {
            b.push(
                &m.path,
                LayerKind::Flatten(Flatten {
                    elements: shape.elements(),
                }),
            );
            let features = u32::try_from(shape.elements()).unwrap_or(u32::MAX);
            Ok(Some(Shape::Flat { features }))
        }
        "Permute" => {
            b.push(
                &m.path,
                LayerKind::Permute(Permute {
                    elements: shape.elements(),
                }),
            );
            Ok(Some(shape))
        }
        // Everything else (BatchNorm2d, LayerNorm, Dropout, Embedding,
        // Identity, Softmax, …) is outside the considered layer types.
        _ => Ok(None),
    }
}

/// Renders a [`Model`] back into `print(model)`-style text, so that
/// library users can exchange the same layer-information files the
/// paper's flow consumes.
pub fn to_torch_print(model: &Model) -> String {
    let mut s = format!("{}(\n", model.name().replace([' ', '-'], ""));
    for l in model.layers() {
        let body = match &l.kind {
            LayerKind::Conv2d(c) => format!(
                "Conv2d({}, {}, kernel_size=({}, {}), stride=({}, {}), padding=({}, {}), groups={})",
                c.in_channels,
                c.out_channels,
                c.kernel.0,
                c.kernel.1,
                c.stride.0,
                c.stride.1,
                c.padding.0,
                c.padding.1,
                c.groups
            ),
            LayerKind::Conv1d(c) => format!(
                "Conv1d({}, {}, kernel_size=({},), stride=({},), padding=({},))",
                c.in_channels, c.out_channels, c.kernel, c.stride, c.padding
            ),
            LayerKind::Linear(l) => format!(
                "Linear(in_features={}, out_features={}, bias=True)",
                l.in_features, l.out_features
            ),
            LayerKind::Activation(a) => match a.kind {
                ActivationKind::Relu => "ReLU(inplace=True)".to_owned(),
                ActivationKind::Relu6 => "ReLU6(inplace=True)".to_owned(),
                ActivationKind::Gelu => "GELU(approximate='none')".to_owned(),
                ActivationKind::Silu => "SiLU(inplace=True)".to_owned(),
                ActivationKind::Tanh => "Tanh()".to_owned(),
            },
            LayerKind::Pooling(p) => match p.kind {
                PoolingKind::MaxPool => "MaxPool2d(kernel_size=3, stride=2, padding=1)".to_owned(),
                PoolingKind::AvgPool => "AvgPool2d(kernel_size=2, stride=2)".to_owned(),
                PoolingKind::AdaptiveAvgPool => {
                    "AdaptiveAvgPool2d(output_size=(1, 1))".to_owned()
                }
                PoolingKind::LastLevelMaxPool => "LastLevelMaxPool()".to_owned(),
                PoolingKind::RoiAlign => {
                    "MultiScaleRoIAlign(output_size=(7, 7), sampling_ratio=2)".to_owned()
                }
            },
            LayerKind::Flatten(_) => "Flatten(start_dim=1, end_dim=-1)".to_owned(),
            LayerKind::Permute(_) => "Permute()".to_owned(),
        };
        s.push_str(&format!("  ({}): {}\n", l.name, body));
    }
    s.push_str(")\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpClass, PoolingKind};

    const ALEXNET_HEAD: &str = "\
AlexNet(
  (features): Sequential(
    (0): Conv2d(3, 64, kernel_size=(11, 11), stride=(4, 4), padding=(2, 2))
    (1): ReLU(inplace=True)
    (2): MaxPool2d(kernel_size=3, stride=2, padding=0, dilation=1, ceil_mode=False)
  )
  (avgpool): AdaptiveAvgPool2d(output_size=(6, 6))
  (classifier): Sequential(
    (0): Dropout(p=0.5, inplace=False)
    (1): Linear(in_features=9216, out_features=4096, bias=True)
    (2): ReLU(inplace=True)
  )
)";

    #[test]
    fn parses_alexnet_prefix() {
        let m = parse_model("Alexnet", ALEXNET_HEAD, ParseOptions::default()).unwrap();
        // Dropout skipped; 6 recognised layers.
        assert_eq!(m.layer_count(), 6);
        assert_eq!(m.layers()[0].name, "features.0");
        assert_eq!(m.layers()[3].name, "avgpool");
        assert_eq!(m.layers()[4].name, "classifier.1");
    }

    #[test]
    fn shape_propagation_through_conv_and_pool() {
        let m = parse_model("Alexnet", ALEXNET_HEAD, ParseOptions::default()).unwrap();
        match &m.layers()[2].kind {
            LayerKind::Pooling(p) => {
                // 224 -> conv(11,4,2) -> 55 -> pool(3,2) -> 27
                assert_eq!(p.input_elements, 55 * 55 * 64);
                assert_eq!(p.output_elements, 27 * 27 * 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_modules_are_skipped() {
        let dump = "\
Net(
  (bn): BatchNorm2d(64, eps=1e-05)
  (fc): Linear(in_features=64, out_features=10, bias=True)
)";
        let m = parse_model("Net", dump, ParseOptions::default()).unwrap();
        assert_eq!(m.layer_count(), 1);
    }

    #[test]
    fn empty_dump_is_an_error() {
        let err = parse_model("Net", "Net(\n)", ParseOptions::default()).unwrap_err();
        assert_eq!(err, ParseModelError::Empty);
        assert!(err.to_string().contains("no recognised layers"));
    }

    #[test]
    fn bad_conv_arguments_error_carries_line() {
        let dump = "Net(\n  (c): Conv2d(3, 64)\n)";
        let err = parse_model("Net", dump, ParseOptions::default()).unwrap_err();
        match err {
            ParseModelError::BadArguments { line, module, .. } => {
                assert_eq!(line, 2);
                assert_eq!(module, "Conv2d");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn hf_conv1d_nf_nx_form() {
        let dump = "\
GPT2Model(
  (c_attn): Conv1D(nf=2304, nx=768)
  (act): NewGELUActivation()
)";
        let opts = ParseOptions {
            input: InputShape::Sequence {
                tokens: 1024,
                features: 768,
            },
            class: ModelClass::Llm,
        };
        let m = parse_model("GPT2", dump, opts).unwrap();
        assert_eq!(m.op_class_counts()[&OpClass::Conv1d], 1);
        match &m.layers()[0].kind {
            LayerKind::Conv1d(c) => {
                assert_eq!(c.in_channels, 768);
                assert_eq!(c.out_channels, 2304);
                assert_eq!(c.length, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_linears_carry_tokens() {
        let dump = "\
Enc(
  (q): Linear(in_features=768, out_features=768, bias=True)
)";
        let opts = ParseOptions {
            input: InputShape::Sequence {
                tokens: 128,
                features: 768,
            },
            class: ModelClass::Transformer,
        };
        let m = parse_model("Enc", dump, opts).unwrap();
        assert_eq!(m.macs(), 768 * 768 * 128);
    }

    #[test]
    fn roialign_and_lastlevel_maxpool_recognised() {
        let dump = "\
Rcnn(
  (extra): LastLevelMaxPool()
  (pool): MultiScaleRoIAlign(featmap_names=['0'], output_size=7, sampling_ratio=2)
)";
        let m = parse_model("Rcnn", dump, ParseOptions::default()).unwrap();
        let c = m.op_class_counts();
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::LastLevelMaxPool)));
        assert!(c.contains_key(&OpClass::Pooling(PoolingKind::RoiAlign)));
    }

    #[test]
    fn zoo_round_trips_through_printer_and_parser() {
        // Render AlexNet to text, parse it back, and compare op-class
        // inventories (exact layer equality is not expected: the
        // printer canonicalises pooling arguments).
        let original = crate::zoo::alexnet();
        let text = to_torch_print(&original);
        let parsed = parse_model("Alexnet", &text, ParseOptions::default()).unwrap();
        assert_eq!(parsed.layer_count(), original.layer_count());
        assert_eq!(
            parsed.op_class_counts().keys().collect::<Vec<_>>(),
            original.op_class_counts().keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn flatten_switches_to_flat_shape() {
        let dump = "\
Net(
  (conv): Conv2d(3, 4, kernel_size=(3, 3), stride=(1, 1), padding=(1, 1))
  (flat): Flatten(start_dim=1, end_dim=-1)
  (fc): Linear(in_features=1024, out_features=10, bias=True)
)";
        let opts = ParseOptions {
            input: InputShape::Image {
                channels: 3,
                height: 16,
                width: 16,
            },
            ..ParseOptions::default()
        };
        let m = parse_model("Net", dump, opts).unwrap();
        match &m.layers()[1].kind {
            LayerKind::Flatten(f) => assert_eq!(f.elements, 4 * 16 * 16),
            other => panic!("unexpected {other:?}"),
        }
    }
}
