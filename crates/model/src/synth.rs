//! Seeded synthetic workload generation — for DSE stress testing,
//! scaling benchmarks, and fuzzing beyond the 24 built-in algorithms.
//!
//! Generators are fully deterministic in the seed and always produce
//! shape-consistent models whose layer classes stay within the
//! framework's supported set.

use crate::layer::{ActivationKind, PoolingKind};
use crate::model::{Model, ModelBuilder, ModelClass};
use crate::zoo::common::{
    act, adaptive_avg_pool, conv1d, conv2d_act, linear, pool2d, EncoderBlock,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload family to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Strided convolutional stack + classifier head.
    Cnn,
    /// Encoder transformer (Linear/GELU).
    Transformer,
    /// Conv1d front-end + encoder (speech-style).
    Audio,
}

/// Generates one synthetic model. Deterministic in `(seed, family)`.
///
/// # Example
///
/// ```
/// use claire_model::synth::{random_model, Family};
///
/// let a = random_model(7, Family::Cnn);
/// let b = random_model(7, Family::Cnn);
/// assert_eq!(a, b); // reproducible
/// assert!(a.macs() > 0);
/// ```
pub fn random_model(seed: u64, family: Family) -> Model {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434c_4149_5245_0001);
    match family {
        Family::Cnn => random_cnn(&mut rng, seed),
        Family::Transformer => random_transformer(&mut rng, seed),
        Family::Audio => random_audio(&mut rng, seed),
    }
}

/// Generates `n` models cycling through the families. Deterministic in
/// `seed`.
pub fn random_suite(seed: u64, n: usize) -> Vec<Model> {
    (0..n)
        .map(|i| {
            let family = match i % 3 {
                0 => Family::Cnn,
                1 => Family::Transformer,
                _ => Family::Audio,
            };
            random_model(seed.wrapping_add(i as u64), family)
        })
        .collect()
}

fn random_cnn(rng: &mut StdRng, seed: u64) -> Model {
    let mut b = ModelBuilder::new(format!("synth-cnn-{seed}"), ModelClass::Cnn);
    let stages = rng.gen_range(2..6);
    let act_kind = if rng.gen_bool(0.7) {
        ActivationKind::Relu
    } else {
        ActivationKind::Relu6
    };
    let mut fm = (224_u32, 224_u32);
    let mut ch = 3_u32;
    let mut out_ch = 1_u32 << rng.gen_range(4_u32..7); // 16..64
    fm = conv2d_act(&mut b, "stem", ch, out_ch, 7, 2, 3, fm, 1, act_kind);
    ch = out_ch;
    for stage in 0..stages {
        let blocks = rng.gen_range(1..4);
        out_ch = (ch * 2).min(512);
        for blk in 0..blocks {
            let stride = if blk == 0 && fm.0 > 14 { 2 } else { 1 };
            fm = conv2d_act(
                &mut b,
                &format!("s{stage}.b{blk}"),
                ch,
                out_ch,
                3,
                stride,
                1,
                fm,
                1,
                act_kind,
            );
            ch = out_ch;
        }
        if rng.gen_bool(0.5) && fm.0 >= 4 {
            fm = pool2d(
                &mut b,
                &format!("s{stage}.pool"),
                PoolingKind::MaxPool,
                ch,
                fm,
                2,
                2,
                0,
            );
        }
    }
    adaptive_avg_pool(&mut b, "avgpool", ch, fm, 1);
    linear(&mut b, "fc", ch, rng.gen_range(10..1001), 1);
    b.build()
}

fn random_transformer(rng: &mut StdRng, seed: u64) -> Model {
    let mut b = ModelBuilder::new(format!("synth-xf-{seed}"), ModelClass::Transformer);
    let d = 64 * rng.gen_range(2_u32..17); // 128..1024
    let depth = rng.gen_range(2..25);
    let tokens = rng.gen_range(16..1025);
    let kind = if rng.gen_bool(0.75) {
        ActivationKind::Gelu
    } else {
        ActivationKind::Silu
    };
    if rng.gen_bool(0.5) {
        // Patch-embedding front end.
        conv2d_act(&mut b, "patch", 3, d, 16, 16, 0, (224, 224), 1, kind);
    }
    for blk in 0..depth {
        EncoderBlock::standard(d, 4 * d, tokens, kind).emit(&mut b, &format!("blocks.{blk}"));
    }
    linear(&mut b, "head", d, rng.gen_range(2..50_000), 1);
    b.build()
}

fn random_audio(rng: &mut StdRng, seed: u64) -> Model {
    let mut b = ModelBuilder::new(format!("synth-audio-{seed}"), ModelClass::Transformer);
    let channels = 64 * rng.gen_range(1_u32..9);
    let mut len = rng.gen_range(1_000..8_001);
    let convs = rng.gen_range(2..6);
    let mut in_ch = rng.gen_range(1..129);
    for i in 0..convs {
        let stride = rng.gen_range(1..4);
        len = conv1d(
            &mut b,
            &format!("fe.{i}"),
            in_ch,
            channels,
            3,
            stride,
            1,
            len,
        );
        act(
            &mut b,
            &format!("fe.{i}.act"),
            ActivationKind::Gelu,
            u64::from(len) * u64::from(channels),
        );
        in_ch = channels;
        if len < 8 {
            break;
        }
    }
    let depth = rng.gen_range(2..13);
    for blk in 0..depth {
        EncoderBlock::standard(channels, 4 * channels, len.max(1), ActivationKind::Gelu)
            .emit(&mut b, &format!("enc.{blk}"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    #[test]
    fn deterministic_per_seed() {
        for family in [Family::Cnn, Family::Transformer, Family::Audio] {
            assert_eq!(random_model(42, family), random_model(42, family));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_model(1, Family::Cnn);
        let b = random_model(2, Family::Cnn);
        assert_ne!(a, b);
    }

    #[test]
    fn families_have_expected_signatures() {
        let cnn = random_model(5, Family::Cnn);
        assert!(cnn.op_class_counts().contains_key(&OpClass::Conv2d));
        let audio = random_model(5, Family::Audio);
        assert!(audio.op_class_counts().contains_key(&OpClass::Conv1d));
        let xf = random_model(5, Family::Transformer);
        assert!(xf.op_class_counts().contains_key(&OpClass::Linear));
    }

    #[test]
    fn suite_is_deterministic_and_sized() {
        let s1 = random_suite(9, 12);
        let s2 = random_suite(9, 12);
        assert_eq!(s1.len(), 12);
        assert_eq!(s1, s2);
    }

    #[test]
    fn synthetic_models_are_well_formed() {
        for m in random_suite(123, 30) {
            assert!(m.macs() > 0, "{}", m.name());
            assert!(m.layer_count() >= 3, "{}", m.name());
            for l in m.layers() {
                assert!(l.output_elements() > 0, "{}: {}", m.name(), l.name);
            }
        }
    }
}
