//! Layer metadata types — the paper's Step #TR1 extraction schema.
//!
//! Each layer record carries exactly the fields the CLAIRE parser
//! extracts from `print(model)` dumps: layer type, input size
//! (`IFM_x`, `IFM_y`), output size (`OFM_x`, `OFM_y`), input/output
//! channels (`N_IFM`, `N_OFM`), kernel size (`K_x`, `K_y`), stride and
//! padding.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation function kinds characterized in the CLAIRE hardware
/// building-block library (paper Input #2 and Table II).
///
/// `Tanh` is listed by the paper as its own layer type ("Conv2d, Linear,
/// Tanh, activation units, and pooling units"); the hardware tanh block
/// is derived from a stochastic-computing implementation and also serves
/// as the core of the GELU unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// ReLU clamped at 6 (MobileNetV2).
    Relu6,
    /// Gaussian error linear unit (Transformers).
    Gelu,
    /// Sigmoid linear unit / swish (LLaMA, Mixtral).
    Silu,
    /// Hyperbolic tangent (BERT pooler; characterized separately in the
    /// paper's Input #2).
    Tanh,
}

impl ActivationKind {
    /// All activation kinds, in a stable order.
    pub const ALL: [ActivationKind; 5] = [
        ActivationKind::Relu,
        ActivationKind::Relu6,
        ActivationKind::Gelu,
        ActivationKind::Silu,
        ActivationKind::Tanh,
    ];

    /// The upper-case token used in the paper's Table II (e.g. `RELU6`).
    pub fn token(self) -> &'static str {
        match self {
            ActivationKind::Relu => "RELU",
            ActivationKind::Relu6 => "RELU6",
            ActivationKind::Gelu => "GELU",
            ActivationKind::Silu => "SILU",
            ActivationKind::Tanh => "TANH",
        }
    }
}

impl fmt::Display for ActivationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Pooling unit kinds characterized in the library (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PoolingKind {
    /// Sliding-window max pooling.
    MaxPool,
    /// Sliding-window average pooling.
    AvgPool,
    /// Output-size-driven average pooling (`nn.AdaptiveAvgPool2d`).
    AdaptiveAvgPool,
    /// The extra max-pool level appended to torchvision FPNs
    /// (`LastLevelMaxPool`), used by PEANUT-RCNN.
    LastLevelMaxPool,
    /// Region-of-interest align (detection heads).
    RoiAlign,
}

impl PoolingKind {
    /// All pooling kinds, in a stable order.
    pub const ALL: [PoolingKind; 5] = [
        PoolingKind::MaxPool,
        PoolingKind::AvgPool,
        PoolingKind::AdaptiveAvgPool,
        PoolingKind::LastLevelMaxPool,
        PoolingKind::RoiAlign,
    ];

    /// The upper-case token used in the paper's Table II.
    pub fn token(self) -> &'static str {
        match self {
            PoolingKind::MaxPool => "MAXPOOL",
            PoolingKind::AvgPool => "AVGPOOL",
            PoolingKind::AdaptiveAvgPool => "ADAPTIVEAVGPOOL",
            PoolingKind::LastLevelMaxPool => "LASTLEVELMAXPOOL",
            PoolingKind::RoiAlign => "ROIALIGN",
        }
    }
}

impl fmt::Display for PoolingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A 2-D convolution layer (`nn.Conv2d`), executed on a weight-stationary
/// systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels (`N_IFM`).
    pub in_channels: u32,
    /// Output channels (`N_OFM`).
    pub out_channels: u32,
    /// Kernel size (`K_x`, `K_y`).
    pub kernel: (u32, u32),
    /// Stride (`Str`).
    pub stride: (u32, u32),
    /// Padding (`Pad`).
    pub padding: (u32, u32),
    /// Input feature-map size (`IFM_x`, `IFM_y`).
    pub ifm: (u32, u32),
    /// Grouped-convolution factor (1 = dense, `in_channels` = depthwise).
    pub groups: u32,
}

impl Conv2d {
    /// Output feature-map size (`OFM_x`, `OFM_y`) under the usual
    /// floor-division convolution arithmetic.
    ///
    /// Total over all field values (degenerate strides are treated as
    /// 1, extreme sizes saturate) so that parsed-then-mutated layer
    /// records can never divide by zero or overflow.
    pub fn ofm(&self) -> (u32, u32) {
        let o = |i: u32, k: u32, s: u32, p: u32| {
            let span = (u64::from(i) + 2 * u64::from(p)).saturating_sub(u64::from(k));
            u32::try_from(span / u64::from(s.max(1)) + 1).unwrap_or(u32::MAX)
        };
        (
            o(self.ifm.0, self.kernel.0, self.stride.0, self.padding.0),
            o(self.ifm.1, self.kernel.1, self.stride.1, self.padding.1),
        )
    }

    /// Trainable parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        let w = u64::from(self.out_channels)
            .saturating_mul(u64::from(self.in_channels / self.groups.max(1)))
            .saturating_mul(u64::from(self.kernel.0))
            .saturating_mul(u64::from(self.kernel.1));
        w.saturating_add(u64::from(self.out_channels))
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        let (ox, oy) = self.ofm();
        u64::from(ox)
            .saturating_mul(u64::from(oy))
            .saturating_mul(u64::from(self.out_channels))
            .saturating_mul(u64::from(self.in_channels / self.groups.max(1)))
            .saturating_mul(u64::from(self.kernel.0))
            .saturating_mul(u64::from(self.kernel.1))
    }

    /// Number of output activations produced.
    pub fn output_elements(&self) -> u64 {
        let (ox, oy) = self.ofm();
        u64::from(ox)
            .saturating_mul(u64::from(oy))
            .saturating_mul(u64::from(self.out_channels))
    }
}

/// A 1-D convolution layer (`nn.Conv1d`, or the HuggingFace `Conv1D`
/// module used throughout GPT-2 and in the Whisper encoder front-end).
///
/// The paper singles these out: "new models, such as GPT2 and Whisper,
/// use a 1D convolution module, differing from traditional
/// architectures, and are grouped separately".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv1d {
    /// Input channels.
    pub in_channels: u32,
    /// Output channels.
    pub out_channels: u32,
    /// Kernel length.
    pub kernel: u32,
    /// Stride.
    pub stride: u32,
    /// Padding.
    pub padding: u32,
    /// Input sequence length.
    pub length: u32,
}

impl Conv1d {
    /// Output sequence length (total: degenerate strides count as 1,
    /// extreme sizes saturate).
    pub fn output_length(&self) -> u32 {
        let span = (u64::from(self.length) + 2 * u64::from(self.padding))
            .saturating_sub(u64::from(self.kernel));
        u32::try_from(span / u64::from(self.stride.max(1)) + 1).unwrap_or(u32::MAX)
    }

    /// Trainable parameter count.
    pub fn params(&self) -> u64 {
        u64::from(self.out_channels)
            .saturating_mul(u64::from(self.in_channels))
            .saturating_mul(u64::from(self.kernel))
            .saturating_add(u64::from(self.out_channels))
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        u64::from(self.output_length())
            .saturating_mul(u64::from(self.out_channels))
            .saturating_mul(u64::from(self.in_channels))
            .saturating_mul(u64::from(self.kernel))
    }

    /// Number of output activations produced.
    pub fn output_elements(&self) -> u64 {
        u64::from(self.output_length()).saturating_mul(u64::from(self.out_channels))
    }
}

/// A fully connected layer (`nn.Linear`), executed on the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Linear {
    /// Input features.
    pub in_features: u32,
    /// Output features.
    pub out_features: u32,
    /// Number of positions the layer is applied to (sequence length ×
    /// batch for transformers, 1 for CNN classifier heads).
    pub tokens: u32,
}

impl Linear {
    /// Trainable parameter count.
    pub fn params(&self) -> u64 {
        u64::from(self.in_features)
            .saturating_mul(u64::from(self.out_features))
            .saturating_add(u64::from(self.out_features))
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        u64::from(self.in_features)
            .saturating_mul(u64::from(self.out_features))
            .saturating_mul(u64::from(self.tokens))
    }

    /// Number of output activations produced.
    pub fn output_elements(&self) -> u64 {
        u64::from(self.out_features).saturating_mul(u64::from(self.tokens))
    }
}

/// An element-wise activation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Activation {
    /// Which activation function.
    pub kind: ActivationKind,
    /// Number of elements the function is applied to.
    pub elements: u64,
}

/// A pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pooling {
    /// Which pooling operator.
    pub kind: PoolingKind,
    /// Input elements consumed.
    pub input_elements: u64,
    /// Output elements produced.
    pub output_elements: u64,
}

/// A flatten (reshape) layer, printed by e.g. torchvision VGG/Swin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flatten {
    /// Number of elements moved.
    pub elements: u64,
}

/// A permute (dimension reordering) layer, printed by torchvision Swin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permute {
    /// Number of elements moved.
    pub elements: u64,
}

/// The layer types considered by the CLAIRE framework.
///
/// This matches the paper's Step #TR1: "The layer types considered
/// include Conv2d, Linear, Tanh, activation units, and pooling units"
/// plus the `FLATTEN`/`PERMUTE` capabilities of Table II and the 1-D
/// convolution module of GPT-2/Whisper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// 1-D convolution.
    Conv1d(Conv1d),
    /// Fully connected layer.
    Linear(Linear),
    /// Element-wise activation (including Tanh).
    Activation(Activation),
    /// Pooling layer.
    Pooling(Pooling),
    /// Reshape.
    Flatten(Flatten),
    /// Dimension permutation.
    Permute(Permute),
}

/// The hardware-unit class a layer maps onto — one class per node type
/// in the CLAIRE graphs (Fig. 2 distinguishes `CONV2D`, `LINEAR`,
/// activation, and pooling node labels).
///
/// Conv2d / Conv1d / Linear all execute on systolic-array hardware but
/// appear as distinct node types because their dataflow configuration
/// (im2col addressing vs. matrix–vector streaming) differs — this is
/// what keeps GPT-2/Whisper in their own library subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Systolic array configured for 2-D convolution.
    Conv2d,
    /// Systolic array configured for 1-D convolution.
    Conv1d,
    /// Systolic array configured for matrix multiply.
    Linear,
    /// Activation unit of a specific kind.
    Activation(ActivationKind),
    /// Pooling unit of a specific kind.
    Pooling(PoolingKind),
    /// Flatten/reshape unit.
    Flatten,
    /// Permute unit.
    Permute,
}

impl OpClass {
    /// Total number of distinct op classes (3 systolic-array modes +
    /// 5 activations + 5 poolings + flatten + permute).
    pub const COUNT: usize = 15;

    /// All op classes in a stable order (used for similarity vectors).
    pub fn all() -> Vec<OpClass> {
        let mut v = vec![OpClass::Conv2d, OpClass::Conv1d, OpClass::Linear];
        v.extend(ActivationKind::ALL.iter().map(|&a| OpClass::Activation(a)));
        v.extend(PoolingKind::ALL.iter().map(|&p| OpClass::Pooling(p)));
        v.push(OpClass::Flatten);
        v.push(OpClass::Permute);
        v
    }

    /// A stable dense index in `0..Self::COUNT`.
    pub fn index(self) -> usize {
        match self {
            OpClass::Conv2d => 0,
            OpClass::Conv1d => 1,
            OpClass::Linear => 2,
            OpClass::Activation(a) => 3 + a as usize,
            OpClass::Pooling(p) => 8 + p as usize,
            OpClass::Flatten => 13,
            OpClass::Permute => 14,
        }
    }

    /// Upper-case label used in graphs and tables (paper Fig. 2 style).
    pub fn label(self) -> String {
        match self {
            OpClass::Conv2d => "CONV2D".to_owned(),
            OpClass::Conv1d => "CONV1D".to_owned(),
            OpClass::Linear => "LINEAR".to_owned(),
            OpClass::Activation(a) => a.token().to_owned(),
            OpClass::Pooling(p) => p.token().to_owned(),
            OpClass::Flatten => "FLATTEN".to_owned(),
            OpClass::Permute => "PERMUTE".to_owned(),
        }
    }

    /// True when this class executes on systolic-array hardware.
    pub fn is_systolic(self) -> bool {
        matches!(self, OpClass::Conv2d | OpClass::Conv1d | OpClass::Linear)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One extracted layer: a name (the module path in the `print(model)`
/// dump) plus typed metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Module path, e.g. `features.0` or `encoder.layer.3.attention.q`.
    pub name: String,
    /// Typed layer metadata.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a layer record.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// The hardware-unit class this layer maps onto.
    pub fn op_class(&self) -> OpClass {
        match &self.kind {
            LayerKind::Conv2d(_) => OpClass::Conv2d,
            LayerKind::Conv1d(_) => OpClass::Conv1d,
            LayerKind::Linear(_) => OpClass::Linear,
            LayerKind::Activation(a) => OpClass::Activation(a.kind),
            LayerKind::Pooling(p) => OpClass::Pooling(p.kind),
            LayerKind::Flatten(_) => OpClass::Flatten,
            LayerKind::Permute(_) => OpClass::Permute,
        }
    }

    /// Trainable parameters contributed by this layer.
    pub fn params(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv2d(c) => c.params(),
            LayerKind::Conv1d(c) => c.params(),
            LayerKind::Linear(l) => l.params(),
            _ => 0,
        }
    }

    /// Multiply-accumulate operations for one inference (0 for
    /// non-arithmetic layers; activations/poolings are counted as
    /// element operations, not MACs).
    pub fn macs(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv2d(c) => c.macs(),
            LayerKind::Conv1d(c) => c.macs(),
            LayerKind::Linear(l) => l.macs(),
            _ => 0,
        }
    }

    /// Element-wise operations (activation/pooling work).
    pub fn element_ops(&self) -> u64 {
        match &self.kind {
            LayerKind::Activation(a) => a.elements,
            LayerKind::Pooling(p) => p.input_elements,
            LayerKind::Flatten(f) => f.elements,
            LayerKind::Permute(p) => p.elements,
            _ => 0,
        }
    }

    /// Number of output elements this layer hands to its successor —
    /// the edge weight `w_E` (data communication volume) in the CLAIRE
    /// graphs, in elements (1 byte per element at 8-bit precision).
    pub fn output_elements(&self) -> u64 {
        match &self.kind {
            LayerKind::Conv2d(c) => c.output_elements(),
            LayerKind::Conv1d(c) => c.output_elements(),
            LayerKind::Linear(l) => l.output_elements(),
            LayerKind::Activation(a) => a.elements,
            LayerKind::Pooling(p) => p.output_elements,
            LayerKind::Flatten(f) => f.elements,
            LayerKind::Permute(p) => p.elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(ic: u32, oc: u32, k: u32, s: u32, p: u32, ifm: u32) -> Conv2d {
        Conv2d {
            in_channels: ic,
            out_channels: oc,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            ifm: (ifm, ifm),
            groups: 1,
        }
    }

    #[test]
    fn conv2d_ofm_same_padding() {
        // 3x3 stride-1 pad-1 preserves spatial size.
        assert_eq!(conv(64, 64, 3, 1, 1, 56).ofm(), (56, 56));
    }

    #[test]
    fn conv2d_ofm_stride_two() {
        // ResNet stem: 7x7 stride-2 pad-3 on 224 -> 112.
        assert_eq!(conv(3, 64, 7, 2, 3, 224).ofm(), (112, 112));
    }

    #[test]
    fn conv2d_params_include_bias() {
        let c = conv(3, 64, 7, 2, 3, 224);
        assert_eq!(c.params(), 3 * 64 * 49 + 64);
    }

    #[test]
    fn conv2d_depthwise_params() {
        let mut c = conv(32, 32, 3, 1, 1, 112);
        c.groups = 32;
        assert_eq!(c.params(), 32 * 9 + 32);
    }

    #[test]
    fn conv2d_macs_match_formula() {
        let c = conv(64, 128, 3, 1, 1, 28);
        assert_eq!(c.macs(), 28 * 28 * 128 * 64 * 9);
    }

    #[test]
    fn conv1d_length_arithmetic() {
        // Whisper front-end: k3 s2 p1 on 3000 -> 1500.
        let c = Conv1d {
            in_channels: 128,
            out_channels: 1280,
            kernel: 3,
            stride: 2,
            padding: 1,
            length: 3000,
        };
        assert_eq!(c.output_length(), 1500);
        assert_eq!(c.output_elements(), 1500 * 1280);
    }

    #[test]
    fn linear_macs_scale_with_tokens() {
        let l = Linear {
            in_features: 768,
            out_features: 3072,
            tokens: 128,
        };
        assert_eq!(l.macs(), 768 * 3072 * 128);
        assert_eq!(l.params(), 768 * 3072 + 3072);
    }

    #[test]
    fn op_class_indices_are_dense_and_unique() {
        let all = OpClass::all();
        assert_eq!(all.len(), OpClass::COUNT);
        let mut seen = [false; OpClass::COUNT];
        for c in all {
            let i = c.index();
            assert!(!seen[i], "duplicate index {i} for {c}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn op_class_labels_match_paper_tokens() {
        assert_eq!(
            OpClass::Pooling(PoolingKind::LastLevelMaxPool).label(),
            "LASTLEVELMAXPOOL"
        );
        assert_eq!(OpClass::Activation(ActivationKind::Relu6).label(), "RELU6");
        assert_eq!(OpClass::Conv2d.label(), "CONV2D");
    }

    #[test]
    fn layer_edge_weight_is_output_volume() {
        let l = Layer::new("conv1", LayerKind::Conv2d(conv(3, 64, 7, 2, 3, 224)));
        assert_eq!(l.output_elements(), 112 * 112 * 64);
        assert_eq!(l.op_class(), OpClass::Conv2d);
    }

    #[test]
    fn systolic_classes() {
        assert!(OpClass::Conv2d.is_systolic());
        assert!(OpClass::Conv1d.is_systolic());
        assert!(OpClass::Linear.is_systolic());
        assert!(!OpClass::Flatten.is_systolic());
        assert!(!OpClass::Activation(ActivationKind::Gelu).is_systolic());
    }
}
