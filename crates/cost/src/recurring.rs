//! Yield-based recurring (per-unit) die cost — the other half of the
//! Chiplet-Actuary cost model. The paper's headline results use only
//! NRE; this model backs the monolithic-vs-chiplet ablation bench and
//! the "area wall" motivation (larger dies ⇒ collapsing yield).

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Wafer/yield parameters for per-die manufacturing cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecurringModel {
    /// Wafer diameter, mm (300 for the usual 12-inch line).
    pub wafer_diameter_mm: f64,
    /// Processed-wafer cost, $.
    pub wafer_cost: f64,
    /// Defect density, defects per mm².
    pub defect_density_per_mm2: f64,
    /// Negative-binomial clustering parameter α.
    pub clustering_alpha: f64,
    /// Per-die assembly/bonding cost for 2.5-D integration, $.
    pub bonding_cost_per_die: f64,
}

impl RecurringModel {
    /// 28-nm-class defaults: 3 000 $ wafers, D0 = 0.001/mm²
    /// (0.1/cm²), α = 3, 0.5 $ bonding per die.
    pub fn tsmc28() -> Self {
        RecurringModel {
            wafer_diameter_mm: 300.0,
            wafer_cost: 3_000.0,
            defect_density_per_mm2: 0.001,
            clustering_alpha: 3.0,
            bonding_cost_per_die: 0.5,
        }
    }

    /// Gross dies per wafer for a square die of `area_mm2` (classic
    /// edge-loss approximation).
    ///
    /// # Panics
    ///
    /// Panics if `area_mm2` is not finite and positive.
    pub fn dies_per_wafer(&self, area_mm2: f64) -> f64 {
        assert!(
            area_mm2.is_finite() && area_mm2 > 0.0,
            "die area must be positive"
        );
        let d = self.wafer_diameter_mm;
        let per = PI * d * d / (4.0 * area_mm2) - PI * d / (2.0 * area_mm2).sqrt();
        per.max(0.0)
    }

    /// Die yield under the negative-binomial model:
    /// `Y = (1 + A·D0/α)^(−α)`.
    pub fn yield_fraction(&self, area_mm2: f64) -> f64 {
        (1.0 + area_mm2 * self.defect_density_per_mm2 / self.clustering_alpha)
            .powf(-self.clustering_alpha)
    }

    /// Cost of one *good* die, $.
    pub fn good_die_cost(&self, area_mm2: f64) -> f64 {
        let gross = self.dies_per_wafer(area_mm2);
        assert!(gross > 0.0, "die of {area_mm2} mm² does not fit the wafer");
        self.wafer_cost / (gross * self.yield_fraction(area_mm2))
    }

    /// Per-unit cost of a multi-chiplet system: good-die costs plus
    /// bonding per die.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet_areas_mm2` is empty.
    pub fn system_unit_cost(&self, chiplet_areas_mm2: &[f64]) -> f64 {
        assert!(
            !chiplet_areas_mm2.is_empty(),
            "a system needs at least one die"
        );
        chiplet_areas_mm2
            .iter()
            .map(|&a| self.good_die_cost(a) + self.bonding_cost_per_die)
            .sum()
    }
}

impl Default for RecurringModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_decreases_with_area() {
        let m = RecurringModel::tsmc28();
        assert!(m.yield_fraction(10.0) > m.yield_fraction(100.0));
        assert!(m.yield_fraction(100.0) > m.yield_fraction(600.0));
    }

    #[test]
    fn yield_is_a_probability() {
        let m = RecurringModel::tsmc28();
        for a in [1.0, 50.0, 400.0, 800.0] {
            let y = m.yield_fraction(a);
            assert!((0.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn dies_per_wafer_sane() {
        let m = RecurringModel::tsmc28();
        // A 100-mm² die on a 300-mm wafer: several hundred dies.
        let d = m.dies_per_wafer(100.0);
        assert!((400.0..700.0).contains(&d), "{d}");
    }

    #[test]
    fn area_wall_two_halves_beat_one_large_die() {
        // The paper's motivation: splitting a large monolithic die into
        // chiplets improves cost once yield loss dominates bonding.
        let m = RecurringModel {
            defect_density_per_mm2: 0.003, // stressed yield corner
            ..RecurringModel::tsmc28()
        };
        let monolithic = m.system_unit_cost(&[500.0]);
        let split = m.system_unit_cost(&[250.0, 250.0]);
        assert!(split < monolithic, "{split} !< {monolithic}");
    }

    #[test]
    fn tiny_dies_pay_bonding_overhead() {
        // "How small is too small": 16 tiny dies cost more than 2
        // medium ones of equal total area because of per-die bonding.
        let m = RecurringModel {
            bonding_cost_per_die: 2.0,
            ..RecurringModel::tsmc28()
        };
        let two = m.system_unit_cost(&[40.0, 40.0]);
        let sixteen = m.system_unit_cost(&[5.0; 16]);
        assert!(sixteen > two);
    }

    #[test]
    fn good_die_cost_monotone_in_area() {
        let m = RecurringModel::tsmc28();
        assert!(m.good_die_cost(50.0) > m.good_die_cost(20.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_panics() {
        RecurringModel::tsmc28().dies_per_wafer(0.0);
    }
}
