//! # claire-cost — chiplet cost models
//!
//! Re-implementation of the non-recurring-engineering (NRE) cost model
//! the CLAIRE paper applies (Feng & Ma, "Chiplet Actuary", DAC 2022)
//! plus a yield-based recurring-cost model used by the ablation
//! benches.
//!
//! The paper reports NRE *normalised to the generic configuration*
//! (`C_g`); [`NreModel::normalized`] reproduces that normalisation. A
//! configuration's NRE is dominated by per-chiplet-type fixed costs
//! (mask set, IP, verification infrastructure) with a weaker
//! area-proportional design/verification term — which is exactly why
//! the paper's library configurations win: fewer distinct chiplet
//! types to harden.
//!
//! # Example
//!
//! ```
//! use claire_cost::NreModel;
//!
//! let model = NreModel::tsmc28();
//! // A 2-chiplet custom design vs a 4-chiplet generic design.
//! let custom = model.system_nre(&[20.0, 18.0]);
//! let generic = model.system_nre(&[22.0, 20.0, 19.0, 21.0]);
//! let normalized = model.normalized(custom, generic);
//! assert!((0.45..0.55).contains(&normalized));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod nre;
mod packaging;
mod recurring;

pub use nre::NreModel;
pub use packaging::{PackagingModel, PackagingTech};
pub use recurring::RecurringModel;
