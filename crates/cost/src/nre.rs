//! Non-recurring engineering cost model (Chiplet-Actuary-style
//! decomposition, Feng & Ma, DAC 2022).

use serde::{Deserialize, Serialize};

/// NRE cost decomposition for hardening chiplets at one process node.
///
/// Per chiplet *type*:
/// * a full mask set,
/// * design effort (labour + CAD seats) proportional to area,
/// * verification effort proportional to area,
/// * IP licensing (pads, PHY, controllers).
///
/// Per *system*:
/// * 2.5-D package/interposer design, with a per-chiplet integration
///   term (more die types ⇒ more interface co-design),
/// * a small fixed base.
///
/// All values in millions of dollars. Absolute calibration does not
/// matter for CLAIRE (results are normalised to the generic
/// configuration); the *structure* — fixed-per-type dominating — does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NreModel {
    /// Full mask-set cost per chiplet type, M$.
    pub mask_set: f64,
    /// Design effort per mm², M$/mm².
    pub design_per_mm2: f64,
    /// Verification effort per mm², M$/mm².
    pub verification_per_mm2: f64,
    /// IP licensing per chiplet type, M$.
    pub ip_licensing: f64,
    /// Package co-design effort per integrated chiplet, M$.
    pub integration_per_chiplet: f64,
    /// Fixed package/substrate design base, M$.
    pub package_base: f64,
}

impl NreModel {
    /// A 28-nm-class calibration: ≈1.5 M$ mask set, 0.02 M$/mm² design,
    /// 0.01 M$/mm² verification, 0.3 M$ IP, 0.2 M$ integration per
    /// chiplet, 0.05 M$ package base.
    pub fn tsmc28() -> Self {
        NreModel {
            mask_set: 1.5,
            design_per_mm2: 0.020,
            verification_per_mm2: 0.010,
            ip_licensing: 0.3,
            integration_per_chiplet: 0.2,
            package_base: 0.05,
        }
    }

    /// A 16-nm-class calibration: mask sets ≈ 5 M$, roughly 2.5× the
    /// per-area design/verification effort, costlier IP.
    pub fn tsmc16() -> Self {
        NreModel {
            mask_set: 5.0,
            design_per_mm2: 0.050,
            verification_per_mm2: 0.025,
            ip_licensing: 0.8,
            integration_per_chiplet: 0.25,
            package_base: 0.06,
        }
    }

    /// A 7-nm-class calibration: mask sets ≈ 15 M$ and design effort
    /// an order of magnitude above 28 nm — the regime where hardened
    /// chiplet reuse stops being nice-to-have.
    pub fn tsmc7() -> Self {
        NreModel {
            mask_set: 15.0,
            design_per_mm2: 0.120,
            verification_per_mm2: 0.060,
            ip_licensing: 2.0,
            integration_per_chiplet: 0.35,
            package_base: 0.08,
        }
    }

    /// NRE of hardening one chiplet type of the given area, M$.
    ///
    /// # Panics
    ///
    /// Panics if `area_mm2` is not finite and positive.
    pub fn chiplet_nre(&self, area_mm2: f64) -> f64 {
        assert!(
            area_mm2.is_finite() && area_mm2 > 0.0,
            "chiplet area must be positive, got {area_mm2}"
        );
        self.mask_set
            + self.design_per_mm2 * area_mm2
            + self.verification_per_mm2 * area_mm2
            + self.ip_licensing
    }

    /// Total NRE of a design made of the given chiplet-type areas, M$.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet_areas_mm2` is empty or contains a
    /// non-positive area.
    pub fn system_nre(&self, chiplet_areas_mm2: &[f64]) -> f64 {
        assert!(
            !chiplet_areas_mm2.is_empty(),
            "a design needs at least one chiplet"
        );
        let dies: f64 = chiplet_areas_mm2.iter().map(|&a| self.chiplet_nre(a)).sum();
        dies + self.integration_per_chiplet * chiplet_areas_mm2.len() as f64 + self.package_base
    }

    /// Normalises an NRE value against a reference (the paper divides
    /// every configuration's cost by the generic configuration's).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is not positive.
    pub fn normalized(&self, nre: f64, reference: f64) -> f64 {
        assert!(reference > 0.0, "reference NRE must be positive");
        nre / reference
    }
}

impl Default for NreModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chiplet_nre_decomposition() {
        let m = NreModel::tsmc28();
        let nre = m.chiplet_nre(20.0);
        assert!((nre - (1.5 + 0.4 + 0.2 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn fixed_costs_dominate_at_chiplet_scale() {
        // A 20-mm² chiplet's NRE must be > 70 % fixed: the property
        // that makes NRE ≈ proportional to chiplet-type count.
        let m = NreModel::tsmc28();
        let fixed = m.mask_set + m.ip_licensing;
        assert!(fixed / m.chiplet_nre(20.0) > 0.7);
    }

    #[test]
    fn two_vs_four_chiplets_is_about_half() {
        let m = NreModel::tsmc28();
        let two = m.system_nre(&[20.0, 20.0]);
        let four = m.system_nre(&[20.0, 20.0, 20.0, 20.0]);
        let r = m.normalized(two, four);
        assert!((0.47..0.53).contains(&r), "{r}");
    }

    #[test]
    fn one_vs_four_chiplets_is_about_quarter() {
        let m = NreModel::tsmc28();
        let one = m.system_nre(&[20.0]);
        let four = m.system_nre(&[20.0, 20.0, 20.0, 20.0]);
        let r = m.normalized(one, four);
        assert!((0.22..0.28).contains(&r), "{r}");
    }

    #[test]
    fn larger_chiplets_cost_more() {
        let m = NreModel::tsmc28();
        assert!(m.chiplet_nre(60.0) > m.chiplet_nre(20.0));
    }

    #[test]
    #[should_panic(expected = "at least one chiplet")]
    fn empty_system_panics() {
        NreModel::tsmc28().system_nre(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_area_panics() {
        NreModel::tsmc28().chiplet_nre(-3.0);
    }

    #[test]
    fn node_calibrations_escalate() {
        let n28 = NreModel::tsmc28();
        let n16 = NreModel::tsmc16();
        let n7 = NreModel::tsmc7();
        assert!(n16.mask_set > n28.mask_set);
        assert!(n7.mask_set > 2.5 * n16.mask_set);
        // A 20-mm²-class chiplet at 7 nm costs ~5-8x its 28-nm NRE.
        let ratio = n7.chiplet_nre(20.0) / n28.chiplet_nre(20.0);
        assert!((4.0..10.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn serde_round_trip() {
        let m = NreModel::tsmc28();
        let json = serde_json::to_string(&m).unwrap();
        let back: NreModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
