//! 2.5-D packaging technology cost model — the remaining axis of the
//! Chiplet-Actuary framework the paper's NRE comparison builds on:
//! what the *package* (organic substrate, silicon interposer, or
//! fan-out) adds per unit, and where the technologies cross over with
//! volume.

use crate::recurring::RecurringModel;
use serde::{Deserialize, Serialize};

/// Packaging technology families for 2.5-D integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackagingTech {
    /// Flip-chip dies on an organic laminate (cheap carrier, coarse
    /// bump pitch — fine for AIB-class parallel interfaces).
    OrganicSubstrate,
    /// Passive silicon interposer (CoWoS-class: fine pitch, expensive
    /// carrier silicon, extra mask NRE).
    SiliconInterposer,
    /// Wafer-level integrated fan-out (InFO-class: intermediate cost
    /// and pitch).
    IntegratedFanout,
}

/// Cost parameters of one packaging technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackagingModel {
    /// The technology family.
    pub tech: PackagingTech,
    /// Package design + tooling NRE, M$.
    pub nre_musd: f64,
    /// Carrier cost, $ per mm² of carrier.
    pub carrier_cost_per_mm2: f64,
    /// Carrier area overhead over the summed die area (routing ring,
    /// keep-outs).
    pub carrier_overhead: f64,
    /// Assembly (bond + underfill) cost per die, $.
    pub bond_cost_per_die: f64,
    /// Assembly yield per bonded die (compounds with die count).
    pub assembly_yield_per_die: f64,
}

impl PackagingModel {
    /// Organic laminate: 0.1 M$ NRE, 0.002 $/mm², 4× carrier overhead,
    /// 0.30 $/die bonding at 99.5 % per-die assembly yield.
    pub fn organic_substrate() -> Self {
        PackagingModel {
            tech: PackagingTech::OrganicSubstrate,
            nre_musd: 0.1,
            carrier_cost_per_mm2: 0.002,
            carrier_overhead: 4.0,
            bond_cost_per_die: 0.30,
            assembly_yield_per_die: 0.995,
        }
    }

    /// Passive silicon interposer: 1.0 M$ NRE (coarse-node mask set),
    /// 0.05 $/mm² carrier silicon, 20 % overhead, 0.60 $/die at
    /// 98.5 % per-die assembly yield.
    pub fn silicon_interposer() -> Self {
        PackagingModel {
            tech: PackagingTech::SiliconInterposer,
            nre_musd: 1.0,
            carrier_cost_per_mm2: 0.05,
            carrier_overhead: 0.2,
            bond_cost_per_die: 0.60,
            assembly_yield_per_die: 0.985,
        }
    }

    /// Integrated fan-out: 0.5 M$ NRE, 0.01 $/mm², 50 % overhead,
    /// 0.50 $/die at 98 % per-die assembly yield.
    pub fn integrated_fanout() -> Self {
        PackagingModel {
            tech: PackagingTech::IntegratedFanout,
            nre_musd: 0.5,
            carrier_cost_per_mm2: 0.01,
            carrier_overhead: 0.5,
            bond_cost_per_die: 0.50,
            assembly_yield_per_die: 0.98,
        }
    }

    /// All three technology presets.
    pub fn all() -> [PackagingModel; 3] {
        [
            Self::organic_substrate(),
            Self::silicon_interposer(),
            Self::integrated_fanout(),
        ]
    }

    /// Per-unit packaged cost: known-good dies + carrier + assembly,
    /// divided by the compounded assembly yield (a failed bond scraps
    /// the whole package).
    ///
    /// # Panics
    ///
    /// Panics if `die_areas_mm2` is empty.
    pub fn unit_cost(&self, re: &RecurringModel, die_areas_mm2: &[f64]) -> f64 {
        assert!(!die_areas_mm2.is_empty(), "a package needs dies");
        let dies: f64 = die_areas_mm2.iter().map(|&a| re.good_die_cost(a)).sum();
        let total_area: f64 = die_areas_mm2.iter().sum();
        let carrier = total_area * (1.0 + self.carrier_overhead) * self.carrier_cost_per_mm2;
        let bonding = self.bond_cost_per_die * die_areas_mm2.len() as f64;
        let assembly_yield = self.assembly_yield_per_die.powi(die_areas_mm2.len() as i32);
        (dies + carrier + bonding) / assembly_yield
    }

    /// Total per-unit cost at a production `volume`, amortising this
    /// package's NRE (die NRE is accounted separately by
    /// [`crate::NreModel`]).
    ///
    /// # Panics
    ///
    /// Panics if `volume` is zero.
    pub fn amortised_unit_cost(
        &self,
        re: &RecurringModel,
        die_areas_mm2: &[f64],
        volume: u64,
    ) -> f64 {
        assert!(volume > 0, "volume must be positive");
        self.unit_cost(re, die_areas_mm2) + self.nre_musd * 1e6 / volume as f64
    }

    /// The production volume at which `self` becomes cheaper than
    /// `other` for the given die set (None when it never does, or is
    /// always cheaper).
    pub fn crossover_volume(
        &self,
        other: &PackagingModel,
        re: &RecurringModel,
        die_areas_mm2: &[f64],
    ) -> Option<u64> {
        let du = other.unit_cost(re, die_areas_mm2) - self.unit_cost(re, die_areas_mm2);
        let dn = (self.nre_musd - other.nre_musd) * 1e6;
        if du <= 0.0 || dn <= 0.0 {
            return None; // self never overtakes, or was always ahead
        }
        Some((dn / du).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re() -> RecurringModel {
        RecurringModel::tsmc28()
    }

    #[test]
    fn organic_is_cheapest_per_unit_interposer_most_capable_nre() {
        let dies = [20.0, 20.0];
        let organic = PackagingModel::organic_substrate();
        let interposer = PackagingModel::silicon_interposer();
        let fanout = PackagingModel::integrated_fanout();
        assert!(organic.unit_cost(&re(), &dies) < fanout.unit_cost(&re(), &dies));
        assert!(fanout.unit_cost(&re(), &dies) < interposer.unit_cost(&re(), &dies));
        assert!(organic.nre_musd < fanout.nre_musd);
        assert!(fanout.nre_musd < interposer.nre_musd);
    }

    #[test]
    fn assembly_yield_compounds_with_die_count() {
        let p = PackagingModel::integrated_fanout();
        // Same silicon split into more dies pays more assembly scrap.
        let two = p.unit_cost(&re(), &[40.0, 40.0]);
        let eight = p.unit_cost(&re(), &[10.0; 8]);
        assert!(eight > two);
    }

    #[test]
    fn amortisation_decreases_with_volume() {
        let p = PackagingModel::silicon_interposer();
        let dies = [30.0, 30.0];
        let low = p.amortised_unit_cost(&re(), &dies, 1_000);
        let high = p.amortised_unit_cost(&re(), &dies, 1_000_000);
        assert!(low > high);
        assert!((high - p.unit_cost(&re(), &dies)).abs() < 2.0);
    }

    #[test]
    fn organic_overtakes_interposer_at_some_volume() {
        // Organic has lower NRE *and* lower unit cost here, so the
        // interposer never overtakes it...
        let dies = [25.0, 25.0];
        let organic = PackagingModel::organic_substrate();
        let interposer = PackagingModel::silicon_interposer();
        assert_eq!(interposer.crossover_volume(&organic, &re(), &dies), None);
        // ...and organic is ahead from the start (lower NRE), so the
        // crossover question is moot in that direction too.
        assert_eq!(organic.crossover_volume(&interposer, &re(), &dies), None);
    }

    #[test]
    fn crossover_math_on_synthetic_case() {
        // Force a genuine crossover: high-NRE tech with cheaper units.
        let cheap_units = PackagingModel {
            nre_musd: 2.0,
            carrier_cost_per_mm2: 0.0005,
            bond_cost_per_die: 0.05,
            ..PackagingModel::organic_substrate()
        };
        let low_nre = PackagingModel::organic_substrate();
        let dies = [25.0, 25.0];
        let v = cheap_units
            .crossover_volume(&low_nre, &re(), &dies)
            .expect("crossover exists");
        // At the crossover volume the amortised costs meet.
        let a = cheap_units.amortised_unit_cost(&re(), &dies, v);
        let b = low_nre.amortised_unit_cost(&re(), &dies, v);
        assert!((a - b).abs() / b < 0.01, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "needs dies")]
    fn empty_package_panics() {
        PackagingModel::organic_substrate().unit_cost(&re(), &[]);
    }
}
