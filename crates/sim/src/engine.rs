//! The event queue: a deterministic discrete-event kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time` carrying an opaque payload.
///
/// Events at equal times fire in insertion order (a monotonically
/// increasing sequence number breaks ties), so simulations are fully
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Firing time, cycles.
    pub time: u64,
    seq: u64,
    /// Payload.
    pub payload: T,
}

impl<T: Eq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq)
        // comes out first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
///
/// # Example
///
/// ```
/// use claire_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop().map(|e| (e.time, e.payload)), Some((5, "a")));
/// assert_eq!(q.pop().map(|e| e.payload), Some("b")); // FIFO at equal time
/// assert_eq!(q.pop().map(|e| e.payload), Some("c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    now: u64,
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the last popped event).
    pub fn schedule(&mut self, time: u64, payload: T) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, payload });
    }

    /// Schedules `payload` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: u64, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the simulation clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some(e)
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.schedule(9, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(2, ());
        let e = q.pop().unwrap();
        assert_eq!(e.time, 7);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(3, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
