//! Simulation results.

use claire_model::OpClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Results of one simulated inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end cycles.
    pub cycles: u64,
    /// Busy cycles per hardware-unit class (array-occupancy for
    /// systolic groups: a wave of `n` busy arrays counts its duration
    /// once).
    pub busy_cycles: Vec<(OpClass, u64)>,
    /// Cycles the NoC channels spent serialising transfers.
    pub noc_busy_cycles: u64,
    /// Cycles the NoP (AIB) channel spent serialising transfers.
    pub nop_busy_cycles: u64,
    /// Number of inter-unit transfers simulated.
    pub transfers: u64,
    /// Number of tile/sub-task executions simulated.
    pub tiles_executed: u64,
    /// Total dynamic energy, joules (compute + NoC + NoP) — must match
    /// the analytical evaluator (pinned by tests).
    pub energy_j: f64,
}

impl SimReport {
    /// Latency in seconds at the modelled clock.
    pub fn latency_s(&self) -> f64 {
        self.cycles as f64 / claire_ppa::tech28::CLOCK_HZ
    }

    /// Temporal utilisation of a unit class: its busy cycles divided
    /// by the end-to-end cycles.
    pub fn temporal_utilization(&self, class: OpClass) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let busy = self
            .busy_cycles
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, b)| *b)
            .unwrap_or(0);
        busy as f64 / self.cycles as f64
    }

    /// The busy-cycle map as a lookup table.
    pub fn busy_map(&self) -> BTreeMap<OpClass, u64> {
        self.busy_cycles.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            cycles: 1000,
            busy_cycles: vec![(OpClass::Conv2d, 600), (OpClass::Linear, 100)],
            noc_busy_cycles: 50,
            nop_busy_cycles: 10,
            transfers: 4,
            tiles_executed: 32,
            energy_j: 1e-3,
        }
    }

    #[test]
    fn latency_uses_model_clock() {
        assert!((report().latency_s() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn temporal_utilization_ratio() {
        let r = report();
        assert!((r.temporal_utilization(OpClass::Conv2d) - 0.6).abs() < 1e-12);
        assert_eq!(r.temporal_utilization(OpClass::Flatten), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
