//! The cycle-approximate simulator.

use crate::engine::EventQueue;
use crate::report::SimReport;
use claire_core::evaluate::edge_transfer;
use claire_core::{ClaireError, DesignConfig};
use claire_model::{LayerKind, Model, OpClass};
use claire_ppa::{layer_cost, SystolicArrayModel};
use std::collections::BTreeMap;

/// Execution semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The paper's analytical semantics: layers strictly sequential,
    /// inter-layer transfers fully serialised after the producer
    /// finishes. Matches [`claire_core::evaluate::evaluate`].
    #[default]
    Strict,
    /// Tile-granular double buffering: a systolic producer streams
    /// each completed tile's output chunk over the interconnect while
    /// later tiles are still computing, hiding transfer serialisation
    /// behind compute. The consumer still waits for the full tensor.
    Overlapped,
}

/// One layer's compute profile as the simulator schedules it.
struct LayerWork {
    class: OpClass,
    /// Sequential weight-reload phases (grouped convolutions reload
    /// the array once per group).
    groups: u64,
    /// Tiles per group.
    tiles_per_group: u64,
    /// Cycles one tile occupies an array.
    per_tile: u64,
    /// Parallel servers (arrays for systolic groups, 1 vector engine
    /// otherwise).
    servers: u64,
    /// Output bytes handed to the next layer.
    out_bytes: u64,
}

/// The unit class executing layer `i`, as a typed error when the
/// configuration lacks it (all entry points pre-check coverage, so
/// the error is defensive rather than reachable).
fn executing(model: &Model, config: &DesignConfig, i: usize) -> Result<OpClass, ClaireError> {
    let class = model.layers()[i].op_class();
    config
        .executing_class(class)
        .ok_or_else(|| ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: class.label(),
        })
}

fn work_for(model: &Model, config: &DesignConfig, i: usize) -> Result<LayerWork, ClaireError> {
    let layer = &model.layers()[i];
    let class = executing(model, config, i)?;
    let out_bytes = layer.output_elements();
    let sa = SystolicArrayModel::new(config.hw);
    match &layer.kind {
        LayerKind::Conv2d(c) => {
            let cost = sa.conv2d(c);
            let groups = u64::from(c.groups).max(1);
            let tiles_per_group = cost.tiles / groups;
            let waves_pg = tiles_per_group.div_ceil(u64::from(config.hw.n_sa));
            Ok(LayerWork {
                class,
                groups,
                tiles_per_group,
                per_tile: cost.cycles / (groups * waves_pg).max(1),
                servers: u64::from(config.hw.n_sa),
                out_bytes,
            })
        }
        LayerKind::Conv1d(c) => {
            let cost = sa.conv1d(c);
            let waves = cost.tiles.div_ceil(u64::from(config.hw.n_sa));
            Ok(LayerWork {
                class,
                groups: 1,
                tiles_per_group: cost.tiles,
                per_tile: cost.cycles / waves.max(1),
                servers: u64::from(config.hw.n_sa),
                out_bytes,
            })
        }
        LayerKind::Linear(l) => {
            let cost = sa.linear(l);
            let waves = cost.tiles.div_ceil(u64::from(config.hw.n_sa));
            Ok(LayerWork {
                class,
                groups: 1,
                tiles_per_group: cost.tiles,
                per_tile: cost.cycles / waves.max(1),
                servers: u64::from(config.hw.n_sa),
                out_bytes,
            })
        }
        other => {
            let cost = layer_cost(other, &config.hw);
            Ok(LayerWork {
                class,
                groups: 1,
                tiles_per_group: 1,
                per_tile: cost.cycles,
                servers: 1,
                out_bytes,
            })
        }
    }
}

/// Simulates one inference of `model` on `config`.
///
/// In [`Mode::Strict`] the end-to-end cycle count equals the
/// analytical model's latency (pinned by tests); [`Mode::Overlapped`]
/// is never slower.
///
/// # Errors
///
/// [`ClaireError::IncompleteCoverage`] when the configuration cannot
/// implement one of the model's layers.
pub fn simulate(
    model: &Model,
    config: &DesignConfig,
    mode: Mode,
) -> Result<SimReport, ClaireError> {
    if let Some(missing) = config.first_missing(model) {
        return Err(ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: missing.label(),
        });
    }

    let mut now: u64 = 0;
    let mut busy: BTreeMap<OpClass, u64> = BTreeMap::new();
    let mut noc_busy = 0_u64;
    let mut nop_busy = 0_u64;
    let mut transfers = 0_u64;
    let mut tiles_executed = 0_u64;
    let mut energy_pj = 0.0;

    let n_layers = model.layer_count();
    for i in 0..n_layers {
        let work = work_for(model, config, i)?;
        energy_pj += layer_cost(&model.layers()[i].kind, &config.hw).energy_pj;
        let start = now;

        // --- Compute: list-schedule tiles onto the servers via the
        // event queue (earliest-free server first; deterministic).
        let mut tile_completions: Vec<u64> = Vec::new();
        for _g in 0..work.groups {
            let group_start = now;
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut launched = 0_u64;
            let initial = work.tiles_per_group.min(work.servers);
            for _ in 0..initial {
                q.schedule(group_start + work.per_tile, 1);
                launched += 1;
            }
            let mut last = group_start;
            while let Some(ev) = q.pop() {
                last = ev.time;
                tile_completions.push(ev.time);
                tiles_executed += 1;
                if launched < work.tiles_per_group {
                    q.schedule(ev.time + work.per_tile, 1);
                    launched += 1;
                }
            }
            now = last.max(group_start);
        }
        *busy.entry(work.class).or_insert(0) += now - start;

        // --- Transfer to the successor layer.
        if i + 1 == n_layers {
            continue;
        }
        let next_class = executing(model, config, i + 1)?;
        let t = edge_transfer(config, work.class, next_class, work.out_bytes);
        energy_pj += t.noc_pj() + t.nop_pj();
        if t.ser_cycles == 0 && t.fixed_cycles == 0 {
            continue; // same unit group: no interconnect involved
        }
        transfers += 1;
        if t.crosses_chiplet {
            nop_busy += t.ser_cycles / 2;
            noc_busy += t.ser_cycles - t.ser_cycles / 2;
        } else {
            noc_busy += t.ser_cycles;
        }

        match mode {
            Mode::Strict => {
                now += t.ser_cycles + t.fixed_cycles;
            }
            Mode::Overlapped => {
                // Stream one chunk per completed tile; the channel
                // serialises chunks FIFO (total serialisation exactly
                // `ser_cycles`, spread over the chunks), then the
                // fixed hop latency applies once.
                let chunks = tile_completions.len().max(1) as u64;
                let mut channel_free = start;
                let mut sent = 0_u64;
                for (k, &c) in tile_completions.iter().enumerate() {
                    let cum = t.ser_cycles * (k as u64 + 1) / chunks;
                    let chunk_cycles = cum - sent;
                    sent = cum;
                    let s = c.max(channel_free);
                    channel_free = s + chunk_cycles;
                }
                now = now.max(channel_free) + t.fixed_cycles;
            }
        }
    }

    Ok(SimReport {
        cycles: now,
        busy_cycles: busy.into_iter().collect(),
        noc_busy_cycles: noc_busy,
        nop_busy_cycles: nop_busy,
        transfers,
        tiles_executed,
        energy_j: energy_pj * 1e-12,
    })
}

/// One scheduled interval in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceSpan {
    /// Layer index within the model.
    pub layer: usize,
    /// Layer (module-path) name.
    pub name: String,
    /// Executing unit class label.
    pub class: String,
    /// Start cycle.
    pub start: u64,
    /// End cycle (compute only).
    pub end: u64,
    /// End cycle including the outgoing transfer.
    pub end_with_transfer: u64,
}

/// Produces the per-layer schedule of a strict-mode execution — a
/// Gantt-style trace for inspection or CSV export. The last span's
/// `end_with_transfer` equals [`simulate`]'s strict cycle count
/// (pinned by tests).
///
/// # Errors
///
/// [`ClaireError::IncompleteCoverage`] as for [`simulate`].
pub fn simulate_trace(model: &Model, config: &DesignConfig) -> Result<Vec<TraceSpan>, ClaireError> {
    if let Some(missing) = config.first_missing(model) {
        return Err(ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: missing.label(),
        });
    }
    let n_layers = model.layer_count();
    let mut spans = Vec::with_capacity(n_layers);
    let mut now = 0_u64;
    for i in 0..n_layers {
        let work = work_for(model, config, i)?;
        let waves = work.tiles_per_group.div_ceil(work.servers) * work.groups;
        let start = now;
        let end = start + waves * work.per_tile;
        let mut end_with_transfer = end;
        if i + 1 < n_layers {
            let next_class = executing(model, config, i + 1)?;
            let t = edge_transfer(config, work.class, next_class, work.out_bytes);
            end_with_transfer = end + t.ser_cycles + t.fixed_cycles;
        }
        spans.push(TraceSpan {
            layer: i,
            name: model.layers()[i].name.clone(),
            class: work.class.label(),
            start,
            end,
            end_with_transfer,
        });
        now = end_with_transfer;
    }
    Ok(spans)
}

/// Ideal steady-state batch throughput, inferences per second, when
/// consecutive inputs are pipelined through the chiplet system under a
/// perfect cyclic schedule.
///
/// The initiation interval is the most-loaded station: the maximum
/// over unit classes of that class's total per-item occupancy
/// (compute + outgoing transfers). This is an *upper bound* on what a
/// causal scheduler achieves — [`simulate_batch`] plays the greedy
/// FIFO schedule and lands between this bound and serial repetition
/// (pinned by tests). A single-unit-class model degenerates to
/// `1 / latency` (no pipelining possible across one resource).
///
/// This is an *extension* of the paper's single-inference analysis to
/// the serving scenario its cloud constraints (Input #4) imply.
///
/// # Errors
///
/// [`ClaireError::IncompleteCoverage`] as for [`simulate`].
pub fn pipelined_throughput(model: &Model, config: &DesignConfig) -> Result<f64, ClaireError> {
    if let Some(missing) = config.first_missing(model) {
        return Err(ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: missing.label(),
        });
    }
    let n_layers = model.layer_count();
    // Aggregate stage time per unit class: a pipeline stage is a unit
    // group, and consecutive inputs contend for it.
    let mut class_cycles: BTreeMap<OpClass, u64> = BTreeMap::new();
    for i in 0..n_layers {
        let work = work_for(model, config, i)?;
        let waves = work.tiles_per_group.div_ceil(work.servers) * work.groups;
        let compute = waves * work.per_tile;
        let mut stage = compute;
        if i + 1 < n_layers {
            let next_class = executing(model, config, i + 1)?;
            let t = edge_transfer(config, work.class, next_class, work.out_bytes);
            stage += t.ser_cycles + t.fixed_cycles;
        }
        *class_cycles.entry(work.class).or_insert(0) += stage;
    }
    let interval = class_cycles.values().copied().max().unwrap_or(0).max(1);
    Ok(claire_ppa::tech28::CLOCK_HZ / interval as f64)
}

/// Simulates a pipelined batch of `batch` back-to-back inferences and
/// returns the end-to-end cycles for the whole batch.
///
/// Each unit class is a pipeline station; item `k`'s layer `i` starts
/// once (a) item `k`'s layer `i−1` output has arrived and (b) the
/// station is free. Items are issued FIFO (a causal greedy schedule),
/// so the realised per-item interval sits between
/// [`pipelined_throughput`]'s ideal initiation interval and the serial
/// single-item latency; re-entrant flows (a CNN revisiting its conv
/// station dozens of times per item) sit near the serial end.
///
/// # Errors
///
/// [`ClaireError::IncompleteCoverage`] as for [`simulate`].
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn simulate_batch(
    model: &Model,
    config: &DesignConfig,
    batch: usize,
) -> Result<u64, ClaireError> {
    assert!(batch > 0, "batch must be positive");
    if let Some(missing) = config.first_missing(model) {
        return Err(ClaireError::IncompleteCoverage {
            algorithm: model.name().to_owned(),
            config: config.name.clone(),
            missing: missing.label(),
        });
    }
    let n_layers = model.layer_count();

    // Pre-compute per-layer duration + outgoing transfer.
    let mut durations = Vec::with_capacity(n_layers);
    let mut transfers = Vec::with_capacity(n_layers);
    let mut classes = Vec::with_capacity(n_layers);
    for i in 0..n_layers {
        let work = work_for(model, config, i)?;
        let waves = work.tiles_per_group.div_ceil(work.servers) * work.groups;
        durations.push(waves * work.per_tile);
        classes.push(work.class);
        if i + 1 < n_layers {
            let next_class = executing(model, config, i + 1)?;
            let t = edge_transfer(config, work.class, next_class, work.out_bytes);
            transfers.push(t.ser_cycles + t.fixed_cycles);
        } else {
            transfers.push(0);
        }
    }

    // Station availability per unit class (each class is one shared
    // resource pool: consecutive items serialise on it).
    let mut station_free: BTreeMap<OpClass, u64> = BTreeMap::new();
    // arrival[i] = when the current item's input reaches layer i.
    let mut finish_prev_item = vec![0_u64; n_layers];
    let mut last = 0;
    for _item in 0..batch {
        let mut arrival = 0_u64;
        for i in 0..n_layers {
            let free = station_free.entry(classes[i]).or_insert(0);
            let start = arrival.max(*free);
            let finish = start + durations[i];
            // The producing station stays busy until its output has
            // drained onto the interconnect (output-buffer occupancy) —
            // the same accounting `pipelined_throughput` uses.
            arrival = finish + transfers[i];
            *free = arrival;
            finish_prev_item[i] = finish;
        }
        last = arrival;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_core::evaluate::evaluate;
    use claire_core::{Claire, ClaireOptions};
    use claire_model::zoo;

    fn custom(model: &Model) -> DesignConfig {
        Claire::new(ClaireOptions::default())
            .custom_for(model)
            .expect("feasible")
            .config
    }

    #[test]
    fn strict_matches_analytical_for_alexnet() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let sim = simulate(&m, &cfg, Mode::Strict).unwrap();
        let analytical = evaluate(&m, &cfg).unwrap();
        let rel = (sim.latency_s() - analytical.latency_s).abs() / analytical.latency_s;
        assert!(
            rel < 1e-9,
            "sim {} vs analytical {}",
            sim.latency_s(),
            analytical.latency_s
        );
    }

    #[test]
    fn simulated_energy_matches_analytical() {
        for m in [zoo::alexnet(), zoo::bert_base(), zoo::swin_t()] {
            let cfg = custom(&m);
            let sim = simulate(&m, &cfg, Mode::Strict).unwrap();
            let analytical = evaluate(&m, &cfg).unwrap();
            let rel = (sim.energy_j - analytical.energy_j).abs() / analytical.energy_j;
            assert!(rel < 1e-9, "{}: {rel}", m.name());
        }
    }

    #[test]
    fn strict_matches_analytical_across_zoo() {
        for m in [
            zoo::resnet18(),
            zoo::mobilenet_v2(),
            zoo::bert_base(),
            zoo::gpt2(),
            zoo::swin_t(),
        ] {
            let cfg = custom(&m);
            let sim = simulate(&m, &cfg, Mode::Strict).unwrap();
            let analytical = evaluate(&m, &cfg).unwrap();
            let rel = (sim.latency_s() - analytical.latency_s).abs() / analytical.latency_s;
            assert!(rel < 1e-9, "{}: {rel}", m.name());
        }
    }

    #[test]
    fn overlap_is_never_slower() {
        for m in [zoo::alexnet(), zoo::vit_base(), zoo::resnet50()] {
            let cfg = custom(&m);
            let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
            let overlapped = simulate(&m, &cfg, Mode::Overlapped).unwrap();
            assert!(
                overlapped.cycles <= strict.cycles,
                "{}: {} > {}",
                m.name(),
                overlapped.cycles,
                strict.cycles
            );
        }
    }

    #[test]
    fn overlap_hides_transfer_serialisation() {
        // AlexNet's big conv outputs make transfer serialisation
        // visible; overlapping must recover a measurable fraction.
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
        let overlapped = simulate(&m, &cfg, Mode::Overlapped).unwrap();
        assert!(overlapped.cycles < strict.cycles, "no overlap benefit");
    }

    #[test]
    fn busy_cycles_bounded_by_makespan() {
        let m = zoo::resnet18();
        let cfg = custom(&m);
        let sim = simulate(&m, &cfg, Mode::Strict).unwrap();
        for (class, b) in &sim.busy_cycles {
            assert!(*b <= sim.cycles, "{class}: {b} > {}", sim.cycles);
        }
        // The systolic group dominates a CNN's schedule.
        assert!(sim.temporal_utilization(OpClass::Conv2d) > 0.3);
    }

    #[test]
    fn tiles_executed_matches_analytical_node_weights() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let sim = simulate(&m, &cfg, Mode::Strict).unwrap();
        let expected: u64 = m
            .layers()
            .iter()
            .map(|l| layer_cost(&l.kind, &cfg.hw).executions)
            .sum();
        // Vector layers count 1 execution per layer in the simulator
        // (single task) vs per-batch in the analytical node weights,
        // so systolic tiles dominate the comparison.
        assert!(sim.tiles_executed > 0);
        assert!(sim.tiles_executed <= expected);
    }

    #[test]
    fn uncovered_model_is_an_error() {
        let m = zoo::alexnet();
        let cfg = DesignConfig::monolithic(
            "linear-only",
            claire_ppa::HwParams::new(32, 32, 16, 16),
            [OpClass::Linear].into_iter().collect(),
        );
        assert!(matches!(
            simulate(&m, &cfg, Mode::Strict),
            Err(ClaireError::IncompleteCoverage { .. })
        ));
    }

    #[test]
    fn throughput_at_least_inverse_latency() {
        // Pipelining across unit groups can only help.
        for m in [zoo::alexnet(), zoo::resnet18(), zoo::bert_base()] {
            let cfg = custom(&m);
            let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
            let tput = pipelined_throughput(&m, &cfg).unwrap();
            let serial = 1.0 / strict.latency_s();
            assert!(tput >= serial * 0.999, "{}: {tput} < {serial}", m.name());
        }
    }

    #[test]
    fn throughput_gains_from_heterogeneous_stages() {
        // A CNN alternates conv/act/pool groups: the pipeline interval
        // (slowest group) beats the end-to-end latency clearly.
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
        let tput = pipelined_throughput(&m, &cfg).unwrap();
        assert!(tput > 1.1 / strict.latency_s(), "no pipeline benefit");
    }

    #[test]
    fn throughput_rejects_uncovered_model() {
        let m = zoo::alexnet();
        let cfg = DesignConfig::monolithic(
            "linear-only",
            claire_ppa::HwParams::new(32, 32, 16, 16),
            [OpClass::Linear].into_iter().collect(),
        );
        assert!(pipelined_throughput(&m, &cfg).is_err());
    }

    #[test]
    fn batch_of_one_matches_strict_latency() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
        let batch1 = simulate_batch(&m, &cfg, 1).unwrap();
        assert_eq!(batch1, strict.cycles);
    }

    #[test]
    fn batch_interval_bracketed_by_bound_and_latency() {
        for m in [zoo::alexnet(), zoo::resnet18(), zoo::bert_base()] {
            let cfg = custom(&m);
            let b1 = simulate_batch(&m, &cfg, 64).unwrap();
            let b2 = simulate_batch(&m, &cfg, 128).unwrap();
            let interval = (b2 - b1) as f64 / 64.0;
            let ideal = claire_ppa::tech28::CLOCK_HZ / pipelined_throughput(&m, &cfg).unwrap();
            let serial = simulate(&m, &cfg, Mode::Strict).unwrap().cycles as f64;
            assert!(
                interval >= ideal * 0.999,
                "{}: beat the ideal bound ({interval} < {ideal})",
                m.name()
            );
            assert!(
                interval <= serial * 1.001,
                "{}: worse than serial ({interval} > {serial})",
                m.name()
            );
        }
    }

    #[test]
    fn batched_execution_beats_serial_repeats() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
        let b16 = simulate_batch(&m, &cfg, 16).unwrap();
        assert!(b16 < 16 * strict.cycles, "pipelining had no effect");
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let _ = simulate_batch(&m, &cfg, 0);
    }

    #[test]
    fn trace_is_contiguous_and_matches_strict_total() {
        let m = zoo::alexnet();
        let cfg = custom(&m);
        let trace = simulate_trace(&m, &cfg).unwrap();
        assert_eq!(trace.len(), m.layer_count());
        let mut prev_end = 0;
        for span in &trace {
            assert_eq!(span.start, prev_end, "gap before layer {}", span.layer);
            assert!(span.end >= span.start);
            assert!(span.end_with_transfer >= span.end);
            prev_end = span.end_with_transfer;
        }
        let strict = simulate(&m, &cfg, Mode::Strict).unwrap();
        assert_eq!(trace.last().unwrap().end_with_transfer, strict.cycles);
    }

    #[test]
    fn deterministic() {
        let m = zoo::swin_t();
        let cfg = custom(&m);
        let a = simulate(&m, &cfg, Mode::Overlapped).unwrap();
        let b = simulate(&m, &cfg, Mode::Overlapped).unwrap();
        assert_eq!(a, b);
    }
}
