//! # claire-sim — discrete-event validation of the analytical models
//!
//! The CLAIRE paper is a purely analytical study: its latencies come
//! from closed-form tiling formulas, never from execution. This crate
//! closes that gap with a cycle-approximate discrete-event simulator
//! of the same hardware (systolic-array groups, vector units, NoC and
//! AIB NoP channels) so the analytical numbers can be *checked* rather
//! than trusted:
//!
//! * [`simulate`] in [`Mode::Strict`] reproduces the paper's execution
//!   semantics — layers run sequentially, tiles fill the arrays in
//!   waves, each inter-layer transfer fully serialises — and must agree
//!   with [`claire_core::evaluate`] cycle-for-cycle (pinned by tests
//!   and the `validate_sim` bench).
//! * [`Mode::Overlapped`] adds tile-granular double buffering: output
//!   chunks stream over the interconnect while the producer is still
//!   computing, hiding transfer latency behind compute — an execution
//!   optimisation the analytical model cannot see.
//!
//! # Example
//!
//! ```
//! use claire_core::{Claire, ClaireOptions};
//! use claire_model::zoo;
//! use claire_sim::{simulate, Mode};
//!
//! # fn main() -> Result<(), claire_core::ClaireError> {
//! let claire = Claire::new(ClaireOptions::default());
//! let model = zoo::alexnet();
//! let custom = claire.custom_for(&model)?;
//! let strict = simulate(&model, &custom.config, Mode::Strict)?;
//! let analytical = claire_core::evaluate::evaluate(&model, &custom.config)?;
//! let rel = (strict.latency_s() - analytical.latency_s).abs() / analytical.latency_s;
//! assert!(rel < 0.01, "simulator and analytical model agree");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod engine;
mod report;
mod simulate;

pub use engine::{Event, EventQueue};
pub use report::SimReport;
pub use simulate::{
    pipelined_throughput, simulate, simulate_batch, simulate_trace, Mode, TraceSpan,
};
