//! End-to-end tests driving the compiled `claire-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_claire-cli"))
}

#[test]
fn help_succeeds_and_mentions_commands() {
    let out = cli().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["models", "custom", "train", "flow", "parse", "init-config"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn models_lists_the_zoo() {
    let out = cli().args(["models", "--extended"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Resnet18", "Mixtral-8x7B", "BERT-base", "Wav2Vec2-base"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn custom_json_is_valid_json() {
    let out = cli()
        .args(["custom", "Alexnet", "--json"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON output");
    assert_eq!(v["model"], "Alexnet");
    assert!(v["ppa"]["latency_ms"].as_f64().expect("latency") > 0.0);
}

#[test]
fn custom_unknown_model_exits_2() {
    let out = cli().args(["custom", "NotAModel"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn parse_round_trip_via_tempfile() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("claire-cli-test-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "Net(\n  (c): Conv2d(3, 8, kernel_size=(3, 3), stride=(1, 1), padding=(1, 1))\n  (r): ReLU()\n  (f): Linear(in_features=2048, out_features=10, bias=True)\n)\n",
    )
    .expect("write dump");
    let out = cli()
        .args([
            "parse",
            path.to_str().expect("utf8"),
            "--image",
            "3x16x16",
            "--name",
            "Net",
        ])
        .output()
        .expect("run");
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parsed Net: 3 layers"));
    assert!(text.contains("custom configuration"));
}

#[test]
fn init_config_then_train_with_it() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("claire-cli-cfg-{}.json", std::process::id()));
    let out = cli()
        .args(["init-config", path.to_str().expect("utf8")])
        .output()
        .expect("run");
    assert!(out.status.success());
    // The written file is valid RunConfig JSON.
    let text = std::fs::read_to_string(&path).expect("config written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
    assert!(v["constraints"]["chiplet_area_limit_mm2"]
        .as_f64()
        .is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn export_then_deploy_round_trip() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("claire-cli-lib-{}.json", std::process::id()));
    let out = cli()
        .args([
            "export-library",
            path.to_str().expect("utf8"),
            "--paper-subsets",
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args([
            "deploy",
            "ViT-base",
            "--library",
            path.to_str().expect("utf8"),
            "--json",
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("json");
    assert_eq!(v["coverage"], 1.0);
    assert_eq!(v["config"], "C_3");

    // The composability gap exits with the IncompleteCoverage code
    // and a clear message.
    let out = cli()
        .args([
            "deploy",
            "EfficientNet-B0",
            "--library",
            path.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(6));
    assert!(String::from_utf8_lossy(&out.stderr).contains("SILU"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn infeasible_constraints_exit_with_distinct_code() {
    // A config whose chiplet-area cap no chiplet can meet: FailFast
    // surfaces NoFeasibleConfiguration as exit 4.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("claire-cli-tight-{}.json", std::process::id()));
    let out = cli()
        .args(["init-config", path.to_str().expect("utf8")])
        .output()
        .expect("run");
    assert!(out.status.success());
    // Tighten the per-chiplet area cap to an impossible 0.5 mm^2 by
    // rewriting the default value in the emitted JSON.
    let text = std::fs::read_to_string(&path).expect("config written");
    assert!(text.contains("\"chiplet_area_limit_mm2\": 100.0"), "{text}");
    let tight = text.replacen(
        "\"chiplet_area_limit_mm2\": 100.0",
        "\"chiplet_area_limit_mm2\": 0.5",
        1,
    );
    std::fs::write(&path, tight).expect("rewrite");

    let out = cli()
        .args([
            "custom",
            "Alexnet",
            "--config",
            path.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // With --degrade the same run succeeds, flagging the relaxation
    // on stderr and keeping stdout's report intact.
    let out = cli()
        .args([
            "custom",
            "Alexnet",
            "--degrade",
            "--config",
            path.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning"), "{err}");
    assert!(err.contains("degraded"), "{err}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("custom configuration"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn usage_documents_exit_codes_and_degrade() {
    let out = cli().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--degrade"));
    assert!(text.contains("EXIT CODES"));
}

#[test]
fn simulate_reports_validation() {
    let out = cli()
        .args(["simulate", "Alexnet", "--batch", "8"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated"));
    assert!(text.contains("batch 8"));
}

#[test]
fn describe_prints_profile() {
    let out = cli().args(["describe", "SWIN-T"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GMACs"));
    assert!(text.contains("LINEAR-LINEAR"));
}

#[test]
fn parse_missing_file_exits_2() {
    let out = cli()
        .args(["parse", "/nonexistent/net.txt"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flow_exports_chrome_trace_and_metrics() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("claire-cli-trace-{}.json", std::process::id()));
    let metrics = dir.join(format!("claire-cli-metrics-{}.json", std::process::id()));
    let out = cli()
        .args([
            "flow",
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().expect("utf8"),
            "--metrics-json",
            metrics.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    std::fs::remove_file(&trace).ok();
    let parsed: serde_json::Value = serde_json::from_str(&trace_text).expect("trace reparses");
    let events = parsed["traceEvents"].as_array().expect("traceEvents");
    for stage in [
        "customs",
        "generic",
        "subsets",
        "libraries",
        "algo_ppa",
        "test",
    ] {
        let name = format!("stage.{stage}");
        assert!(
            events.iter().any(|e| e["name"].as_str() == Some(&name)),
            "trace missing {name}"
        );
    }
    assert!(
        events
            .iter()
            .any(|e| e["name"].as_str() == Some("thread_name")),
        "trace missing thread_name metadata"
    );

    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    std::fs::remove_file(&metrics).ok();
    let parsed: serde_json::Value = serde_json::from_str(&metrics_text).expect("metrics reparses");
    for key in ["counters", "stages", "worker_utilization"] {
        assert!(parsed.get(key).is_some(), "metrics missing {key:?}");
    }
}

#[test]
fn trace_out_requires_a_value() {
    let out = cli().args(["flow", "--trace-out"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace-out requires a value"));
}

#[test]
fn cache_dir_round_trip_is_bit_identical_and_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("claire-cli-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = dir.to_str().expect("utf8");

    // Cold run: saves a snapshot on exit.
    let cold = cli()
        .args(["custom", "Alexnet", "--json", "--cache-dir", cache])
        .output()
        .expect("run");
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let snapshot = dir.join("claire.snapshot");
    assert!(snapshot.exists(), "cold run saved no snapshot");

    // Warm run: loads the snapshot; the report must be bit-identical.
    let warm = cli()
        .args(["custom", "Alexnet", "--json", "--cache-dir", cache])
        .output()
        .expect("run");
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm-from-snapshot output diverged from cold"
    );

    // A corrupt snapshot degrades to a cold start with a typed
    // warning — same output, exit 0, never a panic.
    std::fs::write(&snapshot, b"not a snapshot").expect("corrupt");
    let recovered = cli()
        .args(["custom", "Alexnet", "--json", "--cache-dir", cache])
        .output()
        .expect("run");
    assert!(
        recovered.status.success(),
        "{}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert_eq!(recovered.stdout, cold.stdout);
    let err = String::from_utf8_lossy(&recovered.stderr);
    assert!(
        err.contains("warm-state snapshot rejected"),
        "no typed warning on corrupt snapshot: {err}"
    );
    // The recovered run overwrote the corrupt file with a fresh,
    // loadable snapshot.
    let again = cli()
        .args(["custom", "Alexnet", "--json", "--cache-dir", cache])
        .output()
        .expect("run");
    assert!(again.status.success());
    assert!(!String::from_utf8_lossy(&again.stderr).contains("rejected"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_answers_batched_json_lines_requests() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = cli()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    // Three well-formed requests (all three op families) plus one
    // malformed line: the server answers each in order and keeps
    // running.
    stdin
        .write_all(
            concat!(
                "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n",
                "{\"id\":2,\"op\":\"assign\",\"model\":\"VGG16\"}\n",
                "{\"id\":3,\"op\":\"what_if\",\"model\":\"Alexnet\",",
                "\"constraints\":{\"chiplet_area_limit_mm2\":0.5}}\n",
                "{\"id\":4,\"op\":\"frobnicate\"}\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    drop(stdin); // EOF ends the session.
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("each response line is JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "{lines:?}");

    let by_id = |id: u64| {
        lines
            .iter()
            .find(|l| l["id"].as_u64() == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    };
    let custom = by_id(1);
    assert_eq!(custom["ok"].as_bool(), Some(true));
    assert_eq!(custom["result"]["model"].as_str(), Some("Alexnet"));
    let assign = by_id(2);
    assert_eq!(assign["ok"].as_bool(), Some(true));
    assert_eq!(assign["coverage"].as_f64(), Some(1.0));
    let what_if = by_id(3);
    assert_eq!(what_if["ok"].as_bool(), Some(true));
    assert_eq!(what_if["feasible"].as_bool(), Some(false));
    // The malformed request is answered (code 2), not fatal; it has
    // no id field matcher, so find it by ok=false.
    let bad = lines
        .iter()
        .find(|l| l["ok"].as_bool() == Some(false))
        .expect("malformed request answered");
    assert_eq!(bad["error"]["code"].as_u64(), Some(2));
}
