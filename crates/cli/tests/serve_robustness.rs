//! End-to-end robustness tests for `claire-cli serve`: every seeded
//! serve-layer fault class ends in a typed wire error or a finite
//! answer (never a dead server), admission control sheds with a typed
//! code-13 answer, deadlines answer code 14, a `kill -9` mid-serve
//! leaves a loadable checkpoint behind, and a signalled shutdown
//! drains and saves.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_claire-cli"))
}

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("claire-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns `serve --listen <unix socket>` with extra args and waits for
/// the socket to accept connections. Every caller reaps the child —
/// through `terminate` or an explicit kill + wait.
#[allow(clippy::zombie_processes)]
fn spawn_listening(socket: &Path, extra: &[&str]) -> Child {
    let child = cli()
        .arg("serve")
        .args(["--listen", socket.to_str().expect("utf8")])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve --listen");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if UnixStream::connect(socket).is_ok() {
            return child;
        }
        assert!(
            Instant::now() < deadline,
            "server never bound {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sends SIGTERM and returns the exit status.
fn terminate(child: &mut Child) -> std::process::ExitStatus {
    Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One request/one response over a fresh connection. Returns `None`
/// when the server closed the connection without answering (a finite
/// outcome — the dropped-connection drill).
fn round_trip(socket: &Path, request: &str) -> Option<serde_json::Value> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line).expect("read");
    if n == 0 {
        return None;
    }
    Some(serde_json::from_str(line.trim()).expect("response is JSON"))
}

#[test]
fn socket_serves_multiple_clients_and_drains_on_sigterm() {
    let dir = scratch("multi");
    let socket = dir.join("claire.sock");
    let mut server = spawn_listening(&socket, &[]);

    let clients: Vec<std::thread::JoinHandle<()>> = (0..3)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let request = format!("{{\"id\":{i},\"op\":\"custom\",\"model\":\"Alexnet\"}}");
                let response = round_trip(&socket, &request).expect("answered");
                assert_eq!(response["id"].as_u64(), Some(i));
                assert_eq!(response["ok"].as_bool(), Some(true), "{response}");
                assert_eq!(response["result"]["model"].as_str(), Some("Alexnet"));
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Malformed input over the socket is a typed code-2 answer, and
    // the server keeps serving afterwards.
    let bad = round_trip(&socket, "{\"op\":\"frobnicate\"}").expect("typed answer");
    assert_eq!(bad["ok"].as_bool(), Some(false));
    assert_eq!(bad["error"]["code"].as_u64(), Some(2));
    let alive =
        round_trip(&socket, "{\"id\":9,\"op\":\"assign\",\"model\":\"VGG16\"}").expect("answered");
    assert_eq!(alive["ok"].as_bool(), Some(true), "{alive}");

    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_connection_fault_is_finite_and_server_survives() {
    let dir = scratch("drop");
    let socket = dir.join("claire.sock");
    // Rate 1.0: every connection is abruptly dropped after its first
    // request. The client sees EOF — finite — and the server lives on.
    let mut server = spawn_listening(&socket, &["--serve-faults", "7:dropped_connection=1.0"]);

    for _ in 0..3 {
        let answer = round_trip(
            &socket,
            "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}",
        );
        assert!(answer.is_none(), "dropped connection still answered");
    }
    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_loris_fault_earns_typed_timeout_and_server_survives() {
    let dir = scratch("loris");
    let socket = dir.join("claire.sock");
    let mut server = spawn_listening(&socket, &["--serve-faults", "7:slow_loris_client=1.0"]);

    // The drill stalls the connection before any request is read: the
    // client gets the same typed code-2 timeout answer a real
    // slow-loris earns, then EOF.
    let stream = UnixStream::connect(&socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("typed answer");
    let answer: serde_json::Value = serde_json::from_str(line.trim()).expect("JSON");
    assert_eq!(answer["ok"].as_bool(), Some(false));
    assert_eq!(answer["error"]["code"].as_u64(), Some(2));
    assert!(
        answer["error"]["detail"]
            .as_str()
            .expect("detail")
            .contains("timed out"),
        "{answer}"
    );
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("eof"), 0);

    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_batch_panic_fault_answers_typed_worker_panic() {
    let dir = scratch("panic");
    let socket = dir.join("claire.sock");
    let mut server = spawn_listening(&socket, &["--serve-faults", "7:mid_batch_panic=1.0"]);

    // Every batch panics mid-dispatch; every request still gets a
    // typed code-7 answer and the server keeps accepting work.
    for _ in 0..3 {
        let answer = round_trip(
            &socket,
            "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}",
        )
        .expect("typed answer despite panic");
        assert_eq!(answer["ok"].as_bool(), Some(false), "{answer}");
        assert_eq!(answer["error"]["code"].as_u64(), Some(7), "{answer}");
    }
    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_write_failure_fault_never_corrupts_the_snapshot() {
    let dir = scratch("ckpt-fault");
    let socket = dir.join("claire.sock");
    let cache = dir.join("cache");
    let mut server = spawn_listening(
        &socket,
        &[
            "--cache-dir",
            cache.to_str().expect("utf8"),
            "--checkpoint-ms",
            "50",
            "--serve-faults",
            "7:checkpoint_write_failure=0.5",
        ],
    );

    // Warm the tiers across several batches so multiple checkpoint
    // generations run, some injected to fail.
    for (i, model) in ["Alexnet", "Resnet18", "VGG16"].iter().enumerate() {
        let request = format!("{{\"id\":{i},\"op\":\"custom\",\"model\":\"{model}\"}}");
        let answer = round_trip(&socket, &request).expect("answered");
        assert_eq!(answer["ok"].as_bool(), Some(true), "{answer}");
        std::thread::sleep(Duration::from_millis(120));
    }
    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));

    // Whatever mix of failed and successful checkpoints ran, the
    // snapshot on disk loads cleanly (exit 0, no rejection warning).
    let out = cli()
        .args([
            "custom",
            "Alexnet",
            "--cache-dir",
            cache.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("rejected"), "snapshot rejected: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_sheds_with_typed_code_13_and_metrics_record_it() {
    use std::process::Stdio;
    let dir = scratch("shed");
    let metrics = dir.join("metrics.json");
    let mut child = cli()
        .args([
            "serve",
            "--queue",
            "1",
            "--metrics-json",
            metrics.to_str().expect("utf8"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    // A burst far beyond capacity 1: the reader admits much faster
    // than the dispatcher drains, so most requests are shed with a
    // typed Overloaded answer while at least the first is evaluated.
    const BURST: usize = 200;
    let mut input = String::new();
    for i in 0..BURST {
        input.push_str(&format!(
            "{{\"id\":{i},\"op\":\"custom\",\"model\":\"Alexnet\"}}\n"
        ));
    }
    stdin.write_all(input.as_bytes()).expect("write burst");
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("JSON response"))
        .collect();
    assert_eq!(lines.len(), BURST, "every request is answered");
    let ok = lines
        .iter()
        .filter(|l| l["ok"].as_bool() == Some(true))
        .count();
    let shed = lines
        .iter()
        .filter(|l| l["error"]["code"].as_u64() == Some(13))
        .count();
    assert!(ok >= 1, "no request was ever evaluated");
    assert!(shed >= 1, "queue of 1 under a {BURST}-burst never shed");
    assert_eq!(ok + shed, BURST, "answers are either evaluated or shed");
    // Shed answers echo the caller's id so clients can retry.
    let first_shed = lines
        .iter()
        .find(|l| l["error"]["code"].as_u64() == Some(13))
        .expect("shed answer");
    assert!(first_shed["id"].as_u64().is_some(), "{first_shed}");

    // The shed count and queue-wait/in-flight histograms surface in
    // --metrics-json.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("metrics JSON");
    assert_eq!(
        parsed["counters"]["serve.shed"].as_u64(),
        Some(shed as u64),
        "serve.shed counter disagrees with the wire"
    );
    let histogram_total = |name: &str| -> u64 {
        parsed["histograms"][name]["counts"]
            .as_array()
            .unwrap_or_else(|| panic!("histogram {name} missing: {}", parsed["histograms"]))
            .iter()
            .map(|c| c.as_u64().expect("bucket count"))
            .sum()
    };
    assert!(
        histogram_total("serve.queue_wait_us") >= 1,
        "queue-wait histogram empty"
    );
    assert!(
        histogram_total("serve.in_flight") >= 1,
        "in-flight histogram empty"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_deadline_is_answered_with_code_14_without_contaminating_neighbours() {
    use std::process::Stdio;
    let mut child = cli()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(
            concat!(
                "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\",\"deadline_ms\":0}\n",
                "{\"id\":2,\"op\":\"custom\",\"model\":\"Alexnet\"}\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let lines: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("JSON response"))
        .collect();
    assert_eq!(lines.len(), 2);
    let by_id = |id: u64| {
        lines
            .iter()
            .find(|l| l["id"].as_u64() == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    };
    let expired = by_id(1);
    assert_eq!(expired["ok"].as_bool(), Some(false));
    assert_eq!(expired["error"]["code"].as_u64(), Some(14), "{expired}");
    assert!(
        expired["error"]["detail"]
            .as_str()
            .expect("detail")
            .contains("deadline"),
        "{expired}"
    );
    // The batch neighbour without a deadline is answered normally —
    // identical to what a solo run produces.
    let survivor = by_id(2);
    assert_eq!(survivor["ok"].as_bool(), Some(true), "{survivor}");
    let solo = cli()
        .args(["custom", "Alexnet", "--json"])
        .output()
        .expect("solo run");
    assert!(solo.status.success());
    let solo_v: serde_json::Value = serde_json::from_slice(&solo.stdout).expect("solo JSON");
    assert_eq!(
        survivor["result"]["ppa"], solo_v["ppa"],
        "deadline neighbour diverged from the solo answer"
    );
}

#[test]
fn kill_nine_mid_serve_leaves_a_loadable_checkpoint() {
    use std::process::Stdio;
    let dir = scratch("kill9");
    let cache = dir.join("cache");
    let mut child = cli()
        .args([
            "serve",
            "--cache-dir",
            cache.to_str().expect("utf8"),
            "--checkpoint-ms",
            "50",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(b"{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n")
        .expect("write request");
    stdin.flush().expect("flush");
    // Wait for the first answer (tiers warm) ...
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("first answer");
    let answer: serde_json::Value = serde_json::from_str(line.trim()).expect("JSON");
    assert_eq!(answer["ok"].as_bool(), Some(true), "{answer}");
    // ... and for a periodic checkpoint to land on disk.
    let snapshot = cache.join("claire.snapshot");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !snapshot.exists() {
        assert!(Instant::now() < deadline, "no checkpoint was ever written");
        std::thread::sleep(Duration::from_millis(20));
    }
    // SIGKILL mid-serve: no drain, no shutdown save.
    child.kill().expect("kill -9");
    let _ = child.wait();

    // The checkpoint restores a warm engine: no SnapshotInvalid, no
    // rejection warning, and the answer matches a cold run.
    let warm = cli()
        .args([
            "custom",
            "Alexnet",
            "--json",
            "--cache-dir",
            cache.to_str().expect("utf8"),
        ])
        .output()
        .expect("warm run");
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(!err.contains("rejected"), "snapshot rejected: {err}");
    let cold = cli()
        .args(["custom", "Alexnet", "--json"])
        .output()
        .expect("cold run");
    assert_eq!(warm.stdout, cold.stdout, "post-crash warm answer diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_is_answered_mid_serve_and_counters_stay_monotone() {
    let dir = scratch("stats");
    let socket = dir.join("claire.sock");
    let mut server = spawn_listening(&socket, &[]);

    // Fire a real (cold, multi-second) evaluation on one connection…
    let worker = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            round_trip(
                &socket,
                "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}",
            )
            .expect("answered")
        })
    };
    // …and probe stats on another while it is in flight. Stats are
    // answered at admission, so dispatch is never paused for them.
    let first = round_trip(&socket, "{\"id\":\"probe\",\"op\":\"stats\"}").expect("stats answered");
    assert_eq!(first["ok"].as_bool(), Some(true), "{first}");
    assert_eq!(first["id"].as_str(), Some("probe"));
    assert!(first["trace_id"].as_u64().is_some(), "{first}");
    let s1 = &first["stats"];
    assert!(s1["uptime_us"].as_u64().is_some(), "{s1}");
    assert!(s1["queue_depth"].as_u64().is_some(), "{s1}");
    assert!(s1["in_flight"].as_u64().is_some(), "{s1}");
    assert!(s1["snapshot_generation"].as_u64().is_some(), "{s1}");
    assert!(
        s1["counters"]["serve.requests"].as_u64().expect("counter") >= 1,
        "{s1}"
    );
    assert!(s1["gauges"].as_object().is_some(), "{s1}");
    assert!(s1["rates"]["requests"]["total"].as_u64().is_some(), "{s1}");
    assert_eq!(s1["event_log"]["enabled"].as_bool(), Some(false), "{s1}");
    assert!(s1["flight"]["path"].as_str().is_some(), "{s1}");

    let answer = worker.join().expect("worker thread");
    assert_eq!(answer["ok"].as_bool(), Some(true), "{answer}");
    assert!(answer["trace_id"].as_u64().is_some(), "{answer}");

    // A second probe after the evaluation: every counter is monotone,
    // the answered count moved, and the latency quantiles are now
    // populated and ordered.
    let second = round_trip(&socket, "{\"op\":\"stats\"}").expect("stats answered");
    let s2 = &second["stats"];
    for (name, before) in s1["counters"].as_object().expect("counters") {
        let after = s2["counters"][name.as_str()].as_u64().expect("counter");
        assert!(
            after >= before.as_u64().expect("counter"),
            "counter {name} went backwards: {before} -> {after}"
        );
    }
    assert!(
        s2["counters"]["serve.answered"].as_u64().expect("counter")
            > s1["counters"]["serve.answered"].as_u64().expect("counter"),
        "answered never moved"
    );
    let q = &s2["quantiles"]["latency_us"];
    assert!(q["count"].as_u64().expect("count") >= 1, "{q}");
    let (p50, p90, p99, max) = (
        q["p50"].as_u64().expect("p50"),
        q["p90"].as_u64().expect("p90"),
        q["p99"].as_u64().expect("p99"),
        q["max"].as_u64().expect("max"),
    );
    assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{q}");

    let status = terminate(&mut server);
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs `serve` over stdin with `extra` args, feeds it `input`, and
/// returns its stdout lines sorted (batch composition — and therefore
/// delivery order — may differ run to run; the per-request bytes must
/// not).
fn serve_stdin_lines(input: &str, extra: &[&str]) -> Vec<String> {
    let mut child = cli()
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    lines.sort();
    lines
}

#[test]
fn observability_never_perturbs_pinned_answers() {
    let dir = scratch("obs-identity");
    let events = dir.join("events.jsonl");
    let cache = dir.join("cache");
    let input = concat!(
        "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n",
        "{\"id\":2,\"op\":\"assign\",\"model\":\"VGG16\"}\n",
        "{\"id\":3,\"op\":\"what_if\",\"model\":\"Alexnet\",",
        "\"constraints\":{\"chiplet_area_limit_mm2\":50.0}}\n",
    );
    // Observability fully armed (event log streaming, flight recorder
    // dumping into a cache dir) versus bare: the answers — trace ids
    // included — are bit-identical, byte for byte.
    let bare = serve_stdin_lines(input, &[]);
    let observed = serve_stdin_lines(
        input,
        &[
            "--event-log",
            events.to_str().expect("utf8"),
            "--cache-dir",
            cache.to_str().expect("utf8"),
        ],
    );
    assert_eq!(bare, observed, "observability perturbed the answers");
    assert!(events.exists(), "event log never written");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn event_log_captures_the_full_lifecycle_with_trace_continuity() {
    let dir = scratch("event-log");
    let events = dir.join("events.jsonl");
    let input = concat!(
        "{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n",
        "this line is not JSON\n",
        "{\"id\":2,\"op\":\"assign\",\"model\":\"VGG16\"}\n",
    );
    let lines = serve_stdin_lines(input, &["--event-log", events.to_str().expect("utf8")]);
    assert_eq!(lines.len(), 3, "every line is answered");
    let responses: Vec<serde_json::Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("response JSON"))
        .collect();

    // Every event-log line is one JSON object with the schema fields;
    // group them per trace in file (= wall-clock) order.
    let mut by_trace: std::collections::BTreeMap<u64, Vec<serde_json::Value>> =
        std::collections::BTreeMap::new();
    for line in std::fs::read_to_string(&events)
        .expect("event log readable")
        .lines()
    {
        let event: serde_json::Value = serde_json::from_str(line).expect("event JSON");
        assert!(event["t_us"].as_u64().is_some(), "{event}");
        let stage = event["event"].as_str().expect("stage label");
        assert!(
            [
                "received",
                "admitted",
                "shed",
                "dispatched",
                "evaluating",
                "answered",
                "errored"
            ]
            .contains(&stage),
            "unknown stage {stage}"
        );
        assert!(event["op"].as_str().is_some(), "{event}");
        by_trace
            .entry(event["trace"].as_u64().expect("trace id"))
            .or_default()
            .push(event);
    }

    // Each response's trace id continues through the log: opens with
    // `received`, closes with a terminal stage whose outcome matches
    // the wire answer, and admitted work passes through dispatch and
    // evaluation in order.
    for response in &responses {
        let trace = response["trace_id"].as_u64().expect("trace_id echoed");
        let chain = by_trace
            .get(&trace)
            .unwrap_or_else(|| panic!("trace {trace} missing from event log"));
        let stages: Vec<&str> = chain
            .iter()
            .map(|e| e["event"].as_str().expect("stage"))
            .collect();
        assert_eq!(stages.first().copied(), Some("received"), "{stages:?}");
        let terminal = chain.last().expect("terminal event");
        let wire_code = response["error"]["code"].as_u64().unwrap_or(0);
        match terminal["event"].as_str().expect("stage") {
            "answered" => assert_eq!(wire_code, 0, "{response}"),
            "errored" => assert_eq!(
                terminal["outcome"].as_u64().expect("outcome"),
                wire_code,
                "{terminal} vs {response}"
            ),
            other => panic!("trace {trace} ended on non-terminal stage {other}"),
        }
        if response["ok"].as_bool() == Some(true) {
            let position = |s: &str| {
                stages
                    .iter()
                    .position(|x| *x == s)
                    .unwrap_or_else(|| panic!("trace {trace} missing {s}: {stages:?}"))
            };
            assert!(position("admitted") < position("dispatched"));
            assert!(position("dispatched") < position("evaluating"));
            assert!(position("evaluating") < position("answered"));
            let dispatched = &chain[position("dispatched")];
            assert!(
                dispatched["queue_wait_us"].as_u64().is_some(),
                "{dispatched}"
            );
            assert!(dispatched["batch"].as_u64().is_some(), "{dispatched}");
        }
    }
    // The malformed line is in the log too: an `invalid`-op trace
    // ending errored with outcome 2.
    assert!(
        by_trace.values().any(
            |chain| chain.iter().any(|e| e["op"].as_str() == Some("invalid")
                && e["event"].as_str() == Some("errored")
                && e["outcome"].as_u64() == Some(2))
        ),
        "malformed line left no lifecycle trail"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contained_panic_then_kill_nine_leaves_a_loadable_flight_dump() {
    use std::process::Stdio;
    let dir = scratch("flight");
    let cache = dir.join("cache");
    let metrics = dir.join("metrics.json");
    std::fs::create_dir_all(&cache).expect("create cache dir");
    let mut child = cli()
        .args([
            "serve",
            "--cache-dir",
            cache.to_str().expect("utf8"),
            "--serve-faults",
            "7:mid_batch_panic=1.0",
            "--metrics-json",
            metrics.to_str().expect("utf8"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(b"{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n")
        .expect("write request");
    stdin.flush().expect("flush");
    // The batch panics mid-dispatch; containment answers code 7 …
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("typed answer");
    let answer: serde_json::Value = serde_json::from_str(line.trim()).expect("JSON");
    assert_eq!(answer["error"]["code"].as_u64(), Some(7), "{answer}");
    let trace = answer["trace_id"].as_u64().expect("trace_id echoed");

    // … and the recorder dumps twice: the panic hook fires at the
    // throw (its dump predates the errored events), then the
    // containment site dumps again after delivery. Wait until the
    // on-disk trail includes the terminal event, then SIGKILL: no
    // drain, no shutdown path — the prior dump must already suffice.
    let flight = cache.join(format!("flight-{}.json", child.id()));
    let has_terminal = |dump: &serde_json::Value| {
        dump["events"]
            .as_array()
            .is_some_and(|events| events.iter().any(|e| e["outcome"].as_u64().is_some()))
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if metrics.exists() {
            if let Ok(text) = std::fs::read_to_string(&flight) {
                if serde_json::from_str::<serde_json::Value>(&text).is_ok_and(|d| has_terminal(&d))
                {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "containment never dumped flight/metrics"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill -9");
    let _ = child.wait();

    // The dump is complete (atomic rename) and loadable, and its
    // trailing events reconcile with what the client observed: the
    // panicking request's trace ends errored with outcome 7.
    let dump: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&flight).expect("flight dump readable"))
            .expect("flight dump is JSON");
    assert_eq!(dump["pid"].as_u64(), Some(u64::from(child.id())), "{dump}");
    assert!(dump["reason"].as_str().is_some(), "{dump}");
    assert!(dump["uptime_us"].as_u64().is_some(), "{dump}");
    let events = dump["events"].as_array().expect("events array");
    assert!(!events.is_empty(), "flight dump captured nothing");
    assert!(
        events.iter().any(|e| e["trace"].as_u64() == Some(trace)
            && e["event"].as_str() == Some("errored")
            && e["outcome"].as_u64() == Some(7)),
        "client-observed code-7 answer missing from the flight trail: {dump}"
    );

    // Satellite: the crash paths also left complete metrics behind,
    // with the flight dump counted.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).expect("metrics readable"))
            .expect("metrics JSON");
    assert!(
        parsed["counters"]["serve.flight_dumps"]
            .as_u64()
            .expect("counter")
            >= 1,
        "{parsed}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_shutdown_saves_the_snapshot_without_stdin_eof() {
    use std::process::Stdio;
    let dir = scratch("sigterm-save");
    let cache = dir.join("cache");
    let mut child = cli()
        .args([
            "serve",
            "--cache-dir",
            cache.to_str().expect("utf8"),
            // Periodic checkpoints off: only the signal path saves.
            "--checkpoint-ms",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(b"{\"id\":1,\"op\":\"custom\",\"model\":\"Alexnet\"}\n")
        .expect("write request");
    stdin.flush().expect("flush");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("first answer");

    // Stdin stays open: EOF never fires; only the signal can save.
    let status = terminate(&mut child);
    assert_eq!(status.code(), Some(0));
    let snapshot = cache.join("claire.snapshot");
    assert!(
        snapshot.exists(),
        "signal-triggered shutdown saved no snapshot"
    );
    let err = {
        let mut buf = String::new();
        child
            .stderr
            .take()
            .expect("stderr")
            .read_to_string(&mut buf)
            .expect("read stderr");
        buf
    };
    assert!(
        err.contains("shutdown signal received"),
        "no drain message: {err}"
    );
    assert!(err.contains("warm state saved"), "no save message: {err}");
    std::fs::remove_dir_all(&dir).ok();
}
